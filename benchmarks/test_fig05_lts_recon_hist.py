"""Fig. 5 — reconstructed vs real histograms of the user feature o (LTS3).

Paper claim: before training (epoch 0) the reconstructed distribution of
the observed user feature is badly misplaced relative to the real one; by
epoch 8000 the reconstruction overlaps the real histogram for both a
training group (μ_c = 6) and the held-out testing group (μ_c = 14).
"""

import numpy as np

from repro.envs import MU_C_REAL
from repro.eval import dataset_kld

from .conftest import print_table
from .lts_sadae_common import (
    build_lts3_corpus,
    fresh_group_states,
    make_lts_sadae,
    train_with_checkpoints,
)

TOTAL_EPOCHS = 80
OBS_DIM = 1


def histogram_summary(values: np.ndarray, bins: np.ndarray) -> str:
    counts, _ = np.histogram(values, bins=bins, density=True)
    peak = bins[np.argmax(counts)]
    return f"mean={values.mean():6.2f} std={values.std():5.2f} mode~{peak:5.1f}"


def run_experiment():
    task, sets, _ = build_lts3_corpus(num_users=150, steps_per_env=5)
    sadae = make_lts_sadae(seed=2)
    sadae.fit_normalizer(sets)

    train_omega = task.train_omega_gs[0]
    groups = {
        "train (mu_c=%g)" % (MU_C_REAL + train_omega): float(train_omega),
        "test (mu_c=14)": 0.0,
    }
    real_states = {
        name: fresh_group_states(omega, num_users=400, seed=17)
        for name, omega in groups.items()
    }

    def snapshot(epoch):
        out = {}
        rng = np.random.default_rng(100 + epoch)
        for name in groups:
            recon, _ = sadae.sample_reconstruction(
                real_states[name], None, rng, num_samples=400
            )
            real_o = real_states[name][:, OBS_DIM : OBS_DIM + 1]
            recon_o = recon[:, OBS_DIM : OBS_DIM + 1]
            out[name] = {
                "real": real_o[:, 0],
                "recon": recon_o[:, 0],
                "kld": dataset_kld(real_o, recon_o, max_points=250),
            }
        return out

    return train_with_checkpoints(
        sadae, sets, TOTAL_EPOCHS, TOTAL_EPOCHS, snapshot, seed=2
    )


def test_fig05_lts_recon_hist(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    first_epoch, last_epoch = min(results), max(results)

    rows = []
    for epoch in (first_epoch, last_epoch):
        for name, data in results[epoch].items():
            bins = np.linspace(-5, 25, 31)
            rows.append(
                [
                    f"epoch {epoch}",
                    name,
                    histogram_summary(data["real"], bins),
                    histogram_summary(data["recon"], bins),
                    f"{data['kld']:.3f}",
                ]
            )
    print_table(
        "Fig. 5: real vs reconstructed user-feature histograms",
        ["checkpoint", "group", "real o", "reconstructed o", "KLD(real, recon)"],
        rows,
    )

    for name in results[first_epoch]:
        before = results[first_epoch][name]["kld"]
        after = results[last_epoch][name]["kld"]
        mean_gap = abs(
            results[last_epoch][name]["recon"].mean()
            - results[last_epoch][name]["real"].mean()
        )
        print(f"shape check [{name}]: KLD {before:.3f} -> {after:.3f}, mean gap {mean_gap:.2f}")
        # Paper shape: trained reconstruction aligns with the real histogram
        # (correlated distributions) on both train and held-out groups.
        assert after < before, f"reconstruction should improve on {name}"
        assert mean_gap < 2.0, f"reconstructed mean should align on {name}"

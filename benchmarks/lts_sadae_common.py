"""Shared helpers for the LTS SADAE benches (Fig. 3, 4, 5)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core import SADAE, SADAEConfig, collect_lts_state_sets, train_sadae
from repro.envs import LTSConfig, LTSEnv, make_lts_task

STATE_DIM = 2
OBS_NOISE_STD = 2.0  # o ~ N(μ_c, 4)


def build_lts3_corpus(num_users: int = 150, steps_per_env: int = 6, seed: int = 0):
    """State sets from every LTS3 training simulator, tagged with ω_g."""
    task = make_lts_task("LTS3", num_users=num_users, horizon=steps_per_env, seed=seed)
    sets = collect_lts_state_sets(
        task, users_per_set=num_users, steps_per_env=steps_per_env,
        rng=np.random.default_rng(seed),
    )
    omega_tags = [
        task.train_omega_gs[i // steps_per_env] for i in range(len(sets))
    ]
    return task, sets, omega_tags


def make_lts_sadae(seed: int = 0, latent_dim: int = 5) -> SADAE:
    """State-only SADAE matching the paper's LTS setup (5 latent units)."""
    return SADAE(
        STATE_DIM,
        1,
        SADAEConfig(
            latent_dim=latent_dim,
            encoder_hidden=(64, 64),
            decoder_hidden=(64, 64),
            learning_rate=1e-3,
            weight_decay=1e-4,
            state_only=True,
            seed=seed,
        ),
    )


def fresh_group_states(
    omega_g: float, num_users: int, seed: int, steps: int = 3
) -> np.ndarray:
    """Observed states of a fresh group with parameter ω_g (for eval)."""
    env = LTSEnv(
        LTSConfig(num_users=num_users, horizon=steps, omega_g=omega_g, seed=seed)
    )
    states = [env.reset()]
    rng = np.random.default_rng(seed)
    for _ in range(steps - 1):
        step_states, _, _, _ = env.step(rng.random((num_users, 1)))
        states.append(step_states)
    return np.concatenate(states, axis=0)


def train_with_checkpoints(
    sadae: SADAE,
    sets,
    total_epochs: int,
    checkpoint_every: int,
    snapshot,
    seed: int = 0,
) -> Dict[int, object]:
    """Train and call ``snapshot(epoch)`` at epoch 0 and every checkpoint.

    Returns ``{epoch: snapshot_result}``.
    """
    results = {0: snapshot(0)}
    sadae.fit_normalizer(sets)

    def callback(epoch: int) -> None:
        completed = epoch + 1
        if completed % checkpoint_every == 0 or completed == total_epochs:
            results[completed] = snapshot(completed)

    train_sadae(
        sadae,
        sets,
        epochs=total_epochs,
        rng=np.random.default_rng(seed),
        fit_normalizer=False,
        callback=callback,
    )
    return results

"""Shared fixtures for the experiment benches.

Every table/figure bench runs at laptop scale (fewer users, shorter
horizons, fewer iterations than the paper's 2·10⁹-step budget); the
*shape* of each result — who wins, what degrades, where the pathologies
appear — is what EXPERIMENTS.md compares against the paper.

The DPR pipeline (world → logged data → 15-simulator ensemble → trained
policies) is expensive, so it is built once per session in
:class:`DPRBenchSuite` and shared by the Fig. 8–11 / Table III–IV benches.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import (
    DeepFMRecommender,
    SupervisedConfig,
    WideDeepRecommender,
    dpr_ensemble_sampler,
    dpr_single_sampler,
    make_direct_trainer,
    make_dr_uni_trainer,
)
from repro.core import (
    Sim2RecDPRTrainer,
    build_sim2rec_policy,
    dpr_small_config,
)
from repro.envs import (
    BehaviorPolicy,
    BehaviorPolicyConfig,
    DPRConfig,
    DPRWorld,
    collect_dpr_dataset,
)
from repro.sim import SimulatorLearnerConfig, build_simulator_set


def pytest_collection_modifyitems(config, items):
    """Everything under benchmarks/ is a slow, opt-in bench (see pyproject).

    The hook sees the whole session's items, so restrict to this
    directory before marking.
    """
    import pathlib

    bench_dir = pathlib.Path(__file__).parent.resolve()
    for item in items:
        if bench_dir in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)

# Laptop-scale workload shared by all DPR benches.
DPR_WORLD_CONFIG = DPRConfig(
    num_cities=5, drivers_per_city=20, horizon=20, seed=123
)
ENSEMBLE_MEMBERS = 15
HOLDOUT_MEMBERS = (12, 13, 14)  # SimA, SimB, SimC
SIM2REC_ITERATIONS = 60
BASELINE_ITERATIONS = 60


class DPRBenchSuite:
    """Builds and caches the full DPR experimental apparatus."""

    def __init__(self):
        print("\n[bench setup] building DPR world and logged dataset ...")
        self.world = DPRWorld(DPR_WORLD_CONFIG)
        self.dataset = collect_dpr_dataset(self.world, episodes=2)
        self.dataset_train, self.dataset_test = self.dataset.split_users(0.8, seed=0)
        print("[bench setup] training the 15-member simulator ensemble ...")
        self.ensemble = build_simulator_set(
            self.dataset_train,
            num_members=ENSEMBLE_MEMBERS,
            base_config=SimulatorLearnerConfig(hidden_sizes=(48, 48), epochs=50),
            seed=7,
        )
        self.train_ensemble, self.holdout_ensemble = self.ensemble.split(
            list(HOLDOUT_MEMBERS)
        )
        self._policies: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def behavior_fn(self, seed: int = 0):
        return BehaviorPolicy(BehaviorPolicyConfig(seed=seed))

    def holdout_sim_env(self, index: int, group_index: int = 0, horizon: int = 20, seed: int = 0):
        """A deployment environment backed by a held-out simulator."""
        from repro.sim import SimulatedDPREnv

        group = self.dataset_test.groups[group_index]
        return SimulatedDPREnv(
            self.holdout_ensemble[index],
            group,
            truncate_horizon=horizon,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def get_policy(self, name: str):
        """Train (once) and return a policy by method name."""
        if name in self._policies:
            return self._policies[name]
        print(f"[bench setup] training policy {name!r} ...")
        config = dpr_small_config(seed=11)
        state_dim, action_dim = self.dataset.state_dim, self.dataset.action_dim
        if name in ("sim2rec", "sim2rec_pe", "sim2rec_ee"):
            if name == "sim2rec_pe":
                config = config.ablate_prediction_error_handling()
                # keep rollout length comparable for runtime parity
                config.truncate_horizon = 10
            elif name == "sim2rec_ee":
                config = config.ablate_extrapolation_error_handling()
            policy = build_sim2rec_policy(state_dim, action_dim, config)
            trainer = Sim2RecDPRTrainer(
                policy, self.train_ensemble, self.dataset_train, config
            )
            trainer.pretrain_sadae(epochs=10)
            trainer.train(SIM2REC_ITERATIONS)
            self._policies[name] = policy
        elif name == "dr_uni":
            sampler = dpr_ensemble_sampler(
                self.train_ensemble,
                self.dataset_train,
                truncate_horizon=config.truncate_horizon,
            )
            trainer = make_dr_uni_trainer(state_dim, action_dim, sampler, config)
            trainer.train(BASELINE_ITERATIONS)
            self._policies[name] = trainer.policy
        elif name == "direct":
            sampler = dpr_single_sampler(
                self.train_ensemble[0],
                self.dataset_train,
                truncate_horizon=config.truncate_horizon,
            )
            trainer = make_direct_trainer(state_dim, action_dim, sampler, config)
            trainer.train(BASELINE_ITERATIONS)
            self._policies[name] = trainer.policy
        elif name == "widedeep":
            model = WideDeepRecommender(
                state_dim, action_dim, SupervisedConfig(epochs=40, seed=0)
            )
            model.fit(self.dataset_train)
            self._policies[name] = model
        elif name == "deepfm":
            model = DeepFMRecommender(
                state_dim, action_dim, SupervisedConfig(epochs=40, seed=0)
            )
            model.fit(self.dataset_train)
            self._policies[name] = model
        else:
            raise KeyError(f"unknown policy {name!r}")
        return self._policies[name]

    def act_fn(self, name: str, deterministic: bool = True):
        policy = self.get_policy(name)
        if hasattr(policy, "as_act_fn"):
            if name in ("widedeep", "deepfm"):
                return policy.as_act_fn()
            return policy.as_act_fn(np.random.default_rng(0), deterministic=deterministic)
        raise KeyError(name)


@pytest.fixture(scope="session")
def dpr_suite():
    return DPRBenchSuite()


def print_table(title: str, headers, rows) -> None:
    """Render a compact aligned table to stdout (the bench 'figure')."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

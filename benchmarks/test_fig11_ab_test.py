"""Fig. 11 — the production A/B test (simulated on the ground-truth world).

Paper claims: deployed for 7 days against a control group running the
incumbent human policy, the DR-UNI baseline improves daily rewards by only
+0.1% while Sim2Rec improves them by +6.9%.

Here "production" is the *ground-truth* DPR world, which no training
stage ever touched (policies saw only logged data and learned
simulators) — the same epistemic situation as the paper's deployment.
"""


from repro.eval import run_ab_test

from .conftest import DPR_WORLD_CONFIG, print_table

START_DAY, DEPLOY_DAY, END_DAY = 18, 22, 28


def run_experiment(dpr_suite):
    from repro.envs import DPRConfig, DPRWorld

    def env_factory(seed):
        # Fresh ground-truth world with a longer horizon covering the test.
        config = DPRConfig(
            num_cities=DPR_WORLD_CONFIG.num_cities,
            drivers_per_city=DPR_WORLD_CONFIG.drivers_per_city,
            horizon=END_DAY - START_DAY + 1,
            seed=DPR_WORLD_CONFIG.seed,
        )
        return DPRWorld(config).make_city_env(2, seed=seed)

    results = {}
    for name in ("dr_uni", "sim2rec"):
        act_fn = dpr_suite.act_fn(name)
        results[name] = run_ab_test(
            env_factory,
            lambda: dpr_suite.behavior_fn(seed=1),
            act_fn,
            start_day=START_DAY,
            deploy_day=DEPLOY_DAY,
            end_day=END_DAY,
            seed=5,
        )
    return results


def test_fig11_ab_test(benchmark, dpr_suite):
    results = benchmark.pedantic(run_experiment, args=(dpr_suite,), rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        scaled = result.scaled()
        for index, day in enumerate(result.days):
            rows.append(
                [
                    name,
                    int(day),
                    "deployed" if day >= DEPLOY_DAY else "pre",
                    f"{scaled['control'][index]:.3f}",
                    f"{scaled['treatment'][index]:.3f}",
                ]
            )
    print_table(
        "Fig. 11: A/B test — daily scaled rewards",
        ["policy", "day", "phase", "control", "treatment"],
        rows,
    )

    uni_improvement = results["dr_uni"].post_deploy_improvement()
    sim2rec_improvement = results["sim2rec"].post_deploy_improvement()
    print(
        f"shape check: post-deploy improvement DR-UNI {uni_improvement:+.1f}% "
        f"vs Sim2Rec {sim2rec_improvement:+.1f}% (paper: +0.1% vs +6.9%)"
    )
    # Paper shape: Sim2Rec clearly outperforms both the human policy and the
    # DR-UNI baseline in production.
    assert sim2rec_improvement > 0.0, "Sim2Rec must beat the human policy"
    assert sim2rec_improvement > uni_improvement, "Sim2Rec must beat DR-UNI"

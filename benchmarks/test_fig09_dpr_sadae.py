"""Fig. 9 — SADAE on real data: (a) dataset KLD convergence, (b) probe MAE.

Paper claims:

- (a) the Eq. (9) KLD between real state-action sets and the reconstructed
  distribution converges steadily (to ≈0.6 at their scale) — nontrivial
  reconstruction of real data;
- (b) a freshly retrained one-hidden-layer probe predicting KLD(X_i, X_j)
  from (υ_i, υ_j) improves markedly over the untrained-embedding baseline
  (26% MAE improvement in the paper) — υ stores distribution information.

Bench-scale note: each held-out group's (episode) data is pooled over time
into one evaluation set, and the KDE-based KLD is computed on the feature
dimensions that vary within a group (feedback history, statistics,
actions) — with our few users per group, a 15-dim KDE including the
constant group/time features would be degenerate.
"""

import numpy as np

from repro.core import SADAE, SADAEConfig, train_sadae
from repro.envs import DPRFeaturizer
from repro.eval import ProbeConfig, dataset_kld, probe_embedding_quality

from .conftest import print_table

TOTAL_EPOCHS = 60
CHECKPOINT_EVERY = 20


def varying_feature_indices(state_dim: int, action_dim: int):
    """Indices of [state ‖ action] dims that vary within a group."""
    featurizer = DPRFeaturizer()
    state_part = list(range(*featurizer.slices["hist"].indices(state_dim)))
    state_part += list(range(*featurizer.slices["stat"].indices(state_dim)))
    action_part = [state_dim + d for d in range(action_dim)]
    return np.array(state_part + action_part)


def pooled_eval_sets(dataset):
    """One pooled (states, actions) set per (group, episode)."""
    sets = []
    for group in dataset.groups:
        for episode in range(group.num_episodes):
            states = group.states[episode, :-1].reshape(-1, group.state_dim)
            actions = group.actions[episode].reshape(-1, group.action_dim)
            sets.append((states, actions))
    return sets


def run_experiment(dpr_suite):
    dataset = dpr_suite.dataset_train
    train_sets = dataset.state_action_sets()
    eval_sets = pooled_eval_sets(dpr_suite.dataset_test)
    dims = varying_feature_indices(dataset.state_dim, dataset.action_dim)

    sadae = SADAE(
        dataset.state_dim,
        dataset.action_dim,
        SADAEConfig(
            latent_dim=8,
            encoder_hidden=(64, 64),
            decoder_hidden=(64, 64),
            learning_rate=1e-3,
            weight_decay=1e-4,
            seed=1,
        ),
    )
    sadae.fit_normalizer(train_sets)
    rng = np.random.default_rng(1)

    def snapshot(epoch):
        # (a) Eq. (9) reconstruction KLD on the held-out pooled sets.
        klds = []
        for states, actions in eval_sets:
            recon_s, recon_a = sadae.sample_reconstruction(
                states, actions, rng, num_samples=states.shape[0]
            )
            real = np.concatenate([states, actions], axis=1)[:, dims]
            recon = np.concatenate([recon_s, recon_a], axis=1)[:, dims]
            klds.append(dataset_kld(real, recon, max_points=150))
        # (b) probe MAE from the current embeddings.
        embeddings = [sadae.embed(s, a) for s, a in eval_sets]
        datasets = [np.concatenate([s, a], axis=1)[:, dims] for s, a in eval_sets]
        mae = probe_embedding_quality(
            embeddings,
            datasets,
            num_pairs=30,
            config=ProbeConfig(epochs=150, seed=0),
            rng=np.random.default_rng(0),
        )
        return float(np.mean(klds)), mae

    checkpoints = {0: snapshot(0)}

    def callback(epoch):
        completed = epoch + 1
        if completed % CHECKPOINT_EVERY == 0 or completed == TOTAL_EPOCHS:
            checkpoints[completed] = snapshot(completed)

    train_sadae(
        sadae,
        train_sets,
        epochs=TOTAL_EPOCHS,
        rng=np.random.default_rng(1),
        fit_normalizer=False,
        callback=callback,
    )
    return checkpoints


def test_fig09_dpr_sadae(benchmark, dpr_suite):
    results = benchmark.pedantic(run_experiment, args=(dpr_suite,), rounds=1, iterations=1)

    epochs = sorted(results)
    rows = [
        [str(epoch), f"{results[epoch][0]:.3f}", f"{results[epoch][1]:.4f}"]
        for epoch in epochs
    ]
    print_table(
        "Fig. 9: DPR SADAE — (a) reconstruction KLD and (b) probe MAE",
        ["epoch", "dataset KLD (Eq. 9)", "probe MAE"],
        rows,
    )

    kld_initial, mae_initial = results[epochs[0]]
    kld_final, mae_final = results[epochs[-1]]
    mae_improvement = 100.0 * (mae_initial - mae_final) / max(mae_initial, 1e-12)
    print(
        f"shape check: KLD {kld_initial:.3f} -> {kld_final:.3f}; "
        f"probe MAE {mae_initial:.4f} -> {mae_final:.4f} "
        f"({mae_improvement:.0f}% improvement; paper: 26%)"
    )
    # (a) KLD converges downward to a nontrivial plateau.
    assert kld_final < kld_initial, "reconstruction KLD must fall with training"
    # (b) trained embeddings beat the untrained baseline for KLD prediction.
    assert mae_final < mae_initial, "probe MAE must improve over epoch-0 embeddings"

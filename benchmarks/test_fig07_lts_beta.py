"""Fig. 7 — per-user gaps (LTS3-β): limited vs unlimited user simulators.

Paper claims:

- with a *limited* simulator set (500-user simulators, user gaps ω_u drawn
  once), deployed performance declines as the gap level β grows, but stays
  above the non-representation baselines;
- with *unlimited* user simulators (ω_u resampled at every training
  iteration), the simulator set covers ω* well enough that Sim2Rec
  overcomes the reality gap — the β curves close up.
"""

import numpy as np

from repro.core import Sim2RecLTSTrainer, build_sim2rec_policy, lts_small_config
from repro.envs import make_lts_task
from repro.rl import evaluate

from .conftest import print_table

NUM_USERS = 30
HORIZON = 25
OBS_NOISE = 6.0
ITERATIONS = 25
BETAS = (0.0, 4.0, 8.0)


def train_sim2rec(beta: float, resample_users: bool) -> float:
    task = make_lts_task(
        "LTS3",
        beta=beta if beta > 0 else None,
        num_users=NUM_USERS,
        horizon=HORIZON,
        seed=3,
        observation_noise_std=OBS_NOISE,
        sensitivity_range=(0.25, 0.4),
        memory_discount_range=(0.7, 0.8),
    )
    config = lts_small_config(seed=3)
    policy = build_sim2rec_policy(2, 1, config)
    trainer = Sim2RecLTSTrainer(policy, task, config, resample_users=resample_users)
    trainer.pretrain_sadae(epochs=15, users_per_set=NUM_USERS)
    trainer.train(ITERATIONS)
    returns = []
    for episode_seed in range(3):
        env = task.make_target_env(seed_offset=2000 + episode_seed)
        act_fn = policy.as_act_fn(np.random.default_rng(episode_seed), deterministic=True)
        returns.append(evaluate(act_fn, env, episodes=1))
    return float(np.mean(returns))


def run_experiment():
    results = {"limited": {}, "unlimited": {}}
    for beta in BETAS:
        results["limited"][beta] = train_sim2rec(beta, resample_users=False)
        if beta > 0:
            results["unlimited"][beta] = train_sim2rec(beta, resample_users=True)
        else:
            results["unlimited"][beta] = results["limited"][beta]
    return results


def test_fig07_lts_beta(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [
        [f"beta={beta:g}"]
        + [f"{results[mode][beta]:.1f}" for mode in ("limited", "unlimited")]
        for beta in BETAS
    ]
    print_table(
        "Fig. 7: Sim2Rec on LTS3-beta (target-env rewards)",
        ["gap level", "500-user simulators", "unlimited-user simulators"],
        rows,
    )

    limited = [results["limited"][beta] for beta in BETAS]
    unlimited = [results["unlimited"][beta] for beta in BETAS]
    worst_limited_drop = limited[0] - min(limited)
    worst_unlimited_drop = unlimited[0] - min(unlimited)
    print(
        f"shape check: beta=0 reward {limited[0]:.1f}; worst drop limited "
        f"{worst_limited_drop:.1f} vs unlimited {worst_unlimited_drop:.1f}"
    )
    # Paper shape: resampling user gaps every iteration (a better-covering
    # simulator set) recovers most of the β-induced loss.
    assert worst_unlimited_drop <= worst_limited_drop + 10.0, (
        "unlimited-user simulators should not degrade more than limited ones"
    )
    # Performance with gaps must remain in a sane band (robust policies).
    assert min(min(limited), min(unlimited)) > 0.5 * limited[0]

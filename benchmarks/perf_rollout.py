"""Rollout-engine microbenchmark: sequential vs batched vs sharded collection.

Times ``collect_segment`` looped city by city against
``collect_segments_vec`` over a :class:`VecEnvPool` (one ``policy.act``
per timestep for all cities, block-diagonal env stepping, no-grad fast
path), then sweeps :class:`ShardedVecEnvPool` worker counts (multi-process
env stepping with overlapped collection). Every timed path is first
verified **bit-identical** to the sequential baseline; results go to
``BENCH_rollout.json`` so speedups are tracked across PRs (and gated in
CI by ``.github/check_bench_regression.py``).

Worker-count speedups scale with physical cores: on a 1-CPU container the
sweep records ~1x (the JSON carries ``cpu_count`` so the CI gate only
enforces worker floors on multi-core runners).

Not a pytest module — run directly::

    python benchmarks/perf_rollout.py [--smoke] [--output PATH] [--workers 1,2,4]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.envs import DPRConfig, DPRWorld
from repro.rl import (
    RecurrentActorCritic,
    ShardedVecEnvPool,
    VecEnvPool,
    collect_segment,
    collect_segments_vec,
    sharding_available,
)


def make_policy(state_dim: int, action_dim: int) -> RecurrentActorCritic:
    return RecurrentActorCritic(
        state_dim,
        action_dim,
        np.random.default_rng(0),
        lstm_hidden=64,
        head_hidden=(128, 64),
    )


SEGMENT_FIELDS = ("states", "actions", "rewards", "values", "log_probs", "last_values")


def collect_sequential(world: DPRWorld, policy, seed: int):
    return [
        collect_segment(env, policy, np.random.default_rng(seed + i))
        for i, env in enumerate(world.make_all_city_envs())
    ]


def assert_identical(seq, vec, label: str) -> None:
    """The timed paths must agree bit for bit before we trust the clock."""
    for s, v in zip(seq, vec):
        for name in SEGMENT_FIELDS:
            if not np.array_equal(getattr(s, name), getattr(v, name)):
                raise AssertionError(f"{label}: sequential mismatch in {name}")


def bench_scenario(name: str, config: DPRConfig, repeats: int) -> dict:
    world = DPRWorld(config)
    envs_seq = world.make_all_city_envs()
    pool = VecEnvPool(world.make_all_city_envs())
    policy = make_policy(13, 2)
    rngs = [np.random.default_rng(1000 + i) for i in range(world.num_cities)]

    seq_ref = collect_sequential(world, policy, seed=7)
    vec_ref = collect_segments_vec(
        world.make_all_city_envs(),
        policy,
        [np.random.default_rng(7 + i) for i in range(world.num_cities)],
    )
    assert_identical(seq_ref, vec_ref, name)
    collect_segments_vec(pool, policy, rngs)  # warmup

    seq_times, vec_times = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        for env, rng in zip(envs_seq, rngs):
            collect_segment(env, policy, rng)
        seq_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        collect_segments_vec(pool, policy, rngs)
        vec_times.append(time.perf_counter() - start)

    sequential = min(seq_times)
    vectorized = min(vec_times)
    result = {
        "name": name,
        "num_cities": config.num_cities,
        "drivers_per_city": config.drivers_per_city,
        "horizon": config.horizon,
        "total_users": config.num_cities * config.drivers_per_city,
        "sequential_s": round(sequential, 6),
        "vectorized_s": round(vectorized, 6),
        "speedup": round(sequential / vectorized, 3),
        "equivalent": True,
    }
    print(
        f"[{name}] {config.num_cities} cities x {config.drivers_per_city} drivers, "
        f"T={config.horizon}: seq={sequential:.3f}s vec={vectorized:.3f}s "
        f"-> {result['speedup']:.2f}x"
    )
    return result


def bench_worker_sweep(
    name: str,
    config: DPRConfig,
    worker_counts: tuple,
    repeats: int,
    sequential_s: float,
    vectorized_s: float,
) -> list:
    """Time sharded collection per worker count; verify bitwise first.

    Speedups are reported against both baselines: the sequential
    per-city loop (the end-to-end win a training run sees) and the
    single-process vectorized pool (isolates what moving env stepping
    off the parent buys — bounded by the env-step fraction of collection
    time, so expect modest numbers on policy-bound workloads and < 1x on
    single-core machines where IPC serialises). Throughput is stacked
    user-steps per second.
    """
    world = DPRWorld(config)
    policy = make_policy(13, 2)
    total_steps = config.num_cities * config.drivers_per_city * config.horizon
    seq_ref = collect_sequential(world, policy, seed=7)
    records = []
    for workers in worker_counts:
        if not sharding_available():
            print(f"[{name}] workers={workers}: sharding unavailable, skipped")
            continue
        pool = ShardedVecEnvPool(world.make_all_city_envs(), num_workers=workers)
        try:
            # Re-verify the acceptance contract inside the bench: sharded
            # segments bitwise-identical to sequential for this layout.
            sharded = collect_segments_vec(
                pool,
                policy,
                [np.random.default_rng(7 + i) for i in range(world.num_cities)],
            )
            assert_identical(seq_ref, sharded, f"{name}/workers={workers}")
            rngs = [np.random.default_rng(1000 + i) for i in range(world.num_cities)]
            collect_segments_vec(pool, policy, rngs)  # warmup
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                collect_segments_vec(pool, policy, rngs)
                times.append(time.perf_counter() - start)
        finally:
            pool.close()
        best = min(times)
        record = {
            "num_workers": pool.num_workers,
            "sharded_s": round(best, 6),
            "speedup_vs_sequential": round(sequential_s / best, 3),
            "speedup_vs_vectorized": round(vectorized_s / best, 3),
            "throughput_user_steps_per_s": round(total_steps / best, 1),
            "equivalent": True,
        }
        records.append(record)
        print(
            f"[{name}] workers={pool.num_workers}: {best:.3f}s "
            f"-> {record['speedup_vs_sequential']:.2f}x vs sequential, "
            f"{record['speedup_vs_vectorized']:.2f}x vs vectorized "
            f"({record['throughput_user_steps_per_s']:.0f} user-steps/s)"
        )
    return records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI-sized run")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--workers",
        type=str,
        default=None,
        help="comma-separated worker counts for the sharded sweep (default 1,2,4)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_rollout.json",
    )
    args = parser.parse_args()
    args.repeats = max(args.repeats, 1)

    if args.smoke:
        scenarios = [
            ("smoke_cross_city", DPRConfig(num_cities=8, drivers_per_city=8, horizon=8, seed=0)),
        ]
        sweep_scenarios = {"smoke_cross_city"}
        worker_counts = (1, 2)
        repeats = min(args.repeats, 2)
    else:
        scenarios = [
            # The ensemble-training regime Sim2Rec targets: many groups,
            # modest per-group user counts. This is the headline number.
            ("many_cities", DPRConfig(num_cities=48, drivers_per_city=10, horizon=20, seed=0)),
            ("wide_sweep", DPRConfig(num_cities=100, drivers_per_city=5, horizon=20, seed=0)),
            ("large_groups", DPRConfig(num_cities=12, drivers_per_city=64, horizon=20, seed=0)),
        ]
        sweep_scenarios = {"many_cities", "large_groups"}
        worker_counts = (1, 2, 4)
        repeats = args.repeats
    if args.workers:
        worker_counts = tuple(int(w) for w in args.workers.split(","))

    results = []
    for name, config in scenarios:
        result = bench_scenario(name, config, repeats)
        if name in sweep_scenarios:
            result["workers"] = bench_worker_sweep(
                name,
                config,
                worker_counts,
                repeats,
                result["sequential_s"],
                result["vectorized_s"],
            )
        results.append(result)
    payload = {
        "benchmark": "perf_rollout",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "scenarios": results,
        "headline_speedup": max(r["speedup"] for r in results),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output} (headline speedup {payload['headline_speedup']:.2f}x)")


if __name__ == "__main__":
    main()

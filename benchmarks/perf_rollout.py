"""Rollout-engine microbenchmark: the full collection-mode sweep.

Times every rollout mode against the sequential per-city baseline:

- ``vectorized`` — one ``policy.act`` per timestep for all cities over an
  in-process :class:`VecEnvPool` (block-diagonal env stepping, no-grad
  fast path);
- ``sharded`` — step-only worker sharding (:class:`ShardedVecEnvPool` as
  a step server with overlapped collection; policy forward in the
  parent), swept over worker counts;
- ``shard_parallel`` — full rollouts in the workers: policy replicas per
  shard (``sync_policy`` + ``collect_rollouts``), so the whole
  act → step → record loop parallelises, swept over the same counts;
- ``scenario_sweep`` — registry-driven scenario cases: every
  ``repro.scenarios`` family built from a pure config dict and driven
  through the vectorized engine, including a hundreds-of-envs SlateRec
  large-scale case (the workload the scenario subsystem exists for).

Every timed path is first proven **bit-identical** to the sequential
baseline through the same parity harness the test suite runs
(:mod:`repro.rl.parity` — the bench re-implements nothing); results go
to ``BENCH_rollout.json`` so speedups are tracked across PRs (and gated
in CI by ``.github/check_bench_regression.py``).

Worker speedups scale with physical cores: on a 1-CPU container both
sharded modes record ~1x or below (the JSON carries ``cpu_count`` so the
CI gate only enforces worker and mode floors on multi-core runners).
``shard_parallel`` is the one expected to beat ``sharded`` whenever
cores exist, because it parallelises the policy forward (the 80–95 % of
collection time the step server leaves on the parent).

``--chaos`` opts into a fault-injection sweep on top: scheduled worker
kills mid-collection (:mod:`repro.rl.chaos`) with supervision enabled,
reporting the per-incident recovery overhead — every faulted collection
passes the same bit-identity gate first.

Not a pytest module — run directly::

    python benchmarks/perf_rollout.py [--smoke] [--chaos] [--output PATH] [--workers 1,2,4]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.envs import DPRConfig, DPRWorld
from repro.rl import (
    ChaosSchedule,
    FaultPolicy,
    FaultSpec,
    RecurrentActorCritic,
    ShardedVecEnvPool,
    VecEnvPool,
    collect_segment,
    collect_segments_sequential,
    collect_segments_vec,
    sharding_available,
)
from repro.rl.parity import assert_segments_identical
from repro.scenarios import make_scenario


def make_policy(state_dim: int, action_dim: int) -> RecurrentActorCritic:
    return RecurrentActorCritic(
        state_dim,
        action_dim,
        np.random.default_rng(0),
        lstm_hidden=64,
        head_hidden=(128, 64),
    )


def make_rngs(world: DPRWorld, seed: int):
    return [np.random.default_rng(seed + i) for i in range(world.num_cities)]


def bench_scenario(name: str, config: DPRConfig, repeats: int) -> dict:
    world = DPRWorld(config)
    envs_seq = world.make_all_city_envs()
    pool = VecEnvPool(world.make_all_city_envs())
    policy = make_policy(13, 2)
    rngs = make_rngs(world, 1000)

    # Pre-timing equivalence gate: the parity harness from the test
    # suite, not a bench-local reimplementation.
    seq_ref = collect_segments_sequential(
        world.make_all_city_envs(), policy, make_rngs(world, 7)
    )
    vec_ref = collect_segments_vec(
        world.make_all_city_envs(), policy, make_rngs(world, 7)
    )
    assert_segments_identical(seq_ref, vec_ref, label=f"{name}/vectorized")
    collect_segments_vec(pool, policy, rngs)  # warmup

    seq_times, vec_times = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        for env, rng in zip(envs_seq, rngs):
            collect_segment(env, policy, rng)
        seq_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        collect_segments_vec(pool, policy, rngs)
        vec_times.append(time.perf_counter() - start)

    sequential = min(seq_times)
    vectorized = min(vec_times)
    result = {
        "name": name,
        "num_cities": config.num_cities,
        "drivers_per_city": config.drivers_per_city,
        "horizon": config.horizon,
        "total_users": config.num_cities * config.drivers_per_city,
        "sequential_s": round(sequential, 6),
        "vectorized_s": round(vectorized, 6),
        "speedup": round(sequential / vectorized, 3),
        "equivalent": True,
    }
    print(
        f"[{name}] {config.num_cities} cities x {config.drivers_per_city} drivers, "
        f"T={config.horizon}: seq={sequential:.3f}s vec={vectorized:.3f}s "
        f"-> {result['speedup']:.2f}x"
    )
    return result


def _time_sharded(pool, policy, rngs, repeats: int) -> float:
    """Steady-state step-server collection (pool warm, workers resident)."""
    collect_segments_vec(pool, policy, rngs)  # warmup
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        collect_segments_vec(pool, policy, rngs)
        times.append(time.perf_counter() - start)
    return min(times)


def _time_shard_parallel(pool, policy, rngs, repeats: int) -> float:
    """Steady-state full-rollout iteration: param broadcast + collection.

    The timed unit includes ``sync_policy`` because a training iteration
    pays it every time (fresh parameters); after the first broadcast it
    is the delta-free state-archive path, which is the steady state. An
    *unchanged* policy is skipped outright since the no-resend
    optimisation, so each repeat nudges one weight first — the timed
    broadcast is the real one a post-update iteration pays.
    """
    pool.sync_policy(policy)
    pool.collect_rollouts(rngs)  # warmup (structure already shipped)
    times = []
    param = policy.parameters()[0]
    original = param.data.copy()
    try:
        for _ in range(repeats):
            param.data += 1e-12
            start = time.perf_counter()
            pool.sync_policy(policy)
            pool.collect_rollouts(rngs)
            times.append(time.perf_counter() - start)
    finally:
        param.data[:] = original  # the shared policy must stay bit-exact
    return min(times)


def bench_mode_sweep(
    name: str,
    config: DPRConfig,
    worker_counts: tuple,
    repeats: int,
    sequential_s: float,
    vectorized_s: float,
) -> dict:
    """Time both sharded modes per worker count; verify bitwise first.

    Returns ``{"workers": [...], "mode_sweep": [...]}``: the ``workers``
    list keeps the step-server records the existing CI floors gate, and
    ``mode_sweep`` adds one record per (mode, worker count) including the
    head-to-head ``speedup_vs_sharded`` of shard-parallel collection.
    Speedups are against the sequential per-city loop (the end-to-end
    win a training run sees) and the single-process vectorized pool;
    expect < 1x on single-core machines where IPC serialises.
    Throughput is stacked user-steps per second.
    """
    world = DPRWorld(config)
    policy = make_policy(13, 2)
    total_steps = config.num_cities * config.drivers_per_city * config.horizon
    seq_ref = collect_segments_sequential(
        world.make_all_city_envs(), policy, make_rngs(world, 7)
    )
    worker_records = []
    mode_records = [
        {
            "mode": "sequential",
            "num_workers": 0,
            "time_s": round(sequential_s, 6),
            "speedup_vs_sequential": 1.0,
            "throughput_user_steps_per_s": round(total_steps / sequential_s, 1),
            "equivalent": True,
        },
        {
            "mode": "vectorized",
            "num_workers": 0,
            "time_s": round(vectorized_s, 6),
            "speedup_vs_sequential": round(sequential_s / vectorized_s, 3),
            "throughput_user_steps_per_s": round(total_steps / vectorized_s, 1),
            "equivalent": True,
        },
    ]
    for workers in worker_counts:
        if not sharding_available():
            print(f"[{name}] workers={workers}: sharding unavailable, skipped")
            continue
        sharded_s = None
        for mode in ("sharded", "shard_parallel"):
            pool = ShardedVecEnvPool(world.make_all_city_envs(), num_workers=workers)
            try:
                # The acceptance contract, re-proven inside the bench for
                # this exact layout before the clock starts.
                if mode == "sharded":
                    collected = collect_segments_vec(
                        pool, policy, make_rngs(world, 7)
                    )
                else:
                    pool.sync_policy(policy)
                    collected = pool.collect_rollouts(make_rngs(world, 7))
                assert_segments_identical(
                    seq_ref, collected, label=f"{name}/{mode}/workers={workers}"
                )
                rngs = make_rngs(world, 1000)
                if mode == "sharded":
                    best = _time_sharded(pool, policy, rngs, repeats)
                else:
                    best = _time_shard_parallel(pool, policy, rngs, repeats)
            finally:
                pool.close()
            record = {
                "mode": mode,
                "num_workers": pool.num_workers,
                "time_s": round(best, 6),
                "speedup_vs_sequential": round(sequential_s / best, 3),
                "speedup_vs_vectorized": round(vectorized_s / best, 3),
                "throughput_user_steps_per_s": round(total_steps / best, 1),
                "equivalent": True,
            }
            if mode == "sharded":
                sharded_s = best
                worker_records.append(
                    {
                        "num_workers": pool.num_workers,
                        "sharded_s": round(best, 6),
                        "speedup_vs_sequential": record["speedup_vs_sequential"],
                        "speedup_vs_vectorized": record["speedup_vs_vectorized"],
                        "throughput_user_steps_per_s": record[
                            "throughput_user_steps_per_s"
                        ],
                        "equivalent": True,
                    }
                )
            else:
                record["speedup_vs_sharded"] = round(sharded_s / best, 3)
            mode_records.append(record)
            extra = (
                f", {record['speedup_vs_sharded']:.2f}x vs sharded"
                if mode == "shard_parallel"
                else ""
            )
            print(
                f"[{name}] {mode} workers={pool.num_workers}: {best:.3f}s "
                f"-> {record['speedup_vs_sequential']:.2f}x vs sequential{extra} "
                f"({record['throughput_user_steps_per_s']:.0f} user-steps/s)"
            )
    return {"workers": worker_records, "mode_sweep": mode_records}


#: Supervision knobs for the chaos bench: short deadlines so a hang is
#: detected quickly, tiny backoff so the measured overhead is the
#: recovery machinery (snapshot respawn + journal replay), not sleeps.
CHAOS_POLICY = FaultPolicy(
    max_restarts=2,
    backoff=0.01,
    step_deadline=30.0,
    broadcast_deadline=30.0,
    collect_deadline=120.0,
)

#: Fault cases injected by ``--chaos``: a worker dying the instant it is
#: asked to collect (cheap recovery — nothing to replay) and one dying
#: just before replying (the envs already advanced a full episode, so
#: the parent must respawn from snapshot and replay the journal).
CHAOS_CASES = (
    ("kill_on_rollout", FaultSpec(kind="kill", worker=0, op="rollout", at=0)),
    (
        "kill_after_rollout",
        FaultSpec(kind="kill", worker=0, op="rollout", at=0, phase="reply"),
    ),
)


def bench_chaos(config: DPRConfig, worker_counts: tuple, repeats: int) -> list:
    """Opt-in fault-injection sweep: recovery cost of a mid-collect crash.

    For each worker count and fault case, a fresh supervised pool
    (:data:`CHAOS_POLICY`) collects one full rollout while the scheduled
    fault kills a worker; the collection must come back **bit-identical**
    to the sequential baseline (the same acceptance gate as the timed
    modes — recovery that alters results would be worse than a crash).
    The clean run rebuilds the identical pool without a schedule, so the
    reported ``recovery_overhead_s`` isolates detection + respawn +
    journal replay. Single-rollout times on fresh pools, not steady
    state: recovery cost is a per-incident number.
    """
    world = DPRWorld(config)
    policy = make_policy(13, 2)
    seq_ref = collect_segments_sequential(
        world.make_all_city_envs(), policy, make_rngs(world, 7)
    )

    def one_collect(workers, chaos):
        pool = ShardedVecEnvPool(
            world.make_all_city_envs(),
            num_workers=workers,
            fault_policy=CHAOS_POLICY,
            chaos=chaos,
        )
        try:
            pool.sync_policy(policy)
            start = time.perf_counter()
            collected = pool.collect_rollouts(make_rngs(world, 7))
            elapsed = time.perf_counter() - start
            restarts = sum(pool.restart_counts)
            degraded = pool.degraded
        finally:
            pool.close()
        return collected, elapsed, restarts, degraded

    records = []
    for workers in worker_counts:
        for case, spec in CHAOS_CASES:
            clean_times, fault_times = [], []
            for _ in range(repeats):
                collected, elapsed, restarts, degraded = one_collect(workers, None)
                assert restarts == 0 and not degraded
                clean_times.append(elapsed)
                collected, elapsed, restarts, degraded = one_collect(
                    workers, ChaosSchedule(specs=[spec])
                )
                assert restarts == 1, f"fault did not fire (restarts={restarts})"
                assert not degraded
                assert_segments_identical(
                    seq_ref, collected, label=f"chaos/{case}/workers={workers}"
                )
                fault_times.append(elapsed)
            clean, faulted = min(clean_times), min(fault_times)
            record = {
                "case": case,
                "num_workers": workers,
                "clean_collect_s": round(clean, 6),
                "faulted_collect_s": round(faulted, 6),
                "recovery_overhead_s": round(faulted - clean, 6),
                "restarts": 1,
                "equivalent": True,
            }
            records.append(record)
            print(
                f"[chaos] {case} workers={workers}: clean={clean:.3f}s "
                f"faulted={faulted:.3f}s -> +{record['recovery_overhead_s']:.3f}s "
                "recovery overhead (bit-identical)"
            )
    return records


# Registry-driven scenario cases: pure config dicts resolved through
# repro.scenarios.make_scenario — the bench never hand-wires a family.
# The large-scale slate case (240 envs) is the headline workload the
# scenario subsystem targets; its floor is committed in
# .github/bench_baselines.json.
SCENARIO_CASES = {
    "smoke": [
        (
            "scenario_slate",
            {"family": "slate", "num_envs": 12, "num_users": 6, "horizon": 6,
             "slate_size": 3, "seed": 0},
        ),
        (
            "scenario_lts",
            {"family": "lts", "task": "LTS2", "num_users": 8, "horizon": 8, "seed": 0},
        ),
    ],
    "full": [
        (
            "scenario_slate_wide",
            {"family": "slate", "num_envs": 48, "num_users": 10, "horizon": 20,
             "slate_size": 5, "seed": 0},
        ),
        (
            "scenario_slate_large_240",
            {"family": "slate", "num_envs": 240, "num_users": 8, "horizon": 12,
             "slate_size": 5, "seed": 0},
        ),
        (
            "scenario_lts_tasks",
            {"family": "lts", "task": "LTS3", "num_users": 25, "horizon": 20, "seed": 0},
        ),
        (
            "scenario_dpr_cities",
            {"family": "dpr", "num_cities": 24, "drivers_per_city": 10, "horizon": 15,
             "seed": 0},
        ),
    ],
}


def bench_scenario_sweep(cases, repeats: int) -> list:
    """Time every registry scenario case: sequential vs vectorized.

    Each case builds its training population twice from the same spec
    (fresh envs per path), proves the vectorized collection bit-identical
    to the sequential loop through the parity harness, then times both.
    Throughput is stacked user-steps per second.
    """
    records = []
    for name, spec in cases:
        scenario = make_scenario(spec)
        policy = make_policy(scenario.state_dim, scenario.action_dim)
        count = scenario.num_train_envs

        def rngs(seed):
            return [np.random.default_rng(seed + i) for i in range(count)]

        seq_ref = collect_segments_sequential(
            scenario.make_train_envs(), policy, rngs(7)
        )
        vec_ref = collect_segments_vec(scenario.make_train_envs(), policy, rngs(7))
        assert_segments_identical(seq_ref, vec_ref, label=f"{name}/vectorized")

        envs_seq = scenario.make_train_envs()
        pool = VecEnvPool(scenario.make_train_envs())
        streams = rngs(1000)
        collect_segments_vec(pool, policy, streams)  # warmup
        case_repeats = max(1, repeats if count < 100 else repeats // 2)
        seq_times, vec_times = [], []
        for _ in range(case_repeats):
            start = time.perf_counter()
            for env, rng in zip(envs_seq, streams):
                collect_segment(env, policy, rng)
            seq_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            collect_segments_vec(pool, policy, streams)
            vec_times.append(time.perf_counter() - start)

        sequential, vectorized = min(seq_times), min(vec_times)
        total_users = pool.num_users
        horizon = pool.horizon
        record = {
            "name": name,
            "spec": scenario.spec.to_dict(),
            "num_envs": count,
            "total_users": total_users,
            "horizon": horizon,
            "sequential_s": round(sequential, 6),
            "vectorized_s": round(vectorized, 6),
            "speedup": round(sequential / vectorized, 3),
            "throughput_user_steps_per_s": round(total_users * horizon / vectorized, 1),
            "equivalent": True,
        }
        records.append(record)
        print(
            f"[{name}] {count} envs x {total_users // count} users "
            f"({scenario.spec.family}), T={horizon}: seq={sequential:.3f}s "
            f"vec={vectorized:.3f}s -> {record['speedup']:.2f}x"
        )
    return records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI-sized run")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="also run the fault-injection sweep: kill workers mid-collect "
        "and report per-incident recovery overhead (parity-gated)",
    )
    parser.add_argument(
        "--workers",
        type=str,
        default=None,
        help="comma-separated worker counts for the sharded sweeps (default 1,2,4)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_rollout.json",
    )
    args = parser.parse_args()
    args.repeats = max(args.repeats, 1)

    if args.smoke:
        scenarios = [
            ("smoke_cross_city", DPRConfig(num_cities=8, drivers_per_city=8, horizon=8, seed=0)),
        ]
        sweep_scenarios = {"smoke_cross_city"}
        worker_counts = (1, 2)
        repeats = min(args.repeats, 2)
    else:
        scenarios = [
            # The ensemble-training regime Sim2Rec targets: many groups,
            # modest per-group user counts. This is the headline number.
            ("many_cities", DPRConfig(num_cities=48, drivers_per_city=10, horizon=20, seed=0)),
            ("wide_sweep", DPRConfig(num_cities=100, drivers_per_city=5, horizon=20, seed=0)),
            ("large_groups", DPRConfig(num_cities=12, drivers_per_city=64, horizon=20, seed=0)),
        ]
        sweep_scenarios = {"many_cities", "large_groups"}
        worker_counts = (1, 2, 4)
        repeats = args.repeats
    if args.workers:
        worker_counts = tuple(int(w) for w in args.workers.split(","))

    results = []
    for name, config in scenarios:
        result = bench_scenario(name, config, repeats)
        if name in sweep_scenarios:
            result.update(
                bench_mode_sweep(
                    name,
                    config,
                    worker_counts,
                    repeats,
                    result["sequential_s"],
                    result["vectorized_s"],
                )
            )
        results.append(result)
    scenario_sweep = bench_scenario_sweep(
        SCENARIO_CASES["smoke" if args.smoke else "full"], repeats
    )
    chaos_records = None
    if args.chaos:
        if sharding_available():
            # Recovery cost is per-incident, not throughput-bound: the
            # small smoke layout keeps the sweep fast at any scale.
            chaos_config = DPRConfig(
                num_cities=8, drivers_per_city=8, horizon=8, seed=0
            )
            chaos_records = bench_chaos(
                chaos_config, worker_counts, min(repeats, 2)
            )
        else:
            print("[chaos] sharding unavailable, skipped")
    payload = {
        "benchmark": "perf_rollout",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "scenarios": results,
        "scenario_sweep": scenario_sweep,
        "headline_speedup": max(r["speedup"] for r in results),
    }
    if chaos_records is not None:
        payload["chaos"] = chaos_records
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output} (headline speedup {payload['headline_speedup']:.2f}x)")


if __name__ == "__main__":
    main()

"""Rollout-engine microbenchmark: sequential vs batched cross-city collection.

Times ``collect_segment`` looped city by city against
``collect_segments_vec`` over a :class:`VecEnvPool` (one ``policy.act``
per timestep for all cities, block-diagonal env stepping, no-grad fast
path), verifies the two produce bit-identical segments, and writes the
results to ``BENCH_rollout.json`` so the speedup is tracked across PRs.

Not a pytest module — run directly::

    PYTHONPATH=src python benchmarks/perf_rollout.py [--smoke] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.envs import DPRConfig, DPRWorld
from repro.rl import (
    RecurrentActorCritic,
    VecEnvPool,
    collect_segment,
    collect_segments_vec,
)


def make_policy(state_dim: int, action_dim: int) -> RecurrentActorCritic:
    return RecurrentActorCritic(
        state_dim,
        action_dim,
        np.random.default_rng(0),
        lstm_hidden=64,
        head_hidden=(128, 64),
    )


def verify_equivalence(world: DPRWorld, policy, seed: int) -> None:
    """The timed paths must agree bit for bit before we trust the clock."""
    n = world.num_cities
    seq = [
        collect_segment(env, policy, np.random.default_rng(seed + i))
        for i, env in enumerate(world.make_all_city_envs())
    ]
    vec = collect_segments_vec(
        world.make_all_city_envs(),
        policy,
        [np.random.default_rng(seed + i) for i in range(n)],
    )
    for s, v in zip(seq, vec):
        for name in ("states", "actions", "rewards", "values", "log_probs", "last_values"):
            if not np.array_equal(getattr(s, name), getattr(v, name)):
                raise AssertionError(f"sequential/vectorized mismatch in {name}")


def bench_scenario(name: str, config: DPRConfig, repeats: int) -> dict:
    world = DPRWorld(config)
    envs_seq = world.make_all_city_envs()
    pool = VecEnvPool(world.make_all_city_envs())
    policy = make_policy(13, 2)
    rngs = [np.random.default_rng(1000 + i) for i in range(world.num_cities)]

    verify_equivalence(world, policy, seed=7)
    collect_segments_vec(pool, policy, rngs)  # warmup

    seq_times, vec_times = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        for env, rng in zip(envs_seq, rngs):
            collect_segment(env, policy, rng)
        seq_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        collect_segments_vec(pool, policy, rngs)
        vec_times.append(time.perf_counter() - start)

    sequential = min(seq_times)
    vectorized = min(vec_times)
    result = {
        "name": name,
        "num_cities": config.num_cities,
        "drivers_per_city": config.drivers_per_city,
        "horizon": config.horizon,
        "total_users": config.num_cities * config.drivers_per_city,
        "sequential_s": round(sequential, 6),
        "vectorized_s": round(vectorized, 6),
        "speedup": round(sequential / vectorized, 3),
        "equivalent": True,
    }
    print(
        f"[{name}] {config.num_cities} cities x {config.drivers_per_city} drivers, "
        f"T={config.horizon}: seq={sequential:.3f}s vec={vectorized:.3f}s "
        f"-> {result['speedup']:.2f}x"
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI-sized run")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_rollout.json",
    )
    args = parser.parse_args()
    args.repeats = max(args.repeats, 1)

    if args.smoke:
        scenarios = [
            ("smoke_cross_city", DPRConfig(num_cities=8, drivers_per_city=8, horizon=8, seed=0)),
        ]
        repeats = min(args.repeats, 2)
    else:
        scenarios = [
            # The ensemble-training regime Sim2Rec targets: many groups,
            # modest per-group user counts. This is the headline number.
            ("many_cities", DPRConfig(num_cities=48, drivers_per_city=10, horizon=20, seed=0)),
            ("wide_sweep", DPRConfig(num_cities=100, drivers_per_city=5, horizon=20, seed=0)),
            ("large_groups", DPRConfig(num_cities=12, drivers_per_city=64, horizon=20, seed=0)),
        ]
        repeats = args.repeats

    results = [bench_scenario(name, config, repeats) for name, config in scenarios]
    payload = {
        "benchmark": "perf_rollout",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scenarios": results,
        "headline_speedup": max(r["speedup"] for r in results),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output} (headline speedup {payload['headline_speedup']:.2f}x)")


if __name__ == "__main__":
    main()

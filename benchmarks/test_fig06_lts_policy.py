"""Fig. 6 — zero-shot transfer on LTS1 / LTS2 / LTS3.

Paper claims (shape, not absolute numbers):

- **DIRECT** suffers severe degradation when deployed to the unseen
  ω* = [0, 0] environment — training on one wrong simulator without
  considering the reality gap produces unpredictable behaviour;
- methods that train across the simulator set (DR-UNI, DR-OSI, Sim2Rec)
  are more robust;
- representation-based methods (Sim2Rec, DR-OSI) beat the conservative
  unified policy (DR-UNI);
- **Sim2Rec** approaches the Upper Bound (a policy trained directly in the
  target domain) and beats DR-OSI on the harder tasks.

Bench scale: 40 users / horizon 30 / tens of PPO iterations instead of
750 users / horizon 140 / 2·10⁹ steps. Two faithful time-compressions keep
the paper's mechanism alive at this scale: (1) the SAT dynamics are
accelerated (higher sensitivity, lower memory discount) so group-dependent
optima diverge within the horizon, and (2) the group observation noise is
raised to σ=6 so identification genuinely requires aggregation — over
users for SADAE, over time for DR-OSI.
"""

import numpy as np

from repro.baselines import (
    lts_single_sampler,
    lts_task_sampler,
    make_direct_trainer,
    make_dr_osi_trainer,
    make_dr_uni_trainer,
)
from repro.core import Sim2RecLTSTrainer, build_sim2rec_policy, lts_small_config
from repro.envs import make_lts_task
from repro.rl import evaluate

from .conftest import print_table

NUM_USERS = 40
HORIZON = 30
OBS_NOISE = 6.0
MLP_ITERATIONS = 50
RECURRENT_ITERATIONS = 30
EVAL_EPISODES = 3
TASKS = ("LTS1", "LTS2", "LTS3")


def evaluate_on_target(task, policy) -> float:
    returns = []
    for episode_seed in range(EVAL_EPISODES):
        env = task.make_target_env(seed_offset=1000 + episode_seed)
        act_fn = policy.as_act_fn(np.random.default_rng(episode_seed), deterministic=True)
        returns.append(evaluate(act_fn, env, episodes=1))
    return float(np.mean(returns))


def run_task(task_name: str) -> dict:
    task = make_lts_task(
        task_name,
        num_users=NUM_USERS,
        horizon=HORIZON,
        seed=0,
        observation_noise_std=OBS_NOISE,
        sensitivity_range=(0.25, 0.4),
        memory_discount_range=(0.7, 0.8),
    )
    config = lts_small_config(seed=0)
    results = {}

    # Upper Bound: PPO directly in the target domain.
    ub_trainer = make_dr_uni_trainer(
        2, 1, lambda rng: task.make_target_env(), config
    )
    ub_trainer.train(MLP_ITERATIONS)
    results["UpperBound"] = evaluate_on_target(task, ub_trainer.policy)

    direct_trainer = make_direct_trainer(2, 1, lts_single_sampler(task, 0), config)
    direct_trainer.train(MLP_ITERATIONS)
    results["DIRECT"] = evaluate_on_target(task, direct_trainer.policy)

    dr_uni_trainer = make_dr_uni_trainer(2, 1, lts_task_sampler(task), config)
    dr_uni_trainer.train(MLP_ITERATIONS)
    results["DR-UNI"] = evaluate_on_target(task, dr_uni_trainer.policy)

    dr_osi_trainer = make_dr_osi_trainer(2, 1, lts_task_sampler(task), config)
    dr_osi_trainer.train(RECURRENT_ITERATIONS)
    results["DR-OSI"] = evaluate_on_target(task, dr_osi_trainer.policy)

    sim2rec_policy = build_sim2rec_policy(2, 1, config)
    sim2rec_trainer = Sim2RecLTSTrainer(sim2rec_policy, task, config)
    sim2rec_trainer.pretrain_sadae(epochs=20, users_per_set=NUM_USERS)
    sim2rec_trainer.train(RECURRENT_ITERATIONS)
    results["Sim2Rec"] = evaluate_on_target(task, sim2rec_policy)

    return results


def run_experiment():
    return {task_name: run_task(task_name) for task_name in TASKS}


def test_fig06_lts_policy(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    methods = ["Sim2Rec", "DR-OSI", "DR-UNI", "DIRECT", "UpperBound"]
    rows = [
        [task] + [f"{results[task][m]:.1f}" for m in methods] for task in TASKS
    ]
    print_table(
        "Fig. 6: target-environment rewards after zero-shot transfer",
        ["task"] + methods,
        rows,
    )

    for task in TASKS:
        r = results[task]
        print(
            f"shape check [{task}]: Sim2Rec={r['Sim2Rec']:.0f} vs DIRECT={r['DIRECT']:.0f}, "
            f"DR-UNI={r['DR-UNI']:.0f}, DR-OSI={r['DR-OSI']:.0f}, UB={r['UpperBound']:.0f}"
        )
        # DIRECT degrades hardest; Sim2Rec must clearly beat it.
        assert r["Sim2Rec"] > r["DIRECT"], f"{task}: Sim2Rec must beat DIRECT"
        # Representation-based Sim2Rec beats the conservative unified policy.
        assert r["Sim2Rec"] > r["DR-UNI"] * 0.98, f"{task}: Sim2Rec must match/beat DR-UNI"
        # Near-optimality relative to in-domain training.
        assert r["Sim2Rec"] > 0.8 * r["UpperBound"], f"{task}: Sim2Rec near Upper Bound"

    # Averaged over tasks, Sim2Rec should not lose to DR-OSI (the paper has
    # it strictly better on the harder tasks).
    sim2rec_mean = np.mean([results[t]["Sim2Rec"] for t in TASKS])
    dr_osi_mean = np.mean([results[t]["DR-OSI"] for t in TASKS])
    print(f"shape check [avg]: Sim2Rec={sim2rec_mean:.1f} DR-OSI={dr_osi_mean:.1f}")
    assert sim2rec_mean > dr_osi_mean * 0.95

"""Fig. 10 — intervention test: clustered driver responses to bonus shifts.

Paper claims:

- clustering each simulator's predicted order responses to a ΔB sweep
  yields a handful of reaction patterns, and the patterns are similar
  across simulators;
- some patterns violate the prior knowledge that bonus elasticity is
  positive (clusters A/B/C in the paper) — MLE simulators extrapolate
  non-physically off the behaviour policy's support;
- a substantial share of drivers (15% in the paper) fall in a violating
  cluster in *every* simulator — these consistently mislead training and
  are what F_trend removes.
"""


from repro.eval import cluster_driver_responses, consistent_violators

from .conftest import print_table

NUM_CLUSTERS = 5
SIM_NAMES = ("SimA", "SimB", "SimC")


def run_experiment(dpr_suite):
    group = dpr_suite.dataset_train.groups[0]
    results = []
    for index in range(len(SIM_NAMES)):
        results.append(
            cluster_driver_responses(
                dpr_suite.holdout_ensemble,
                group,
                member_index=index,
                num_clusters=NUM_CLUSTERS,
                seed=0,
            )
        )
    always_bad = consistent_violators(results)
    return results, always_bad


def test_fig10_intervention(benchmark, dpr_suite):
    results, always_bad = benchmark.pedantic(
        run_experiment, args=(dpr_suite,), rounds=1, iterations=1
    )

    rows = []
    for name, result in zip(SIM_NAMES, results):
        for cluster in range(NUM_CLUSTERS):
            size = int((result.labels == cluster).sum())
            rows.append(
                [
                    name,
                    f"cluster {cluster}",
                    size,
                    f"{result.cluster_slopes[cluster]:+.3f}",
                    "VIOLATES" if result.cluster_slopes[cluster] <= 0 else "ok",
                ]
            )
    print_table(
        "Fig. 10: k-means clusters of predicted order response to bonus shift",
        ["simulator", "cluster", "drivers", "slope d(orders)/d(bonus)", "prior check"],
        rows,
    )

    fractions = [r.violating_fraction for r in results]
    consistent_share = float(always_bad.mean())
    print(
        "shape check: violating fraction per simulator = "
        + ", ".join(f"{f:.0%}" for f in fractions)
        + f"; consistently-violating drivers = {consistent_share:.0%} (paper: 15%)"
    )
    # Paper shape: the extrapolation pathology exists in learned simulators...
    assert any(f > 0 for f in fractions), "some response patterns should violate the prior"
    # ...but does not dominate (most drivers respond physically).
    assert all(f < 0.9 for f in fractions), "violations must not dominate"
    # The consistently-pathological set is a strict subset.
    assert consistent_share <= min(fractions) + 1e-9

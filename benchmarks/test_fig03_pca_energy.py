"""Fig. 3 — cumulative PCA energy ratio of SADAE's latent code over training.

Paper claim: as SADAE trains on the LTS3 group datasets, the latent υ
collapses onto its first principal component (after 6000 epochs the code
"can be almost represented by the first principal component"), and that
component tracks the ground-truth group parameter ω_g linearly (Fig. 12).
"""

import numpy as np

from repro.eval import PCA

from .conftest import print_table
from .lts_sadae_common import build_lts3_corpus, make_lts_sadae, train_with_checkpoints

TOTAL_EPOCHS = 100
CHECKPOINT_EVERY = 25


def run_experiment():
    task, sets, omega_tags = build_lts3_corpus(num_users=120, steps_per_env=5)
    sadae = make_lts_sadae(seed=0)
    sadae.fit_normalizer(sets)

    def snapshot(epoch):
        embeddings = np.stack([sadae.embed(states, None) for states, _ in sets])
        pca = PCA(embeddings)
        projected = pca.transform(embeddings, k=1)[:, 0]
        correlation = abs(np.corrcoef(projected, np.array(omega_tags))[0, 1])
        return pca.energy_ratio(), correlation

    return train_with_checkpoints(
        sadae, sets, TOTAL_EPOCHS, CHECKPOINT_EVERY, snapshot
    )


def test_fig03_pca_energy(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    epochs = sorted(results)
    rows = []
    for epoch in epochs:
        ratio, correlation = results[epoch]
        rows.append(
            [
                f"{epoch}-epoch",
                *(f"{r:.3f}" for r in ratio),
                f"{correlation:.3f}",
            ]
        )
    num_components = len(results[epochs[0]][0])
    headers = ["checkpoint"] + [f"PC{i+1} cum." for i in range(num_components)] + [
        "|corr(PC1, omega_g)|"
    ]
    print_table("Fig. 3: cumulative energy ratio of upsilon's principal components", headers, rows)

    first_pc_initial = results[0][0][0]
    first_pc_final = results[epochs[-1]][0][0]
    two_pc_final = results[epochs[-1]][0][1]
    corr_initial = results[0][1]
    corr_final = results[epochs[-1]][1]
    print(
        f"\nshape check: PC1 share {first_pc_initial:.3f} -> {first_pc_final:.3f}, "
        f"PC1+PC2 -> {two_pc_final:.3f}, |corr(PC1, omega_g)| "
        f"{corr_initial:.3f} -> {corr_final:.3f}"
    )
    # Paper shape: the trained 5-dim latent lives on a low-dimensional
    # subspace (the paper reaches one PC after 6000 epochs; at our scale the
    # SAT variation keeps a second component alive) ...
    assert two_pc_final > 0.95, "latent should collapse onto <= 2 components"
    # ... and the dominant component encodes the group parameter (Fig. 12).
    assert corr_final > 0.85, "PC1 should track the ground-truth omega_g"

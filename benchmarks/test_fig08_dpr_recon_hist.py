"""Fig. 8 — SADAE reconstruction histograms on real (DPR) logged data.

Paper claim: after training on the DPR logged dataset, the reconstructed
marginal distributions of individual state features are significantly
correlated with the real ones (six example histograms in the paper).
"""

import numpy as np

from repro.core import SADAE, SADAEConfig, train_sadae
from repro.eval import dataset_kld

from .conftest import print_table

FEATURES_TO_REPORT = 6
TRAIN_EPOCHS = 40


def run_experiment(dpr_suite):
    dataset = dpr_suite.dataset_train
    sets = dataset.state_action_sets()
    sadae = SADAE(
        dataset.state_dim,
        dataset.action_dim,
        SADAEConfig(
            latent_dim=8,
            encoder_hidden=(64, 64),
            decoder_hidden=(64, 64),
            learning_rate=1e-3,
            weight_decay=1e-4,
            seed=0,
        ),
    )
    sadae.fit_normalizer(sets)

    # Evaluate on the held-out users' sets (the unseen environment).
    eval_sets = dpr_suite.dataset_test.state_action_sets()[:10]
    rng = np.random.default_rng(0)

    def feature_klds():
        real = np.concatenate([s for s, _ in eval_sets], axis=0)
        recon = np.concatenate(
            [
                sadae.sample_reconstruction(s, a, rng, num_samples=s.shape[0])[0]
                for s, a in eval_sets
            ],
            axis=0,
        )
        klds, summaries = [], []
        for feature in range(FEATURES_TO_REPORT):
            real_f = real[:, feature : feature + 1]
            recon_f = recon[:, feature : feature + 1]
            klds.append(dataset_kld(real_f, recon_f, max_points=300))
            summaries.append(
                (
                    f"{real_f.mean():7.2f}/{real_f.std():5.2f}",
                    f"{recon_f.mean():7.2f}/{recon_f.std():5.2f}",
                )
            )
        return np.array(klds), summaries

    before_klds, _ = feature_klds()
    train_sadae(
        sadae, sets, epochs=TRAIN_EPOCHS, rng=np.random.default_rng(0), fit_normalizer=False
    )
    after_klds, summaries = feature_klds()
    return before_klds, after_klds, summaries


def test_fig08_dpr_recon_hist(benchmark, dpr_suite):
    before, after, summaries = benchmark.pedantic(
        run_experiment, args=(dpr_suite,), rounds=1, iterations=1
    )

    rows = [
        [
            f"state[{i}]",
            summaries[i][0],
            summaries[i][1],
            f"{before[i]:.3f}",
            f"{after[i]:.3f}",
        ]
        for i in range(len(after))
    ]
    print_table(
        "Fig. 8: real vs reconstructed DPR state features (held-out users)",
        ["feature", "real mean/std", "recon mean/std", "KLD before", "KLD after"],
        rows,
    )

    print(
        f"shape check: mean per-feature KLD {before.mean():.3f} -> {after.mean():.3f}"
    )
    # Paper shape: training produces significantly correlated reconstructions.
    assert after.mean() < before.mean(), "training must improve reconstruction"
    assert (after < 1.5).sum() >= len(after) - 1, "most features should reconstruct well"

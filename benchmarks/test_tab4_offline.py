"""Table IV — offline tests: Sim2Rec vs DIRECT vs DeepFM vs WideDeep.

Paper claims (expected cumulative rewards in three held-out simulators
SimA/SimB/SimC):

- Sim2Rec performs consistently and takes the best overall results;
- DIRECT is wildly inconsistent across deployment simulators (0.450 /
  0.241 / 0.027 in the paper) — "RL-style algorithms are more likely to
  overfit the simulator, leading to unreliable behaviour when deployed";
- the supervised recommenders (DeepFM, WideDeep) transfer without
  dramatic decline but do not reach Sim2Rec.

At our scale DIRECT's overfit manifests exactly as in the paper's Fig. 10
analysis: it drives difficulty to ~1 and bonus to ~0 (far off the logged
support), which *inflates* its score on the held-out simulators that share
the ensemble's extrapolation bias while collapsing in the ground-truth
world. The bench therefore checks the paper's robust claims — consistency
across simulators and dominance where it matters — and adds a
ground-truth-world column (information the paper's authors could not have
offline) confirming the offline ranking's intent.
"""

import numpy as np

from repro.eval import expected_cumulative_reward

from .conftest import print_table

SIM_NAMES = ("SimA", "SimB", "SimC")
EVAL_HORIZON = 20
METHODS = ("sim2rec", "direct", "deepfm", "widedeep")
LABELS = {
    "sim2rec": "Sim2Rec",
    "direct": "DIRECT",
    "deepfm": "DeepFM",
    "widedeep": "WideDeep",
}


def run_experiment(dpr_suite):
    results = {}
    ground_truth = {}
    for method in METHODS:
        act_fn = dpr_suite.act_fn(method)
        per_sim = []
        for sim_index in range(len(SIM_NAMES)):
            values = []
            for group_index in range(5):
                env = dpr_suite.holdout_sim_env(
                    sim_index,
                    group_index=group_index,
                    horizon=EVAL_HORIZON,
                    seed=300 + sim_index * 10 + group_index,
                )
                values.append(
                    expected_cumulative_reward(env, act_fn, episodes=2, gamma=0.9)
                )
            per_sim.append(float(np.mean(values)))
        results[method] = per_sim
        gt_values = [
            expected_cumulative_reward(
                dpr_suite.world.make_city_env(city, seed=777 + city),
                act_fn,
                episodes=1,
                gamma=0.9,
            )
            for city in range(dpr_suite.world.num_cities)
        ]
        ground_truth[method] = float(np.mean(gt_values))
    return results, ground_truth


def test_tab4_offline(benchmark, dpr_suite):
    results, ground_truth = benchmark.pedantic(
        run_experiment, args=(dpr_suite,), rounds=1, iterations=1
    )

    rows = [
        [LABELS[m]]
        + [f"{value:.3f}" for value in results[m]]
        + [f"{ground_truth[m]:.3f}"]
        for m in METHODS
    ]
    print_table(
        "Table IV: expected cumulative rewards in held-out simulators (+ ground truth)",
        ["method"] + list(SIM_NAMES) + ["ground truth*"],
        rows,
    )
    print("* ground-truth column: our synthetic world allows the check the paper could not run offline")

    sim2rec = np.array(results["sim2rec"])
    direct = np.array(results["direct"])
    deepfm = np.array(results["deepfm"])
    widedeep = np.array(results["widedeep"])

    spreads = {m: np.array(results[m]).max() / max(np.array(results[m]).min(), 1e-9) for m in METHODS}
    print(
        "shape check: cross-simulator spread (max/min) "
        + ", ".join(f"{LABELS[m]} {spreads[m]:.2f}" for m in METHODS)
        + f"; ground truth Sim2Rec {ground_truth['sim2rec']:.2f} "
        f"vs DIRECT {ground_truth['direct']:.2f}, DeepFM {ground_truth['deepfm']:.2f}, "
        f"WideDeep {ground_truth['widedeep']:.2f}"
    )
    # Paper shape 1: DIRECT is the least consistent across deployment
    # simulators (0.450 -> 0.027 in the paper); Sim2Rec is the most stable.
    assert spreads["direct"] == max(spreads.values()), "DIRECT must be least consistent"
    assert spreads["sim2rec"] == min(spreads.values()), "Sim2Rec must be most consistent"
    # Paper shape 2: Sim2Rec never collapses — its worst-case across the
    # deployment simulators stays within a few percent of the best
    # worst-case among all baselines.
    best_other_worst = max(direct.min(), deepfm.min(), widedeep.min())
    assert sim2rec.min() > 0.9 * best_other_worst
    # Intent check: in the real world (never touched during training),
    # Sim2Rec beats every baseline outright.
    for method in ("direct", "deepfm", "widedeep"):
        assert ground_truth["sim2rec"] > ground_truth[method], (
            f"Sim2Rec must beat {method} in the ground-truth world"
        )

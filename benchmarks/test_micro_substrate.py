"""Micro-benchmarks of the substrate (repeated-round timings).

These are conventional pytest-benchmark measurements (many rounds) of the
hot paths every experiment depends on: autodiff forward/backward, LSTM
BPTT, PPO updates, SADAE ELBO steps and the KDE metric. They quantify the
cost of the from-scratch numpy engine that replaces the paper's
TensorFlow stack (a substitution documented in DESIGN.md).
"""

import numpy as np

from repro import nn
from repro.core import SADAE, SADAEConfig
from repro.envs import LTSConfig, LTSEnv
from repro.eval import GaussianKDE
from repro.rl import MLPActorCritic, PPO, PPOConfig, RolloutBuffer, collect_segment

RNG = np.random.default_rng(0)


def test_mlp_forward_backward(benchmark):
    mlp = nn.MLP([64, 128, 128, 1], np.random.default_rng(0))
    inputs = RNG.standard_normal((256, 64))

    def step():
        mlp.zero_grad()
        out = mlp(nn.Tensor(inputs)).sum()
        out.backward()
        return out.item()

    benchmark(step)


def test_lstm_bptt_30_steps(benchmark):
    lstm = nn.LSTM(16, 32, np.random.default_rng(0))
    seq = RNG.standard_normal((30, 32, 16))

    def step():
        lstm.zero_grad()
        outputs, _ = lstm(nn.Tensor(seq))
        outputs.sum().backward()

    benchmark(step)


def test_sadae_elbo_step(benchmark):
    sadae = SADAE(
        13,
        2,
        SADAEConfig(latent_dim=8, encoder_hidden=(64, 64), decoder_hidden=(64, 64), seed=0),
    )
    states = RNG.standard_normal((100, 13))
    actions = RNG.uniform(0, 1, (100, 2))
    sadae.fit_normalizer([(states, actions)])
    rng = np.random.default_rng(1)

    def step():
        sadae.zero_grad()
        (-sadae.elbo(states, actions, rng)).backward()

    benchmark(step)


def test_ppo_iteration_lts(benchmark):
    env = LTSEnv(LTSConfig(num_users=30, horizon=20, seed=0))
    policy = MLPActorCritic(2, 1, np.random.default_rng(0), hidden_sizes=(32, 32))
    ppo = PPO(policy, PPOConfig(update_epochs=2, minibatches_per_segment=2))
    rng = np.random.default_rng(0)

    def step():
        buffer = RolloutBuffer()
        buffer.add(collect_segment(env, policy, rng))
        buffer.finalize(0.99, 0.95)
        return ppo.update(buffer)["policy_loss"]

    benchmark(step)


def test_kde_logpdf(benchmark):
    data = RNG.standard_normal((500, 3))
    kde = GaussianKDE(data)
    queries = RNG.standard_normal((200, 3))

    benchmark(lambda: kde.logpdf(queries))


def test_product_of_gaussians(benchmark):
    means = nn.Tensor(RNG.standard_normal((200, 8)), requires_grad=True)
    log_stds = nn.Tensor(RNG.standard_normal((200, 8)) * 0.1, requires_grad=True)

    def step():
        means.zero_grad()
        log_stds.zero_grad()
        product = nn.product_of_gaussians(means, log_stds, axis=0)
        (product.mean.sum() + product.log_std.sum()).backward()

    benchmark(step)

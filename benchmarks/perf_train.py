"""Training-backbone microbenchmark: sequential vs batched learner updates.

The learning-side companion of ``perf_rollout.py``: times the PPO update
loop with per-segment LSTM unrolls (``batch_segments=False``) against the
stacked-segment BPTT path (``batch_segments=True``, one time-major
``[T, sum-of-users, d]`` pass per minibatch round), and one SADAE epoch
with per-set ELBO forwards against the set-batched ``elbo_batch`` path.
Verifies the batched evaluation is bit-identical to the sequential one
before trusting the clock, and writes the results to ``BENCH_train.json``
so the speedup is tracked across PRs.

A singleton ``pipelined`` record additionally times whole training
iterations with ``determinism="strict"`` against ``"pipelined"`` (the
collect/update overlap, docs/performance.md): its equivalence gate is
seeded run-to-run reproducibility of the pipelined trajectory, and its
CI floor is ``min_cpus``-gated — a 1-CPU machine has nothing to overlap.

Not a pytest module — run directly::

    python benchmarks/perf_train.py [--smoke] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import SADAE, SADAEConfig, train_sadae
from repro.envs import DPRConfig, DPRWorld
from repro.rl import (
    PPO,
    PPOConfig,
    RecurrentActorCritic,
    RolloutBuffer,
    collect_segments_vec,
)


def snapshot_parameters(module):
    return [param.data.copy() for param in module.parameters()]


def restore_parameters(module, snapshot):
    for param, data in zip(module.parameters(), snapshot):
        param.data = data.copy()


def verify_eval_equivalence(policy, buffer) -> None:
    """Stacked evaluation must reproduce per-segment evaluation bit for bit."""
    segments = list(buffer)
    idxs = [np.arange(segment.num_users) for segment in segments]
    sequential = [policy.evaluate_segment(s, i) for s, i in zip(segments, idxs)]
    log_probs, values, entropy = policy.evaluate_segments_batched(segments, idxs)
    offset = 0
    for (seq_lp, seq_v, seq_e), idx in zip(sequential, idxs):
        block = slice(offset, offset + len(idx))
        for name, a, b in (
            ("log_probs", seq_lp.data, log_probs.data[:, block]),
            ("values", seq_v.data, values.data[:, block]),
            ("entropy", seq_e.data, entropy.data[:, block]),
        ):
            if not np.array_equal(a, b):
                raise AssertionError(f"sequential/batched evaluation mismatch in {name}")
        offset += len(idx)


def bench_ppo_update(name: str, config: DPRConfig, horizon: int, repeats: int) -> dict:
    """Time PPO.update over one iteration's many-city buffer, both paths."""
    world = DPRWorld(config)
    policy = RecurrentActorCritic(
        13, 2, np.random.default_rng(0), lstm_hidden=64, head_hidden=(128, 64)
    )
    envs = world.make_all_city_envs()
    rngs = [np.random.default_rng(1000 + i) for i in range(len(envs))]
    buffer = RolloutBuffer()
    for segment in collect_segments_vec(envs, policy, rngs, max_steps=horizon):
        buffer.add(segment)
    buffer.finalize(0.99, 0.95)
    verify_eval_equivalence(policy, buffer)
    initial = snapshot_parameters(policy)

    def timed_update(batch_segments: bool) -> float:
        best = np.inf
        for _ in range(repeats):
            restore_parameters(policy, initial)
            ppo = PPO(policy, PPOConfig(update_epochs=2, batch_segments=batch_segments))
            start = time.perf_counter()
            ppo.update(buffer)
            best = min(best, time.perf_counter() - start)
        return best

    timed_update(True)  # warmup (scratch buffers, BLAS threads)
    sequential = timed_update(False)
    batched = timed_update(True)
    restore_parameters(policy, initial)
    result = {
        "name": name,
        "kind": "ppo_update",
        "num_cities": config.num_cities,
        "drivers_per_city": config.drivers_per_city,
        "horizon": horizon,
        "total_users": config.num_cities * config.drivers_per_city,
        "sequential_s": round(sequential, 6),
        "batched_s": round(batched, 6),
        "speedup": round(sequential / batched, 3),
        "equivalent": True,
    }
    print(
        f"[{name}] {config.num_cities} cities x {config.drivers_per_city} drivers, "
        f"T={horizon}: seq={sequential:.3f}s batched={batched:.3f}s "
        f"-> {result['speedup']:.2f}x"
    )
    return result


def bench_sadae_epoch(name: str, num_sets: int, users_per_set: int, repeats: int) -> dict:
    """Time SADAE epochs with per-set vs set-batched ELBO forwards."""
    rng = np.random.default_rng(0)
    sets = []
    for _ in range(num_sets):
        mean = rng.uniform(-2, 2, 2)
        sets.append(
            (rng.normal(mean, 1.0, (users_per_set, 2)), rng.normal(0, 1, (users_per_set, 1)))
        )
    sadae = SADAE(
        2,
        1,
        SADAEConfig(latent_dim=8, encoder_hidden=(64, 64), decoder_hidden=(64, 64), seed=0),
    )
    initial = snapshot_parameters(sadae)

    losses = {}

    def timed_epochs(batched: bool) -> float:
        best = np.inf
        for _ in range(repeats):
            restore_parameters(sadae, initial)
            start = time.perf_counter()
            losses[batched] = train_sadae(
                sadae, sets, epochs=2, rng=np.random.default_rng(7), batched=batched
            )
            best = min(best, time.perf_counter() - start)
        return best

    timed_epochs(True)  # warmup
    sequential = timed_epochs(False)
    batched = timed_epochs(True)
    # Per-step forwards are bit-identical given identical parameters
    # (enforced by tests/core/test_sadae_batched.py); across optimizer
    # steps the backward pass's summation order lets parameters drift at
    # the last ulp, so epoch means agree to ≤1e-10 rather than exactly.
    if not np.allclose(losses[False], losses[True], rtol=1e-10, atol=1e-10):
        raise AssertionError("sequential/batched SADAE losses diverged beyond 1e-10")
    result = {
        "name": name,
        "kind": "sadae_epoch",
        "num_sets": num_sets,
        "users_per_set": users_per_set,
        "sequential_s": round(sequential, 6),
        "batched_s": round(batched, 6),
        "speedup": round(sequential / batched, 3),
        "equivalent": True,
    }
    print(
        f"[{name}] {num_sets} sets x {users_per_set} users: "
        f"seq={sequential:.3f}s batched={batched:.3f}s -> {result['speedup']:.2f}x"
    )
    return result


def bench_pipelined(name: str, repeats: int, iterations: int, spec: dict) -> dict:
    """Time strict vs pipelined training end to end on a scenario run.

    The equivalence gate is the pipelined contract itself: the same
    config and seed must reproduce the same metric trajectory run to
    run (``verify_training_reproducibility``) before any clock is
    trusted. The speedup is bounded by min(collect, update) overlap and
    needs a second core to materialise — the record carries the payload
    ``cpu_count`` for exactly that reason, and the CI floor skips on
    single-CPU machines.
    """
    from repro.core.config import scenario_small_config
    from repro.rl import verify_training_reproducibility
    from repro.scenarios import trainer_from_config

    def build(determinism: str):
        config = scenario_small_config(seed=3)
        config.scenario = dict(spec)
        config.rollout_mode = "shard_parallel"
        config.rollout_workers = 2
        config.determinism = determinism
        trainer = trainer_from_config(config, dict(spec))
        trainer.pretrain_sadae(epochs=1)
        return trainer

    verify_training_reproducibility(
        lambda: build("pipelined"), iterations=min(iterations, 3), runs=2, label=name
    )

    def timed(determinism: str) -> float:
        best = np.inf
        for _ in range(repeats):
            with build(determinism) as trainer:
                start = time.perf_counter()
                for _ in range(iterations):
                    trainer.train_iteration()
                best = min(best, time.perf_counter() - start)
        return best

    timed("pipelined")  # warmup (worker spawn, BLAS threads)
    strict = timed("strict")
    pipelined = timed("pipelined")
    result = {
        "name": name,
        "kind": "pipelined_train",
        "spec": dict(spec),
        "workers": 2,
        "iterations": iterations,
        "strict_s": round(strict, 6),
        "pipelined_s": round(pipelined, 6),
        "speedup": round(strict / pipelined, 3),
        "equivalent": True,
    }
    print(
        f"[{name}] {iterations} iterations, 2 workers: "
        f"strict={strict:.3f}s pipelined={pipelined:.3f}s "
        f"-> {result['speedup']:.2f}x"
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI-sized run")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_train.json",
    )
    args = parser.parse_args()
    repeats = max(args.repeats, 1)

    if args.smoke:
        repeats = min(repeats, 2)
        results = [
            bench_ppo_update(
                "smoke_ppo", DPRConfig(num_cities=6, drivers_per_city=6, horizon=8, seed=0),
                horizon=5, repeats=repeats,
            ),
            bench_sadae_epoch("smoke_sadae", num_sets=8, users_per_set=40, repeats=repeats),
        ]
        pipelined = bench_pipelined(
            "smoke_pipelined", repeats=repeats, iterations=3,
            spec={"family": "slate", "num_envs": 4, "num_users": 5, "horizon": 5},
        )
    else:
        results = [
            # The many-city regime Sim2Rec targets: one iteration's buffer
            # holds one same-length segment per sampled city, so the
            # stacked pass amortises the per-step Python cost across all
            # of them. This is the headline number.
            bench_ppo_update(
                "many_cities_ppo",
                DPRConfig(num_cities=24, drivers_per_city=10, horizon=12, seed=0),
                horizon=10, repeats=repeats,
            ),
            bench_ppo_update(
                "wide_sweep_ppo",
                DPRConfig(num_cities=48, drivers_per_city=5, horizon=12, seed=0),
                horizon=10, repeats=repeats,
            ),
            bench_sadae_epoch("sadae_corpus", num_sets=48, users_per_set=100, repeats=repeats),
        ]
        pipelined = bench_pipelined(
            "pipelined_slate", repeats=repeats, iterations=4,
            spec={"family": "slate", "num_envs": 8, "num_users": 10, "horizon": 10},
        )

    payload = {
        "benchmark": "perf_train",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "scenarios": results,
        "pipelined": pipelined,
        "headline_speedup": results[0]["speedup"],
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output} (headline speedup {payload['headline_speedup']:.2f}x)")


if __name__ == "__main__":
    main()

"""Design-choice ablation: SADAE embedding vs raw group statistics.

Sec. IV-B motivates SADAE over the obvious alternative — "calculating the
statistics of X (e.g., mean and standard deviation) is a direct way but
limits the representation capacity of υ". This bench swaps SADAE for a
fixed mean/std context in the otherwise identical Sim2Rec architecture
and compares both against the no-context DR-OSI extractor on LTS3.

Expected shape: both group-context variants identify the environment at
least as fast as DR-OSI; SADAE matches or beats the fixed-statistics
context (its learned embedding is strictly more expressive, though on the
LTS family — where the group parameter is a simple location shift — the
statistics baseline is a strong competitor, which is exactly why the
paper's harder DPR setting needs SADAE).
"""

import numpy as np

from repro.core import Sim2RecLTSTrainer, build_sim2rec_policy, lts_small_config
from repro.envs import make_lts_task
from repro.rl import evaluate
from repro.rl import RecurrentActorCritic

from .conftest import print_table

NUM_USERS = 40
HORIZON = 30
ITERATIONS = 25


class StatsContextPolicy(RecurrentActorCritic):
    """Sim2Rec's architecture with υ replaced by [mean(X), std(X)]."""

    def __init__(self, state_dim, action_dim, rng, **kwargs):
        super().__init__(
            state_dim, action_dim, rng, context_dim=2 * state_dim, **kwargs
        )

    def _stats(self, states):
        return np.concatenate([states.mean(axis=0), states.std(axis=0)])

    def _rollout_context(self, states, prev_actions):
        return np.tile(self._stats(states), (states.shape[0], 1))

    def _segment_context(self, segment):
        from repro import nn

        rows = [self._stats(segment.states[t]) for t in range(segment.horizon)]
        return nn.Tensor(np.stack(rows))


def evaluate_on_target(task, policy) -> float:
    returns = []
    for seed in range(3):
        env = task.make_target_env(seed_offset=700 + seed)
        act_fn = policy.as_act_fn(np.random.default_rng(seed), deterministic=True)
        returns.append(evaluate(act_fn, env, episodes=1))
    return float(np.mean(returns))


def run_experiment():
    task = make_lts_task(
        "LTS3",
        num_users=NUM_USERS,
        horizon=HORIZON,
        seed=5,
        observation_noise_std=6.0,
        sensitivity_range=(0.25, 0.4),
        memory_discount_range=(0.7, 0.8),
    )
    config = lts_small_config(seed=5)
    results = {}

    sadae_policy = build_sim2rec_policy(2, 1, config)
    sadae_trainer = Sim2RecLTSTrainer(sadae_policy, task, config)
    sadae_trainer.pretrain_sadae(epochs=20, users_per_set=NUM_USERS)
    sadae_trainer.train(ITERATIONS)
    results["SADAE context"] = evaluate_on_target(task, sadae_policy)

    from repro.core.trainer import PolicyTrainer

    stats_policy = StatsContextPolicy(
        2,
        1,
        np.random.default_rng(5),
        lstm_hidden=config.lstm_hidden,
        head_hidden=config.head_hidden,
        init_log_std=config.init_log_std,
    )
    envs = task.make_train_envs()
    stats_trainer = PolicyTrainer(
        stats_policy,
        lambda rng: envs[int(rng.integers(0, len(envs)))],
        config,
    )
    stats_trainer.train(ITERATIONS)
    results["mean/std context"] = evaluate_on_target(task, stats_policy)

    no_context = RecurrentActorCritic(
        2,
        1,
        np.random.default_rng(5),
        lstm_hidden=config.lstm_hidden,
        head_hidden=config.head_hidden,
        init_log_std=config.init_log_std,
    )
    none_trainer = PolicyTrainer(
        no_context,
        lambda rng: envs[int(rng.integers(0, len(envs)))],
        config,
    )
    none_trainer.train(ITERATIONS)
    results["no context (DR-OSI)"] = evaluate_on_target(task, no_context)

    return results


def test_ablation_context(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [[name, f"{value:.1f}"] for name, value in results.items()]
    print_table("Ablation: group-context source (LTS3 target rewards)", ["variant", "reward"], rows)

    sadae = results["SADAE context"]
    stats = results["mean/std context"]
    print(f"shape check: SADAE {sadae:.1f} vs mean/std {stats:.1f} vs none "
          f"{results['no context (DR-OSI)']:.1f}")
    # SADAE must be competitive with the statistics shortcut (within noise)
    # — its value proposition is strictly-greater expressiveness.
    assert sadae > 0.93 * stats, "SADAE context should match the statistics context"
    assert sadae > 0.93 * results["no context (DR-OSI)"]

"""Fig. 4 — SADAE reconstruction KLD on the LTS3 training and testing sets.

Paper claim: the analytic KL divergence between the decoded state
distribution p_θ(s | υ) and the true group distribution N(μ_c, 4) falls
from O(10–100) to ~0.01–0.02 on the *testing* set (the unseen μ_c = 14
group) as SADAE trains — i.e. SADAE generalises group reconstruction to
held-out environment parameters.
"""


from repro.envs import MU_C_REAL
from repro.eval import gaussian_kld

from .conftest import print_table
from .lts_sadae_common import (
    OBS_NOISE_STD,
    build_lts3_corpus,
    fresh_group_states,
    make_lts_sadae,
    train_with_checkpoints,
)

TOTAL_EPOCHS = 100
CHECKPOINT_EVERY = 20
OBS_DIM = 1  # index of the o-feature inside the LTS state [SAT, o]


def run_experiment():
    task, sets, _ = build_lts3_corpus(num_users=150, steps_per_env=5)
    sadae = make_lts_sadae(seed=1)
    sadae.fit_normalizer(sets)

    train_omega = task.train_omega_gs[0]          # a group seen in training
    eval_groups = {
        "train (mu_c=%g)" % (MU_C_REAL + train_omega): float(train_omega),
        "test (mu_c=14)": 0.0,                    # the held-out real world
    }
    eval_states = {
        name: fresh_group_states(omega, num_users=200, seed=9)
        for name, omega in eval_groups.items()
    }

    def snapshot(epoch):
        out = {}
        for name, omega in eval_groups.items():
            posterior_mean = sadae.embed(eval_states[name], None)
            decoded_mean, decoded_std = sadae.decode_state_distribution(posterior_mean)
            out[name] = gaussian_kld(
                decoded_mean[OBS_DIM],
                decoded_std[OBS_DIM],
                MU_C_REAL + omega,
                OBS_NOISE_STD,
            )
        return out

    return train_with_checkpoints(
        sadae, sets, TOTAL_EPOCHS, CHECKPOINT_EVERY, snapshot, seed=1
    )


def test_fig04_lts_kld(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    epochs = sorted(results)
    names = list(results[epochs[0]])
    rows = [
        [str(epoch)] + [f"{results[epoch][name]:.4f}" for name in names]
        for epoch in epochs
    ]
    print_table("Fig. 4: analytic KLD of decoded vs true group distribution", ["epoch"] + names, rows)

    for name in names:
        initial = results[epochs[0]][name]
        final = results[epochs[-1]][name]
        print(f"shape check [{name}]: KLD {initial:.3f} -> {final:.3f}")
        # Paper shape: orders-of-magnitude drop, converging to a small value
        # on both the training and the *held-out* group.
        assert final < initial * 0.2, f"KLD should drop sharply on {name}"
        assert final < 1.0, f"final KLD should be small on {name}"

"""Serving-layer microbenchmark: microbatched vs unbatched inference.

Times the :class:`repro.serve.PolicyServer` serving N concurrent
sessions against the unbatched baseline (one dedicated policy replica
per session, one ``policy.act`` per request — what serving looks like
without a microbatching layer), swept over concurrency levels. Before
any clock starts, the served action streams are verified **bit-identical**
to the unbatched ones (the same per-session streams the parity suite in
``tests/serve/`` proves), so the speedup is never bought with drift.

Reported per concurrency level:

- ``speedup`` — unbatched wall time / microbatched wall time for the
  same request load (the stacked forward amortises per-call overhead
  across the window, so this grows with the session count);
- ``p50_ms`` / ``p99_ms`` — per-request latency percentiles under
  microbatched serving (submit → result);
- ``throughput_rps`` — served requests per second.

Two more sections ride along:

- ``gateway`` (always) — the same serving load pushed through a real
  loopback TCP :class:`repro.serve.Gateway`, one client thread per
  session. Before timing, the socket-served action streams are checked
  bit-identical to solo serving (the wire codec ships raw float64
  bytes), then throughput and p50/p99 request latencies are recorded;
- ``soak`` (``--soak``) — a session-churn endurance run: tens of
  thousands of sessions opened against a gateway whose LRU session
  store is capped, most of them abandoned without an ``end``. The store
  must evict (counters recorded) and RSS — read from
  ``/proc/self/status`` — must stay flat after the warm-up plateau.
  The run itself fails on zero evictions or an RSS ceiling breach, and
  the committed floors gate both numbers in CI.

Results go to ``BENCH_serve.json``; CI regenerates the smoke artifact on
every build and ``check_bench_regression.py`` gates the committed floors
in ``.github/bench_baselines.json``.

Not a pytest module — run directly::

    python benchmarks/perf_serve.py [--smoke] [--soak] [--repeats N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import quantile_from_buckets
from repro.rl import RecurrentActorCritic
from repro.serve import (
    Gateway,
    GatewayClient,
    GatewayConfig,
    PolicyServer,
    ServeConfig,
)

STATE_DIM = 8
ACTION_DIM = 2


def make_policy() -> RecurrentActorCritic:
    return RecurrentActorCritic(
        STATE_DIM,
        ACTION_DIM,
        np.random.default_rng(0),
        lstm_hidden=32,
        head_hidden=(64,),
    )


def make_streams(sessions: int, users: int, steps: int, seed: int):
    rng = np.random.default_rng(seed)
    return [
        [rng.random((users, STATE_DIM)) for _ in range(steps)]
        for _ in range(sessions)
    ]


def session_seeds(sessions: int):
    return [9000 + i for i in range(sessions)]


def run_unbatched(streams, users: int):
    """One dedicated replica per session, one act per request.

    Returns (per-session action streams, wall seconds). Policies are
    prebuilt so the timed loop is pure serving work.
    """
    policies = [make_policy() for _ in streams]
    rngs = [np.random.default_rng(seed) for seed in session_seeds(len(streams))]
    start = time.perf_counter()
    served = []
    for policy, rng, stream in zip(policies, rngs, streams):
        policy.start_rollout(users)
        prev = np.zeros((users, ACTION_DIM))
        actions_out = []
        for obs in stream:
            actions, _, _ = policy.act(obs, prev, rng)
            prev = actions
            actions_out.append(actions)
        served.append(actions_out)
    return served, time.perf_counter() - start


def run_microbatched(streams, users: int, max_batch: int):
    """All sessions through one PolicyServer, one flush per step.

    Returns (per-session action streams, wall seconds, per-request
    latencies). The synchronous driver makes batch composition
    deterministic, so this measures the microbatch kernel, not thread
    scheduling jitter.
    """
    server = PolicyServer(make_policy(), ServeConfig(max_batch_size=max_batch))
    sids = [
        server.create_session(num_users=users, seed=seed)
        for seed in session_seeds(len(streams))
    ]
    steps = len(streams[0])
    served = [[] for _ in streams]
    latencies = []
    start = time.perf_counter()
    for t in range(steps):
        submitted = time.perf_counter()
        tickets = [
            server.submit(sid, streams[i][t]) for i, sid in enumerate(sids)
        ]
        server.flush()
        done = time.perf_counter()
        latencies.extend([done - submitted] * len(tickets))
        for i, ticket in enumerate(tickets):
            served[i].append(ticket.result(timeout=30.0).actions)
    elapsed = time.perf_counter() - start
    server.close()
    return served, elapsed, latencies


def bench_level(sessions: int, users: int, steps: int, repeats: int) -> dict:
    streams = make_streams(sessions, users, steps, seed=17)

    # Pre-timing parity gate: microbatched == unbatched, bit for bit.
    reference, _ = run_unbatched(streams, users)
    batched, _, _ = run_microbatched(streams, users, max_batch=sessions)
    equivalent = all(
        np.array_equal(a, b)
        for ref, got in zip(reference, batched)
        for a, b in zip(ref, got)
    )

    unbatched_times, batched_times, best_latencies = [], [], None
    for _ in range(repeats):
        _, elapsed = run_unbatched(streams, users)
        unbatched_times.append(elapsed)
        _, elapsed, latencies = run_microbatched(streams, users, max_batch=sessions)
        if not batched_times or elapsed < min(batched_times):
            best_latencies = latencies
        batched_times.append(elapsed)

    unbatched = min(unbatched_times)
    microbatched = min(batched_times)
    latencies_ms = np.array(best_latencies) * 1000.0
    requests = sessions * steps
    record = {
        "name": f"sessions_{sessions}",
        "sessions": sessions,
        "users_per_session": users,
        "steps": steps,
        "requests": requests,
        "unbatched_s": round(unbatched, 6),
        "microbatched_s": round(microbatched, 6),
        "speedup": round(unbatched / microbatched, 3),
        "p50_ms": round(float(np.percentile(latencies_ms, 50)), 4),
        "p99_ms": round(float(np.percentile(latencies_ms, 99)), 4),
        "throughput_rps": round(requests / microbatched, 1),
        "equivalent": equivalent,
    }
    print(
        f"[sessions_{sessions}] {sessions} sessions x {users} users, T={steps}: "
        f"unbatched={unbatched:.3f}s microbatched={microbatched:.3f}s "
        f"-> {record['speedup']:.2f}x, p50={record['p50_ms']:.2f}ms "
        f"p99={record['p99_ms']:.2f}ms, {record['throughput_rps']:.0f} req/s"
        + ("" if equivalent else "  [PARITY FAILED]")
    )
    return record


def rss_mb():
    """Resident set size in MiB from /proc/self/status; None off-Linux."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return None


def _histogram_quantiles_ms(snapshot: dict, name: str) -> tuple:
    """(p50_ms, p99_ms) across all series of one latency histogram."""
    series = snapshot[name]["series"]
    if not series:
        return None, None
    edges = series[0]["buckets"]
    counts = [
        sum(s["counts"][i] for s in series) for i in range(len(series[0]["counts"]))
    ]
    total = sum(s["count"] for s in series)
    p50 = quantile_from_buckets(edges, counts, total, 0.50)
    p99 = quantile_from_buckets(edges, counts, total, 0.99)
    return round(p50 * 1000.0, 4), round(p99 * 1000.0, 4)


def bench_gateway(sessions: int, users: int, steps: int) -> dict:
    """The serving load over a real socket: parity first, then the clocks."""
    streams = make_streams(sessions, users, steps, seed=29)
    reference, _ = run_unbatched(streams, users)

    server = PolicyServer(
        make_policy(), ServeConfig(max_batch_size=sessions, max_wait_ms=1.0)
    )
    served = [None] * sessions
    latencies = [[] for _ in range(sessions)]
    errors = []

    def drive(index):
        try:
            with GatewayClient(gateway.address) as client:
                session = client.open_session(
                    num_users=users, seed=session_seeds(sessions)[index]
                )
                actions_out = []
                for obs in streams[index]:
                    begin = time.perf_counter()
                    result = session.act(obs, deadline_ms=30_000)
                    latencies[index].append(time.perf_counter() - begin)
                    actions_out.append(result.actions)
                session.end()
                served[index] = actions_out
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append((index, error))

    with Gateway(server, GatewayConfig(max_pending=4 * sessions)) as gateway:
        gateway.start()
        start = time.perf_counter()
        threads = [
            threading.Thread(target=drive, args=(index,))
            for index in range(sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        snapshot = gateway.metrics.snapshot()
    if errors:
        raise RuntimeError(f"gateway bench session failed: {errors[0]}")

    equivalent = all(
        np.array_equal(a, b)
        for ref, got in zip(reference, served)
        for a, b in zip(ref, got)
    )
    latencies_ms = np.array([v for per in latencies for v in per]) * 1000.0
    requests = sessions * steps
    # The server-side split the registry gives for free: how much of the
    # request latency was spent waiting for a batch window vs computing
    # the stacked forward, plus the queue's high-water mark.
    wait_p50, wait_p99 = _histogram_quantiles_ms(
        snapshot, "serve_request_queue_wait_seconds"
    )
    compute_p50, compute_p99 = _histogram_quantiles_ms(
        snapshot, "serve_request_compute_seconds"
    )
    max_queue_depth = max(
        (s["value"] for s in snapshot["serve_queue_depth_peak"]["series"]),
        default=0.0,
    )
    record = {
        "name": "gateway",
        "sessions": sessions,
        "users_per_session": users,
        "steps": steps,
        "requests": requests,
        "elapsed_s": round(elapsed, 6),
        "throughput_rps": round(requests / elapsed, 1),
        "p50_ms": round(float(np.percentile(latencies_ms, 50)), 4),
        "p99_ms": round(float(np.percentile(latencies_ms, 99)), 4),
        "queue_wait_p50_ms": wait_p50,
        "queue_wait_p99_ms": wait_p99,
        "compute_p50_ms": compute_p50,
        "compute_p99_ms": compute_p99,
        "max_queue_depth": int(max_queue_depth),
        "equivalent": equivalent,
    }
    print(
        f"[gateway] {sessions} TCP clients x {steps} steps: "
        f"{record['throughput_rps']:.0f} req/s, p50={record['p50_ms']:.2f}ms "
        f"p99={record['p99_ms']:.2f}ms, queue-wait p99={wait_p99}ms "
        f"compute p99={compute_p99}ms, max depth={record['max_queue_depth']}"
        + ("" if equivalent else "  [PARITY FAILED]")
    )
    return record


def bench_soak(total_sessions: int, cap: int, acts_per_session: int) -> dict:
    """Session churn through a capped store: evictions up, RSS flat.

    Opens ``total_sessions`` sessions against a gateway whose LRU store
    holds at most ``cap``; two thirds are abandoned (no ``end``) so the
    eviction layer has to reclaim them. RSS is sampled after a warm-up
    that fills the store to its cap — growth past that plateau is what a
    leak would look like.
    """
    # A tight batch window: the soak has one sequential client, so every
    # act would otherwise idle out the full microbatch wait.
    server = PolicyServer(
        make_policy(), ServeConfig(max_batch_size=64, max_wait_ms=0.5)
    )
    obs = np.zeros((1, STATE_DIM))
    warmup = min(cap * 2, total_sessions // 4)
    with Gateway(
        server, GatewayConfig(max_sessions=cap, max_pending=256)
    ) as gateway:
        gateway.start()
        with GatewayClient(gateway.address, timeout_s=60.0) as client:
            start = time.perf_counter()
            rss_plateau = None
            for index in range(total_sessions):
                session = client.open_session(num_users=1)
                for _ in range(acts_per_session):
                    session.act(obs, deadline_ms=30_000)
                if index % 3 == 0:
                    session.end()  # the other two thirds are abandoned
                if index == warmup:
                    rss_plateau = rss_mb()
            elapsed = time.perf_counter() - start
            stats = gateway.stats()
    rss_final = rss_mb()
    store = stats["store"]
    tracked = rss_plateau is not None and rss_final is not None
    growth = round(rss_final - rss_plateau, 2) if tracked else None
    record = {
        "name": "soak",
        "sessions_opened": total_sessions,
        "acts_per_session": acts_per_session,
        "session_cap": cap,
        "live_sessions_end": store["sessions"],
        "evicted_lru": store["evicted_lru"],
        "evicted_ttl": store["evicted_ttl"],
        "evictions": store["evicted_lru"] + store["evicted_ttl"],
        "elapsed_s": round(elapsed, 3),
        "sessions_per_s": round(total_sessions / elapsed, 1),
        "rss_plateau_mb": round(rss_plateau, 2) if tracked else None,
        "rss_end_mb": round(rss_final, 2) if tracked else None,
        "rss_growth_mb": growth,
        "rss_tracked": tracked,
    }
    print(
        f"[soak] {total_sessions} sessions through a {cap}-entry store: "
        f"{record['evictions']} evictions, live={store['sessions']}, "
        + (
            f"RSS {record['rss_plateau_mb']:.1f} -> {record['rss_end_mb']:.1f} MiB "
            f"(growth {growth:+.1f})"
            if tracked
            else "RSS untracked on this platform"
        )
    )
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI-sized run")
    parser.add_argument(
        "--soak", action="store_true",
        help="run the session-churn soak (RSS + eviction accounting)",
    )
    parser.add_argument(
        "--soak-rss-ceiling-mb", type=float, default=128.0,
        help="hard failure if post-plateau RSS grows past this",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
    )
    args = parser.parse_args()
    repeats = max(args.repeats, 1)

    if args.smoke:
        levels = ((2, 2, 6), (4, 2, 6), (8, 2, 6))
        repeats = min(repeats, 3)
    else:
        levels = ((4, 3, 12), (8, 3, 12), (16, 3, 12), (32, 3, 12))

    records = [
        bench_level(sessions, users, steps, repeats)
        for sessions, users, steps in levels
    ]
    gateway_sessions, gateway_users, gateway_steps = levels[-1]
    gateway_record = bench_gateway(gateway_sessions, gateway_users, gateway_steps)

    payload = {
        "benchmark": "perf_serve",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "scenarios": records,
        "gateway": gateway_record,
        "headline_speedup": max(r["speedup"] for r in records),
    }

    failures = []
    if args.soak:
        if args.smoke:
            soak_record = bench_soak(total_sessions=3000, cap=256, acts_per_session=2)
        else:
            soak_record = bench_soak(total_sessions=20000, cap=512, acts_per_session=2)
        payload["soak"] = soak_record
        if soak_record["evictions"] == 0:
            failures.append("soak produced zero evictions (store cap never engaged)")
        if (
            soak_record["rss_tracked"]
            and soak_record["rss_growth_mb"] > args.soak_rss_ceiling_mb
        ):
            failures.append(
                f"soak RSS grew {soak_record['rss_growth_mb']:.1f} MiB past the "
                f"plateau (ceiling {args.soak_rss_ceiling_mb:g} MiB)"
            )

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output} (headline speedup {payload['headline_speedup']:.2f}x)")
    if not all(r["equivalent"] for r in records):
        failures.append("microbatched serving diverged from the unbatched reference")
    if not gateway_record["equivalent"]:
        failures.append("gateway serving diverged from the solo reference")
    for failure in failures:
        print(f"FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Serving-layer microbenchmark: microbatched vs unbatched inference.

Times the :class:`repro.serve.PolicyServer` serving N concurrent
sessions against the unbatched baseline (one dedicated policy replica
per session, one ``policy.act`` per request — what serving looks like
without a microbatching layer), swept over concurrency levels. Before
any clock starts, the served action streams are verified **bit-identical**
to the unbatched ones (the same per-session streams the parity suite in
``tests/serve/`` proves), so the speedup is never bought with drift.

Reported per concurrency level:

- ``speedup`` — unbatched wall time / microbatched wall time for the
  same request load (the stacked forward amortises per-call overhead
  across the window, so this grows with the session count);
- ``p50_ms`` / ``p99_ms`` — per-request latency percentiles under
  microbatched serving (submit → result);
- ``throughput_rps`` — served requests per second.

Results go to ``BENCH_serve.json``; CI regenerates the smoke artifact on
every build and ``check_bench_regression.py`` gates the committed floors
in ``.github/bench_baselines.json``.

Not a pytest module — run directly::

    python benchmarks/perf_serve.py [--smoke] [--repeats N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.rl import RecurrentActorCritic
from repro.serve import PolicyServer, ServeConfig

STATE_DIM = 8
ACTION_DIM = 2


def make_policy() -> RecurrentActorCritic:
    return RecurrentActorCritic(
        STATE_DIM,
        ACTION_DIM,
        np.random.default_rng(0),
        lstm_hidden=32,
        head_hidden=(64,),
    )


def make_streams(sessions: int, users: int, steps: int, seed: int):
    rng = np.random.default_rng(seed)
    return [
        [rng.random((users, STATE_DIM)) for _ in range(steps)]
        for _ in range(sessions)
    ]


def session_seeds(sessions: int):
    return [9000 + i for i in range(sessions)]


def run_unbatched(streams, users: int):
    """One dedicated replica per session, one act per request.

    Returns (per-session action streams, wall seconds). Policies are
    prebuilt so the timed loop is pure serving work.
    """
    policies = [make_policy() for _ in streams]
    rngs = [np.random.default_rng(seed) for seed in session_seeds(len(streams))]
    start = time.perf_counter()
    served = []
    for policy, rng, stream in zip(policies, rngs, streams):
        policy.start_rollout(users)
        prev = np.zeros((users, ACTION_DIM))
        actions_out = []
        for obs in stream:
            actions, _, _ = policy.act(obs, prev, rng)
            prev = actions
            actions_out.append(actions)
        served.append(actions_out)
    return served, time.perf_counter() - start


def run_microbatched(streams, users: int, max_batch: int):
    """All sessions through one PolicyServer, one flush per step.

    Returns (per-session action streams, wall seconds, per-request
    latencies). The synchronous driver makes batch composition
    deterministic, so this measures the microbatch kernel, not thread
    scheduling jitter.
    """
    server = PolicyServer(make_policy(), ServeConfig(max_batch_size=max_batch))
    sids = [
        server.create_session(num_users=users, seed=seed)
        for seed in session_seeds(len(streams))
    ]
    steps = len(streams[0])
    served = [[] for _ in streams]
    latencies = []
    start = time.perf_counter()
    for t in range(steps):
        submitted = time.perf_counter()
        tickets = [
            server.submit(sid, streams[i][t]) for i, sid in enumerate(sids)
        ]
        server.flush()
        done = time.perf_counter()
        latencies.extend([done - submitted] * len(tickets))
        for i, ticket in enumerate(tickets):
            served[i].append(ticket.result(timeout=30.0).actions)
    elapsed = time.perf_counter() - start
    server.close()
    return served, elapsed, latencies


def bench_level(sessions: int, users: int, steps: int, repeats: int) -> dict:
    streams = make_streams(sessions, users, steps, seed=17)

    # Pre-timing parity gate: microbatched == unbatched, bit for bit.
    reference, _ = run_unbatched(streams, users)
    batched, _, _ = run_microbatched(streams, users, max_batch=sessions)
    equivalent = all(
        np.array_equal(a, b)
        for ref, got in zip(reference, batched)
        for a, b in zip(ref, got)
    )

    unbatched_times, batched_times, best_latencies = [], [], None
    for _ in range(repeats):
        _, elapsed = run_unbatched(streams, users)
        unbatched_times.append(elapsed)
        _, elapsed, latencies = run_microbatched(streams, users, max_batch=sessions)
        if not batched_times or elapsed < min(batched_times):
            best_latencies = latencies
        batched_times.append(elapsed)

    unbatched = min(unbatched_times)
    microbatched = min(batched_times)
    latencies_ms = np.array(best_latencies) * 1000.0
    requests = sessions * steps
    record = {
        "name": f"sessions_{sessions}",
        "sessions": sessions,
        "users_per_session": users,
        "steps": steps,
        "requests": requests,
        "unbatched_s": round(unbatched, 6),
        "microbatched_s": round(microbatched, 6),
        "speedup": round(unbatched / microbatched, 3),
        "p50_ms": round(float(np.percentile(latencies_ms, 50)), 4),
        "p99_ms": round(float(np.percentile(latencies_ms, 99)), 4),
        "throughput_rps": round(requests / microbatched, 1),
        "equivalent": equivalent,
    }
    print(
        f"[sessions_{sessions}] {sessions} sessions x {users} users, T={steps}: "
        f"unbatched={unbatched:.3f}s microbatched={microbatched:.3f}s "
        f"-> {record['speedup']:.2f}x, p50={record['p50_ms']:.2f}ms "
        f"p99={record['p99_ms']:.2f}ms, {record['throughput_rps']:.0f} req/s"
        + ("" if equivalent else "  [PARITY FAILED]")
    )
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI-sized run")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
    )
    args = parser.parse_args()
    repeats = max(args.repeats, 1)

    if args.smoke:
        levels = ((2, 2, 6), (4, 2, 6), (8, 2, 6))
        repeats = min(repeats, 3)
    else:
        levels = ((4, 3, 12), (8, 3, 12), (16, 3, 12), (32, 3, 12))

    records = [
        bench_level(sessions, users, steps, repeats)
        for sessions, users, steps in levels
    ]
    payload = {
        "benchmark": "perf_serve",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "scenarios": records,
        "headline_speedup": max(r["speedup"] for r in records),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output} (headline speedup {payload['headline_speedup']:.2f}x)")
    return 0 if all(r["equivalent"] for r in records) else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Table III — ablations of the Sec. IV-C error countermeasures.

Paper claims (orders/cost increments vs. the behaviour policy, tested in
the held-out simulator SimA):

- **Sim2Rec-PE** (no prediction-error handling) posts higher training-set
  gains that *collapse* at test time (43% degradation in the paper) — it
  exploited member-specific prediction errors;
- **Sim2Rec-EE** (no extrapolation-error handling) posts implausibly high
  order gains with *reduced* cost both in train and test simulators — it
  exploits the shared non-physical bonus responses of Fig. 10 (cutting
  bonuses "for free"), which would not survive contact with reality;
- **Sim2Rec** keeps train and test performance consistent.
"""


from repro.eval import rollout_totals

from .conftest import print_table

EVAL_HORIZON = 15


def evaluate_increments(dpr_suite, name: str, env_builder) -> dict:
    act_fn = dpr_suite.act_fn(name)
    policy_stats = rollout_totals(env_builder(0), act_fn, episodes=2)
    behavior_stats = rollout_totals(env_builder(1), dpr_suite.behavior_fn(seed=2), episodes=2)

    def pct(new, old):
        return 100.0 * (new - old) / max(abs(old), 1e-9)

    return {
        "orders_pct": pct(policy_stats["orders"], behavior_stats["orders"]),
        "cost_pct": pct(policy_stats["cost"], behavior_stats["cost"]),
    }


def run_experiment(dpr_suite):
    def train_env_builder(offset):
        # a training-set simulator over a training group
        from repro.sim import SimulatedDPREnv

        return SimulatedDPREnv(
            dpr_suite.train_ensemble[0],
            dpr_suite.dataset_train.groups[1],
            truncate_horizon=EVAL_HORIZON,
            seed=100 + offset,
        )

    def test_env_builder(offset):
        # SimA: the first held-out simulator, over held-out users
        return dpr_suite.holdout_sim_env(0, group_index=1, horizon=EVAL_HORIZON, seed=200 + offset)

    results = {}
    for name in ("sim2rec", "sim2rec_pe", "sim2rec_ee"):
        results[name] = {
            "train": evaluate_increments(dpr_suite, name, train_env_builder),
            "test": evaluate_increments(dpr_suite, name, test_env_builder),
        }
    return results


def test_tab3_ablations(benchmark, dpr_suite):
    results = benchmark.pedantic(run_experiment, args=(dpr_suite,), rounds=1, iterations=1)

    label = {"sim2rec": "Sim2Rec", "sim2rec_pe": "Sim2Rec-PE", "sim2rec_ee": "Sim2Rec-EE"}
    rows = [
        [
            label[name],
            f"{stats['test']['orders_pct']:+.1f}%",
            f"{stats['train']['orders_pct']:+.1f}%",
            f"{stats['test']['cost_pct']:+.1f}%",
            f"{stats['train']['cost_pct']:+.1f}%",
        ]
        for name, stats in results.items()
    ]
    print_table(
        "Table III: increments vs behaviour policy (SimA held-out / training sim)",
        ["method", "orders (test)", "orders (train)", "cost (test)", "cost (train)"],
        rows,
    )

    sim2rec = results["sim2rec"]
    pe = results["sim2rec_pe"]
    ee = results["sim2rec_ee"]

    sim2rec_gap = sim2rec["train"]["orders_pct"] - sim2rec["test"]["orders_pct"]
    pe_gap = pe["train"]["orders_pct"] - pe["test"]["orders_pct"]
    print(
        f"shape check: train->test orders degradation Sim2Rec {sim2rec_gap:+.1f}pp "
        f"vs -PE {pe_gap:+.1f}pp; -EE cost increments "
        f"{ee['train']['cost_pct']:+.1f}% / {ee['test']['cost_pct']:+.1f}% "
        f"(paper: -11.1% / -10.0%)"
    )
    # Paper shape: dropping prediction-error handling hurts generalisation —
    # the -PE variant degrades from train to test at least as much as Sim2Rec.
    assert pe_gap >= sim2rec_gap - 3.0, "-PE should degrade more from train to test"
    # Paper shape: the -EE variant exploits the non-physical bonus response —
    # spending less than Sim2Rec while posting no fewer orders in simulators.
    assert ee["test"]["cost_pct"] < sim2rec["test"]["cost_pct"] + 2.0, (
        "-EE should cut costs by exploiting extrapolation errors"
    )

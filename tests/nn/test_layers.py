"""Tests for Linear / MLP / LayerNorm / Embedding and the Module system."""

import numpy as np
import pytest

from repro.nn import MLP, Embedding, LayerNorm, Linear, Module, Parameter, Tensor

from ..helpers import check_gradients

RNG = np.random.default_rng(2)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, RNG)
        out = layer(Tensor(RNG.standard_normal((5, 4))))
        assert out.shape == (5, 3)

    def test_forward_value(self):
        layer = Linear(2, 2, RNG)
        layer.weight.data = np.eye(2)
        layer.bias.data = np.array([1.0, -1.0])
        out = layer(Tensor(np.array([[2.0, 3.0]])))
        np.testing.assert_allclose(out.data, [[3.0, 2.0]])

    def test_no_bias(self):
        layer = Linear(3, 2, RNG, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow_to_weights(self):
        layer = Linear(3, 2, RNG)
        x = Tensor(RNG.standard_normal((4, 3)))
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])

    def test_unknown_init_raises(self):
        with pytest.raises(ValueError):
            Linear(3, 2, RNG, init="nope")

    def test_gradcheck_through_layer(self):
        layer = Linear(3, 1, RNG)

        def loss(tensors):
            saved_w, saved_b = layer.weight, layer.bias
            layer.weight, layer.bias = tensors[0], tensors[1]
            try:
                return layer(Tensor(np.ones((2, 3)))).sum()
            finally:
                layer.weight, layer.bias = saved_w, saved_b

        check_gradients(loss, [layer.weight.data.copy(), layer.bias.data.copy()])


class TestMLP:
    def test_shapes(self):
        mlp = MLP([4, 8, 8, 2], RNG)
        out = mlp(Tensor(RNG.standard_normal((10, 4))))
        assert out.shape == (10, 2)

    def test_too_few_sizes_raises(self):
        with pytest.raises(ValueError):
            MLP([4], RNG)

    def test_out_activation(self):
        mlp = MLP([3, 4, 2], RNG, out_activation="sigmoid")
        out = mlp(Tensor(RNG.standard_normal((5, 3)))).data
        assert np.all((out > 0) & (out < 1))

    def test_relu_activation(self):
        mlp = MLP([3, 4, 2], RNG, activation="relu")
        out = mlp(Tensor(RNG.standard_normal((5, 3))))
        assert out.shape == (5, 2)

    def test_all_params_receive_grads(self):
        mlp = MLP([3, 4, 2], RNG)
        mlp(Tensor(RNG.standard_normal((5, 3)))).sum().backward()
        for param in mlp.parameters():
            assert param.grad is not None

    def test_parameter_count(self):
        mlp = MLP([3, 4, 2], RNG)
        assert mlp.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2)

    def test_training_reduces_loss(self):
        from repro.nn import Adam, mse_loss

        mlp = MLP([1, 16, 1], np.random.default_rng(20))
        optimizer = Adam(mlp.parameters(), lr=1e-2)
        x = np.linspace(-1, 1, 32).reshape(-1, 1)
        y = np.sin(3 * x)
        first_loss = None
        for _ in range(300):
            optimizer.zero_grad()
            loss = mse_loss(mlp(Tensor(x)), Tensor(y))
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < first_loss * 0.2


class TestLayerNorm:
    def test_normalises(self):
        ln = LayerNorm(8)
        out = ln(Tensor(RNG.standard_normal((4, 8)) * 5 + 3)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_gradients(self):
        ln = LayerNorm(4)
        ln(Tensor(RNG.standard_normal((3, 4)))).sum().backward()
        assert ln.gamma.grad is not None
        assert ln.beta.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, RNG)
        out = emb(np.array([1, 5, 9]))
        assert out.shape == (3, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4, RNG)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_for_repeated_ids(self):
        emb = Embedding(5, 2, RNG)
        emb(np.array([2, 2, 3])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[3], [1.0, 1.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestModuleSystem:
    def test_named_parameters_deterministic(self):
        mlp = MLP([2, 3, 2], RNG)
        names1 = [name for name, _ in mlp.named_parameters()]
        names2 = [name for name, _ in mlp.named_parameters()]
        assert names1 == names2
        assert len(names1) == 4

    def test_state_dict_roundtrip(self):
        mlp1 = MLP([2, 3, 2], RNG)
        mlp2 = MLP([2, 3, 2], np.random.default_rng(99))
        mlp2.load_state_dict(mlp1.state_dict())
        x = Tensor(RNG.standard_normal((4, 2)))
        np.testing.assert_allclose(mlp1(x).data, mlp2(x).data)

    def test_state_dict_mismatch_raises(self):
        mlp = MLP([2, 3, 2], RNG)
        state = mlp.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            mlp.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        mlp = MLP([2, 3, 2], RNG)
        state = mlp.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((7, 7))
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)

    def test_zero_grad(self):
        mlp = MLP([2, 3, 2], RNG)
        mlp(Tensor(RNG.standard_normal((4, 2)))).sum().backward()
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_nested_modules_discovered(self):
        class Wrapper(Module):
            def __init__(self):
                self.inner = MLP([2, 3, 1], RNG)
                self.scale = Parameter(np.ones(1))
                self.blocks = [Linear(2, 2, RNG), Linear(2, 2, RNG)]

        wrapper = Wrapper()
        names = [name for name, _ in wrapper.named_parameters()]
        assert any(name.startswith("inner.") for name in names)
        assert any(name.startswith("blocks.0.") for name in names)
        assert any(name.startswith("blocks.1.") for name in names)
        assert "scale" in names

    def test_serialization_roundtrip(self, tmp_path):
        from repro.nn import load_module, save_module

        mlp1 = MLP([2, 4, 1], RNG)
        path = tmp_path / "model.npz"
        save_module(mlp1, path)
        mlp2 = MLP([2, 4, 1], np.random.default_rng(7))
        load_module(mlp2, path)
        x = Tensor(RNG.standard_normal((3, 2)))
        np.testing.assert_allclose(mlp1(x).data, mlp2(x).data)

"""Finite-difference verification of every autodiff operation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concat, no_grad, stack, where

from ..helpers import check_gradients

RNG = np.random.default_rng(0)


def rand(*shape):
    return RNG.standard_normal(shape)


def positive(*shape):
    return np.abs(RNG.standard_normal(shape)) + 0.5


class TestElementwiseOps:
    def test_add(self):
        check_gradients(lambda t: (t[0] + t[1]).sum(), [rand(3, 4), rand(3, 4)])

    def test_add_broadcast(self):
        check_gradients(lambda t: (t[0] + t[1]).sum(), [rand(3, 4), rand(4)])

    def test_add_scalar_broadcast(self):
        check_gradients(lambda t: (t[0] + t[1]).sum(), [rand(2, 3, 4), rand(1, 4)])

    def test_mul(self):
        check_gradients(lambda t: (t[0] * t[1]).sum(), [rand(3, 4), rand(3, 4)])

    def test_mul_broadcast(self):
        check_gradients(lambda t: (t[0] * t[1]).sum(), [rand(5, 2), rand(2)])

    def test_sub(self):
        check_gradients(lambda t: (t[0] - t[1]).sum(), [rand(3), rand(3)])

    def test_rsub(self):
        check_gradients(lambda t: (1.0 - t[0]).sum(), [rand(3)])

    def test_div(self):
        check_gradients(lambda t: (t[0] / t[1]).sum(), [rand(3, 2), positive(3, 2)])

    def test_rdiv(self):
        check_gradients(lambda t: (2.0 / t[0]).sum(), [positive(4)])

    def test_neg(self):
        check_gradients(lambda t: (-t[0]).sum(), [rand(3)])

    def test_pow(self):
        check_gradients(lambda t: (t[0] ** 3.0).sum(), [rand(3, 2)])

    def test_pow_fractional(self):
        check_gradients(lambda t: (t[0] ** 0.5).sum(), [positive(4)])

    def test_exp(self):
        check_gradients(lambda t: t[0].exp().sum(), [rand(3, 2)])

    def test_log(self):
        check_gradients(lambda t: t[0].log().sum(), [positive(3, 2)])

    def test_sqrt(self):
        check_gradients(lambda t: t[0].sqrt().sum(), [positive(5)])

    def test_tanh(self):
        check_gradients(lambda t: t[0].tanh().sum(), [rand(4, 3)])

    def test_sigmoid(self):
        check_gradients(lambda t: t[0].sigmoid().sum(), [rand(4, 3)])

    def test_relu(self):
        # keep values away from the kink where finite differences break down
        data = rand(4, 3)
        data[np.abs(data) < 0.1] = 0.5
        check_gradients(lambda t: t[0].relu().sum(), [data])

    def test_abs(self):
        data = rand(4)
        data[np.abs(data) < 0.1] = 0.7
        check_gradients(lambda t: t[0].abs().sum(), [data])

    def test_clip_interior_gradient(self):
        data = np.array([0.5, -0.2, 0.1])
        check_gradients(lambda t: t[0].clip(-1.0, 1.0).sum(), [data])

    def test_clip_blocks_gradient_outside(self):
        t = Tensor(np.array([2.0, -3.0, 0.5]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 0.0, 1.0])

    def test_maximum(self):
        a, b = rand(5), rand(5)
        b = b + np.where(np.abs(a - b) < 0.1, 0.5, 0.0)
        check_gradients(lambda t: t[0].maximum(t[1]).sum(), [a, b])

    def test_minimum(self):
        a, b = rand(5), rand(5)
        b = b + np.where(np.abs(a - b) < 0.1, 0.5, 0.0)
        check_gradients(lambda t: t[0].minimum(t[1]).sum(), [a, b])

    def test_maximum_scalar(self):
        data = np.array([0.5, -0.5, 1.5])
        check_gradients(lambda t: t[0].maximum(0.0).sum(), [data])


class TestMatmul:
    def test_matmul_2d(self):
        check_gradients(lambda t: (t[0] @ t[1]).sum(), [rand(3, 4), rand(4, 2)])

    def test_matmul_vector_matrix(self):
        check_gradients(lambda t: (t[0] @ t[1]).sum(), [rand(4), rand(4, 2)])

    def test_matmul_matrix_vector(self):
        check_gradients(lambda t: (t[0] @ t[1]).sum(), [rand(3, 4), rand(4)])

    def test_matmul_batched(self):
        check_gradients(lambda t: (t[0] @ t[1]).sum(), [rand(2, 3, 4), rand(2, 4, 2)])

    def test_matmul_broadcast_batch(self):
        check_gradients(lambda t: (t[0] @ t[1]).sum(), [rand(2, 3, 4), rand(4, 2)])


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda t: t[0].sum(), [rand(3, 4)])

    def test_sum_axis(self):
        check_gradients(lambda t: t[0].sum(axis=0).sum(), [rand(3, 4)])

    def test_sum_axis_keepdims(self):
        check_gradients(lambda t: t[0].sum(axis=1, keepdims=True).sum(), [rand(3, 4)])

    def test_sum_multi_axis(self):
        check_gradients(lambda t: t[0].sum(axis=(0, 2)).sum(), [rand(2, 3, 4)])

    def test_mean_all(self):
        check_gradients(lambda t: t[0].mean(), [rand(3, 4)])

    def test_mean_axis(self):
        check_gradients(lambda t: t[0].mean(axis=-1).sum(), [rand(3, 4)])

    def test_max_all(self):
        data = np.array([[1.0, 5.0], [2.0, -3.0]])
        check_gradients(lambda t: t[0].max(), [data])

    def test_max_axis(self):
        data = np.array([[1.0, 5.0, 2.0], [7.0, -3.0, 0.0]])
        check_gradients(lambda t: t[0].max(axis=1).sum(), [data])

    def test_max_gradient_splits_ties(self):
        t = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5, 0.0])


class TestShapeOps:
    def test_reshape(self):
        check_gradients(lambda t: (t[0].reshape(6) * np.arange(6.0)).sum(), [rand(2, 3)])

    def test_reshape_tuple(self):
        check_gradients(lambda t: (t[0].reshape((3, 2)) ** 2.0).sum(), [rand(2, 3)])

    def test_transpose(self):
        check_gradients(lambda t: (t[0].T @ t[0]).sum(), [rand(3, 2)])

    def test_transpose_axes(self):
        check_gradients(lambda t: (t[0].transpose(1, 0, 2) ** 2.0).sum(), [rand(2, 3, 4)])

    def test_getitem_slice(self):
        check_gradients(lambda t: t[0][1:3].sum(), [rand(5, 2)])

    def test_getitem_int(self):
        check_gradients(lambda t: t[0][2].sum(), [rand(5, 2)])

    def test_getitem_fancy_repeated_indices(self):
        # np.add.at must accumulate when an index appears twice
        t = Tensor(np.arange(4.0), requires_grad=True)
        t[np.array([1, 1, 2])].sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 2.0, 1.0, 0.0])

    def test_concat(self):
        check_gradients(
            lambda t: (concat([t[0], t[1]], axis=1) ** 2.0).sum(),
            [rand(2, 3), rand(2, 4)],
        )

    def test_concat_axis0(self):
        check_gradients(
            lambda t: (concat([t[0], t[1]], axis=0) ** 2.0).sum(),
            [rand(2, 3), rand(4, 3)],
        )

    def test_stack(self):
        check_gradients(
            lambda t: (stack([t[0], t[1]], axis=0) ** 2.0).sum(),
            [rand(3, 2), rand(3, 2)],
        )

    def test_where(self):
        cond = np.array([True, False, True, False])
        check_gradients(
            lambda t: where(cond, t[0], t[1]).sum(),
            [rand(4), rand(4)],
        )


class TestGraphMechanics:
    def test_reused_node_accumulates(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        out = t * t + t  # dy/dt = 2t + 1 = 7
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3.0
        b = t * 5.0
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [8.0])

    def test_deep_chain(self):
        t = Tensor(np.array([1.1]), requires_grad=True)
        out = t
        for _ in range(50):
            out = out * 1.01
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.01**50], rtol=1e-10)

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (t * 2.0).sum()
        assert not out.requires_grad
        with pytest.raises(RuntimeError):
            out.backward()

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = (t.detach() * 2.0).sum()
        assert not out.requires_grad

    def test_backward_requires_grad(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.sum().backward()

    def test_backward_seed_shape_validation(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2.0
        with pytest.raises(ValueError):
            out.backward(np.ones(5))

    def test_backward_with_explicit_seed(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.grad, [2.0, 4.0, 6.0])

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.ones(2), requires_grad=True)
        t.sum().backward()
        t.sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_second_branch_without_grad_input(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.full(3, 2.0))  # no grad
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0, 2.0])
        assert b.grad is None


@st.composite
def small_arrays(draw):
    shape = draw(st.sampled_from([(2,), (3, 2), (2, 2, 2)]))
    values = draw(
        st.lists(
            st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
            min_size=int(np.prod(shape)),
            max_size=int(np.prod(shape)),
        )
    )
    return np.array(values).reshape(shape)


class TestHypothesisProperties:
    @given(small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_add_commutes(self, data):
        a = Tensor(data, requires_grad=True)
        b = Tensor(data * 0.5, requires_grad=True)
        lhs = (a + b).sum()
        rhs = (b + a).sum()
        np.testing.assert_allclose(lhs.data, rhs.data)

    @given(small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_sum_linear_in_gradient(self, data):
        t = Tensor(data, requires_grad=True)
        (t.sum() * 3.0).backward()
        np.testing.assert_allclose(t.grad, np.full(data.shape, 3.0))

    @given(small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_tanh_bounded(self, data):
        out = Tensor(data).tanh()
        assert np.all(np.abs(out.data) <= 1.0)

    @given(small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_exp_log_roundtrip(self, data):
        t = Tensor(data)
        np.testing.assert_allclose(t.exp().log().data, data, atol=1e-9)

    @given(small_arrays())
    @settings(max_examples=20, deadline=None)
    def test_mul_gradient_matches_numeric(self, data):
        factor = np.full_like(data, 1.7)
        t = Tensor(data, requires_grad=True)
        (t * factor).sum().backward()
        np.testing.assert_allclose(t.grad, factor)

"""`nn.tile_rows`: forward values and gradient routing.

The op backs the batched group-context tiling in
``evaluate_segments_batched`` and the batched SADAE decoders; its forward
must equal ``np.repeat`` (and hence the concat-based tiling it replaces)
and its backward must sum each output row's gradient into its source row.
"""

import numpy as np
import pytest

from repro import nn


class TestTileRowsForward:
    def test_matches_np_repeat(self):
        x = nn.Tensor(np.arange(6.0).reshape(3, 2))
        out = nn.tile_rows(x, [2, 1, 3])
        np.testing.assert_array_equal(out.data, np.repeat(x.data, [2, 1, 3], axis=0))

    def test_matches_concat_tiling(self):
        row = nn.Tensor(np.array([[1.5, -2.0, 0.25]]))
        tiled_concat = nn.concat([row] * 5, axis=0)
        tiled_op = nn.tile_rows(row, [5])
        np.testing.assert_array_equal(tiled_op.data, tiled_concat.data)

    def test_zero_count_rows_dropped(self):
        x = nn.Tensor(np.arange(6.0).reshape(3, 2))
        out = nn.tile_rows(x, [2, 0, 1])
        np.testing.assert_array_equal(out.data, x.data[[0, 0, 2]])

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one count per row"):
            nn.tile_rows(nn.Tensor(np.zeros((3, 2))), [1, 2])


class TestTileRowsBackward:
    def test_gradient_sums_per_source_row(self):
        x = nn.Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        out = nn.tile_rows(x, [2, 1, 3])
        seed = np.arange(12.0).reshape(6, 2)
        out.backward(seed)
        expected = np.stack(
            [seed[0:2].sum(axis=0), seed[2:3].sum(axis=0), seed[3:6].sum(axis=0)]
        )
        np.testing.assert_array_equal(x.grad, expected)

    def test_gradient_with_zero_counts(self):
        x = nn.Tensor(np.ones((3, 2)), requires_grad=True)
        out = nn.tile_rows(x, [1, 0, 2])
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, np.array([[1.0, 1.0], [0.0, 0.0], [2.0, 2.0]]))

    def test_matches_concat_tiling_gradient(self):
        data = np.array([[0.5, -1.0]])
        x_op = nn.Tensor(data.copy(), requires_grad=True)
        x_cat = nn.Tensor(data.copy(), requires_grad=True)
        (nn.tile_rows(x_op, [4]) * 2.0).sum().backward()
        (nn.concat([x_cat] * 4, axis=0) * 2.0).sum().backward()
        np.testing.assert_allclose(x_op.grad, x_cat.grad)

    def test_no_grad_fast_path(self):
        x = nn.Tensor(np.ones((2, 2)), requires_grad=True)
        with nn.no_grad():
            out = nn.tile_rows(x, [3, 1])
        assert not out.requires_grad
        assert out._backward is None

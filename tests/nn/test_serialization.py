"""State archives: CRC32 integrity and atomic on-disk persistence."""

import io
import os

import numpy as np
import pytest

from repro.nn import (
    StateChecksumError,
    load_state,
    save_state,
    state_from_bytes,
    state_to_bytes,
)
from repro.nn.serialization import CHECKSUM_KEY


def sample_state():
    rng = np.random.default_rng(5)
    return {
        "weight": rng.normal(size=(4, 3)),
        "bias": rng.normal(size=3),
        "step": np.array([7], dtype=np.int64),
    }


class TestChecksum:
    def test_roundtrip_is_bit_exact_and_checksum_free(self):
        state = sample_state()
        loaded = state_from_bytes(state_to_bytes(state))
        assert set(loaded) == set(state)  # no __crc32__ leaking through
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])
            assert loaded[key].dtype == state[key].dtype

    def test_flipped_byte_in_payload_is_detected(self):
        payload = bytearray(state_to_bytes(sample_state()))
        # Flip a byte in the array data region (towards the end, before
        # the zip central directory) until the checksum catches it.
        position = len(payload) // 2
        payload[position] ^= 0xFF
        with pytest.raises(StateChecksumError):
            state_from_bytes(bytes(payload))

    def test_truncated_payload_is_detected(self):
        payload = state_to_bytes(sample_state())
        with pytest.raises(StateChecksumError):
            state_from_bytes(payload[: len(payload) // 2])

    def test_reserved_key_is_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            state_to_bytes({CHECKSUM_KEY: np.zeros(1)})

    def test_legacy_archive_without_checksum_loads(self):
        state = sample_state()
        buffer = io.BytesIO()
        np.savez(buffer, **state)  # pre-checksum format
        loaded = state_from_bytes(buffer.getvalue())
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])

    def test_checksum_covers_names_and_shapes(self):
        """Renaming an entry (same bytes) must change the checksum."""
        from repro.nn.serialization import _state_crc32

        state = sample_state()
        renamed = dict(state)
        renamed["weight2"] = renamed.pop("weight")
        assert _state_crc32(state) != _state_crc32(renamed)
        reshaped = {key: value.copy() for key, value in state.items()}
        reshaped["weight"] = reshaped["weight"].reshape(3, 4)
        assert _state_crc32(state) != _state_crc32(reshaped)


class TestAtomicSaveState:
    def test_disk_roundtrip(self, tmp_path):
        path = tmp_path / "state.npz"
        state = sample_state()
        save_state(path, state)
        loaded = load_state(path)
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])

    def test_overwrite_replaces_atomically(self, tmp_path):
        path = tmp_path / "state.npz"
        save_state(path, {"x": np.zeros(3)})
        save_state(path, {"x": np.ones(3)})
        np.testing.assert_array_equal(load_state(path)["x"], np.ones(3))
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_failed_save_leaves_previous_archive_and_no_temp(self, tmp_path):
        path = tmp_path / "state.npz"
        save_state(path, {"x": np.arange(4.0)})
        before = path.read_bytes()
        with pytest.raises(ValueError):
            save_state(path, {CHECKSUM_KEY: np.zeros(1)})
        assert path.read_bytes() == before
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_relative_path_in_cwd(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        save_state("bare.npz", {"x": np.ones(2)})
        np.testing.assert_array_equal(load_state("bare.npz")["x"], np.ones(2))

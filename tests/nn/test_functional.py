"""Tests for composite differentiable functions (softmax, losses)."""

import numpy as np
from scipy.special import logsumexp as scipy_logsumexp
from scipy.stats import norm

from repro.nn import (
    Tensor,
    binary_cross_entropy_with_logits,
    gaussian_log_prob,
    huber_loss,
    log_softmax,
    logsumexp,
    mse_loss,
    softmax,
)

from ..helpers import check_gradients

RNG = np.random.default_rng(1)


class TestSoftmax:
    def test_sums_to_one(self):
        logits = RNG.standard_normal((4, 5))
        probs = softmax(Tensor(logits)).data
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_matches_scipy(self):
        logits = RNG.standard_normal((3, 6))
        expected = np.exp(logits - scipy_logsumexp(logits, axis=-1, keepdims=True))
        np.testing.assert_allclose(softmax(Tensor(logits)).data, expected, atol=1e-12)

    def test_stable_for_large_logits(self):
        logits = np.array([[1000.0, 1001.0, 999.0]])
        probs = softmax(Tensor(logits)).data
        assert np.all(np.isfinite(probs))
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_gradient(self):
        logits = RNG.standard_normal((2, 4))
        weights = RNG.standard_normal((2, 4))
        check_gradients(lambda t: (softmax(t[0]) * weights).sum(), [logits])


class TestLogsumexp:
    def test_matches_scipy(self):
        logits = RNG.standard_normal((3, 5))
        ours = logsumexp(Tensor(logits), axis=-1).data
        np.testing.assert_allclose(ours, scipy_logsumexp(logits, axis=-1), atol=1e-12)

    def test_keepdims(self):
        logits = RNG.standard_normal((3, 5))
        out = logsumexp(Tensor(logits), axis=-1, keepdims=True)
        assert out.shape == (3, 1)

    def test_gradient(self):
        logits = RNG.standard_normal((2, 3))
        check_gradients(lambda t: logsumexp(t[0], axis=-1).sum(), [logits])


class TestLogSoftmax:
    def test_exp_sums_to_one(self):
        logits = RNG.standard_normal((4, 5))
        out = log_softmax(Tensor(logits)).data
        np.testing.assert_allclose(np.exp(out).sum(axis=-1), np.ones(4), atol=1e-12)

    def test_gradient(self):
        logits = RNG.standard_normal((2, 4))
        weights = RNG.standard_normal((2, 4))
        check_gradients(lambda t: (log_softmax(t[0]) * weights).sum(), [logits])


class TestGaussianLogProb:
    def test_matches_scipy(self):
        x = RNG.standard_normal(10)
        mean = RNG.standard_normal(10)
        log_std = RNG.standard_normal(10) * 0.3
        ours = gaussian_log_prob(Tensor(x), Tensor(mean), Tensor(log_std)).data
        expected = norm.logpdf(x, loc=mean, scale=np.exp(log_std))
        np.testing.assert_allclose(ours, expected, atol=1e-10)

    def test_gradient(self):
        x = RNG.standard_normal(4)
        check_gradients(
            lambda t: gaussian_log_prob(x, t[0], t[1]).sum(),
            [RNG.standard_normal(4), RNG.standard_normal(4) * 0.2],
        )


class TestLosses:
    def test_mse_zero_at_target(self):
        x = RNG.standard_normal(5)
        assert mse_loss(Tensor(x), Tensor(x.copy())).item() == 0.0

    def test_mse_value(self):
        loss = mse_loss(Tensor(np.array([1.0, 2.0])), Tensor(np.array([0.0, 0.0])))
        np.testing.assert_allclose(loss.item(), 2.5)

    def test_mse_gradient(self):
        target = RNG.standard_normal((3, 2))
        check_gradients(lambda t: mse_loss(t[0], target), [RNG.standard_normal((3, 2))])

    def test_huber_quadratic_region(self):
        pred = Tensor(np.array([0.3]))
        target = Tensor(np.array([0.0]))
        np.testing.assert_allclose(huber_loss(pred, target, delta=1.0).item(), 0.5 * 0.09)

    def test_huber_linear_region(self):
        pred = Tensor(np.array([3.0]))
        target = Tensor(np.array([0.0]))
        np.testing.assert_allclose(huber_loss(pred, target, delta=1.0).item(), 0.5 + 2.0)

    def test_huber_gradient(self):
        pred = np.array([0.2, 2.5, -3.0, 0.0])
        target = np.zeros(4)
        check_gradients(lambda t: huber_loss(t[0], target), [pred])

    def test_bce_matches_reference(self):
        logits = RNG.standard_normal(20)
        targets = (RNG.random(20) < 0.5).astype(float)
        probs = 1.0 / (1.0 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        ours = binary_cross_entropy_with_logits(Tensor(logits), Tensor(targets)).item()
        np.testing.assert_allclose(ours, expected, atol=1e-10)

    def test_bce_stable_for_extreme_logits(self):
        logits = Tensor(np.array([100.0, -100.0]))
        targets = Tensor(np.array([1.0, 0.0]))
        loss = binary_cross_entropy_with_logits(logits, targets).item()
        assert np.isfinite(loss) and loss < 1e-6

    def test_bce_gradient(self):
        logits = RNG.standard_normal(6)
        targets = (RNG.random(6) < 0.5).astype(float)
        check_gradients(lambda t: binary_cross_entropy_with_logits(t[0], targets), [logits])

"""The graph-free inference fast path.

Three guarantees:

1. under ``no_grad()`` no backward closures or parent links are ever
   recorded, even when parameters are involved (the ops return through
   the graphless constructor);
2. the fast path changes no numbers: forward results are bit-identical
   to the graph-building path for Linear/MLP and both recurrent cells;
3. train-mode gradients (fused ``affine``, GRU/LSTM cells) still match
   finite differences.
"""

import numpy as np

from repro import nn
from repro.nn.tensor import affine

from ..helpers import check_gradients

RNG = np.random.default_rng(0)


def assert_graphless(tensor: nn.Tensor):
    assert not tensor.requires_grad
    assert tensor._backward is None
    assert tensor._prev == ()


class TestNoClosuresUnderNoGrad:
    def test_arithmetic_ops_on_parameters(self):
        p = nn.Parameter(RNG.standard_normal((4, 3)))
        q = nn.Parameter(RNG.standard_normal((4, 3)))
        with nn.no_grad():
            for out in [
                p + q,
                p * q,
                p - q,
                p / (q.abs() + 1.0),
                -p,
                p**2.0,
                p @ q.T,
                p.exp(),
                (p.abs() + 1e-6).log(),
                (p.abs()).sqrt(),
                p.tanh(),
                p.sigmoid(),
                p.relu(),
                p.clip(-1.0, 1.0),
                p.maximum(q),
                p.minimum(q),
                p.sum(axis=0),
                p.mean(),
                p.max(axis=1),
                p.reshape(3, 4),
                p.transpose(),
                p[1:3],
                nn.concat([p, q], axis=1),
                nn.stack([p, q]),
                nn.where(p.data > 0, p, q),
                affine(p, q.T),
            ]:
                assert_graphless(out)

    def test_modules_under_no_grad(self):
        mlp = nn.MLP([5, 8, 3], RNG)
        lstm = nn.LSTMCell(5, 7, RNG)
        gru = nn.GRUCell(5, 7, RNG)
        x = nn.Tensor(RNG.standard_normal((6, 5)))
        with nn.no_grad():
            assert_graphless(mlp(x))
            h, (h2, c2) = lstm(x, lstm.initial_state(6))
            assert_graphless(h)
            assert_graphless(c2)
            assert_graphless(gru(x, gru.initial_state(6)))

    def test_graph_still_built_when_grad_enabled(self):
        layer = nn.Linear(4, 2, RNG)
        out = layer(nn.Tensor(RNG.standard_normal((3, 4))))
        assert out.requires_grad
        assert out._backward is not None
        assert layer.weight in out._prev


class TestFastPathMatchesGraphPath:
    def test_mlp_forward_bitwise(self):
        mlp = nn.MLP([13, 64, 32, 2], RNG)
        x = RNG.standard_normal((40, 13))
        with nn.no_grad():
            fast = mlp(nn.Tensor(x)).data
        slow = mlp(nn.Tensor(x)).data
        np.testing.assert_array_equal(fast, slow)

    def test_lstm_cell_multi_step_bitwise(self):
        cell = nn.LSTMCell(10, 16, RNG)
        xs = RNG.standard_normal((5, 8, 10))
        fast_state = cell.initial_state(8)
        slow_state = cell.initial_state(8)
        for t in range(5):
            with nn.no_grad():
                h_fast, fast_state = cell(nn.Tensor(xs[t]), fast_state)
            h_slow, slow_state = cell(nn.Tensor(xs[t]), slow_state)
            np.testing.assert_array_equal(h_fast.data, h_slow.data)
            np.testing.assert_array_equal(fast_state[1].data, slow_state[1].data)

    def test_gru_cell_multi_step_bitwise(self):
        cell = nn.GRUCell(10, 16, RNG)
        xs = RNG.standard_normal((5, 8, 10))
        h_fast = cell.initial_state(8)
        h_slow = cell.initial_state(8)
        for t in range(5):
            with nn.no_grad():
                h_fast = cell(nn.Tensor(xs[t]), h_fast)
            h_slow = cell(nn.Tensor(xs[t]), h_slow)
            np.testing.assert_array_equal(h_fast.data, h_slow.data)

    def test_scratch_reuse_across_batch_sizes(self):
        """Changing batch size mid-stream must not corrupt the scratch."""
        cell = nn.GRUCell(4, 6, RNG)
        for batch in (3, 9, 3):
            x = RNG.standard_normal((batch, 4))
            with nn.no_grad():
                fast = cell(nn.Tensor(x), cell.initial_state(batch)).data
            slow = cell(nn.Tensor(x), cell.initial_state(batch)).data
            np.testing.assert_array_equal(fast, slow)

    def test_value_head_row_stability(self):
        """Single-output affine must give identical rows regardless of how
        the batch is blocked (the gemv batch-dependence regression)."""
        layer = nn.Linear(32, 1, RNG, init="orthogonal")
        x = RNG.standard_normal((30, 32))
        with nn.no_grad():
            full = layer(nn.Tensor(x)).data
            for start in range(0, 30, 7):
                block = layer(nn.Tensor(x[start : start + 7])).data
                np.testing.assert_array_equal(full[start : start + 7], block)


class TestTrainGradientsUnchanged:
    def test_affine_with_bias_gradcheck(self):
        x = RNG.standard_normal((4, 3))
        w = RNG.standard_normal((3, 2))
        b = RNG.standard_normal(2)
        check_gradients(lambda t: affine(t[0], t[1], t[2]).sum(), [x, w, b])

    def test_affine_without_bias_gradcheck(self):
        x = RNG.standard_normal((4, 3))
        w = RNG.standard_normal((3, 2))
        check_gradients(lambda t: (affine(t[0], t[1]) * affine(t[0], t[1])).sum(), [x, w])

    def test_affine_single_output_gradcheck(self):
        # The value-head case takes the row-stable reduction path.
        x = RNG.standard_normal((5, 4))
        w = RNG.standard_normal((4, 1))
        b = RNG.standard_normal(1)
        check_gradients(lambda t: affine(t[0], t[1], t[2]).sum(), [x, w, b])

    def test_linear_layer_gradcheck(self):
        layer = nn.Linear(3, 2, RNG)

        def func(tensors):
            layer.weight, layer.bias = tensors[1], tensors[2]
            return (layer(tensors[0]) ** 2.0).sum()

        check_gradients(
            func,
            [RNG.standard_normal((4, 3)), RNG.standard_normal((3, 2)), RNG.standard_normal(2)],
        )

    def test_gru_cell_gradcheck(self):
        cell = nn.GRUCell(3, 4, np.random.default_rng(1))

        def func(tensors):
            x, h = tensors
            return cell(x, h).sum()

        check_gradients(func, [RNG.standard_normal((2, 3)), RNG.standard_normal((2, 4))])

    def test_lstm_cell_gradcheck(self):
        cell = nn.LSTMCell(3, 4, np.random.default_rng(2))

        def func(tensors):
            x, h, c = tensors
            out, (h2, c2) = cell(x, (h, c))
            return (out * out).sum() + c2.sum()

        check_gradients(
            func,
            [
                RNG.standard_normal((2, 3)),
                RNG.standard_normal((2, 4)),
                RNG.standard_normal((2, 4)),
            ],
        )

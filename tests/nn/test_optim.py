"""Tests for optimisers, LR schedules and gradient clipping."""

import numpy as np
import pytest

from repro.nn import Adam, LinearLRSchedule, Parameter, SGD, Tensor, clip_grad_norm

RNG = np.random.default_rng(4)


def quadratic_loss(param: Parameter) -> Tensor:
    return ((param - 3.0) ** 2.0).sum()


class TestSGD:
    def test_single_step(self):
        param = Parameter(np.array([0.0]))
        optimizer = SGD([param], lr=0.1)
        quadratic_loss(param).backward()
        optimizer.step()
        np.testing.assert_allclose(param.data, [0.6])  # grad = -6, step = 0.1*(-6)

    def test_momentum_accumulates(self):
        param = Parameter(np.array([0.0]))
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        for _ in range(2):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        # step1: v=-6, x=0.6; step2: v=0.9*(-6)+(-4.8)=-10.2, x=0.6+1.02
        np.testing.assert_allclose(param.data, [1.62])

    def test_converges_on_quadratic(self):
        param = Parameter(np.array([0.0]))
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0], atol=1e-6)

    def test_skips_params_without_grad(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([2.0]))
        optimizer = SGD([p1, p2], lr=0.1)
        (p1 * 2.0).sum().backward()
        optimizer.step()
        np.testing.assert_allclose(p2.data, [2.0])

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step has magnitude ~lr.
        param = Parameter(np.array([10.0]))
        optimizer = Adam([param], lr=0.5)
        quadratic_loss(param).backward()
        optimizer.step()
        np.testing.assert_allclose(param.data, [9.5], atol=1e-6)

    def test_converges_on_quadratic(self):
        param = Parameter(np.array([-4.0, 8.0]))
        optimizer = Adam([param], lr=0.2)
        for _ in range(300):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, 3.0], atol=1e-4)

    def test_weight_decay_pulls_to_zero(self):
        param = Parameter(np.array([5.0]))
        optimizer = Adam([param], lr=0.1, weight_decay=1.0)
        for _ in range(500):
            optimizer.zero_grad()
            # zero loss gradient: only decay acts
            (param * 0.0).sum().backward()
            optimizer.step()
        assert abs(param.data[0]) < 0.5

    def test_zero_grad_resets(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1)
        quadratic_loss(param).backward()
        optimizer.zero_grad()
        assert param.grad is None


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([0.5])
        norm = clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(norm, 0.5)
        np.testing.assert_allclose(param.grad, [0.5])

    def test_clips_above_threshold(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        p1.grad = np.array([3.0])
        p2.grad = np.array([4.0])
        norm = clip_grad_norm([p1, p2], max_norm=1.0)
        np.testing.assert_allclose(norm, 5.0)
        total = np.sqrt(p1.grad**2 + p2.grad**2)
        np.testing.assert_allclose(total, [1.0], atol=1e-12)

    def test_handles_missing_grads(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        p1.grad = np.array([2.0])
        norm = clip_grad_norm([p1, p2], max_norm=1.0)
        np.testing.assert_allclose(norm, 2.0)


class TestLinearLRSchedule:
    def test_decays_to_end_value(self):
        param = Parameter(np.array([0.0]))
        optimizer = Adam([param], lr=1e-4)
        schedule = LinearLRSchedule(optimizer, start=1e-4, end=1e-6, total=10)
        for _ in range(10):
            schedule.step()
        np.testing.assert_allclose(optimizer.lr, 1e-6)

    def test_midpoint(self):
        param = Parameter(np.array([0.0]))
        optimizer = Adam([param], lr=1.0)
        schedule = LinearLRSchedule(optimizer, start=1.0, end=0.0, total=4)
        schedule.step()
        schedule.step()
        np.testing.assert_allclose(optimizer.lr, 0.5)

    def test_clamps_after_total(self):
        param = Parameter(np.array([0.0]))
        optimizer = Adam([param], lr=1.0)
        schedule = LinearLRSchedule(optimizer, start=1.0, end=0.1, total=2)
        for _ in range(5):
            schedule.step()
        np.testing.assert_allclose(optimizer.lr, 0.1)

    def test_invalid_total_raises(self):
        param = Parameter(np.array([0.0]))
        optimizer = Adam([param], lr=1.0)
        with pytest.raises(ValueError):
            LinearLRSchedule(optimizer, start=1.0, end=0.1, total=0)


class TestOptimizerStateDicts:
    """state_dict/load_state_dict: a restored optimiser takes the same step."""

    @staticmethod
    def run_steps(optimizer, param, count):
        for _ in range(count):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()

    @pytest.mark.parametrize("factory", [
        lambda p: SGD([p], lr=0.05, momentum=0.9),
        lambda p: Adam([p], lr=0.05),
    ])
    def test_restored_optimizer_continues_identically(self, factory):
        unbroken = Parameter(np.array([0.0, 1.0]))
        opt_a = factory(unbroken)
        self.run_steps(opt_a, unbroken, 6)

        resumed = Parameter(np.array([0.0, 1.0]))
        opt_b = factory(resumed)
        self.run_steps(opt_b, resumed, 3)
        snapshot = opt_b.state_dict()
        params_at_snap = resumed.data.copy()

        fresh = Parameter(params_at_snap)
        opt_c = factory(fresh)
        opt_c.load_state_dict(snapshot)
        self.run_steps(opt_c, fresh, 3)
        np.testing.assert_array_equal(fresh.data, unbroken.data)

    def test_adam_state_carries_step_count(self):
        param = Parameter(np.array([0.5]))
        optimizer = Adam([param], lr=0.1)
        self.run_steps(optimizer, param, 4)
        state = optimizer.state_dict()
        assert int(state["step_count"][0]) == 4
        clone = Adam([Parameter(np.array([0.5]))], lr=0.1)
        clone.load_state_dict(state)
        assert clone._step_count == 4

    def test_missing_slot_raises(self):
        optimizer = SGD([Parameter(np.zeros(2))], lr=0.1, momentum=0.5)
        state = optimizer.state_dict()
        del state["velocity.0"]
        with pytest.raises(KeyError, match="velocity.0"):
            optimizer.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        optimizer = Adam([Parameter(np.zeros(2))], lr=0.1)
        state = optimizer.state_dict()
        state["m.0"] = np.zeros(3)
        with pytest.raises(ValueError, match="shape"):
            optimizer.load_state_dict(state)

    def test_schedule_state_rederives_lr(self):
        param = Parameter(np.array([0.0]))
        optimizer = Adam([param], lr=1.0)
        schedule = LinearLRSchedule(optimizer, start=1.0, end=0.0, total=10)
        for _ in range(4):
            schedule.step()
        state = schedule.state_dict()

        fresh_param = Parameter(np.array([0.0]))
        fresh_opt = Adam([fresh_param], lr=1.0)
        fresh_schedule = LinearLRSchedule(fresh_opt, start=1.0, end=0.0, total=10)
        fresh_schedule.load_state_dict(state)
        assert fresh_schedule._step_count == 4
        assert fresh_opt.lr == pytest.approx(optimizer.lr)
        assert fresh_schedule.step() == pytest.approx(schedule.step())

"""Tests for probability distributions: likelihoods vs scipy, sampling stats,
KL identities, the product-of-Gaussians used by SADAE (Eq. 6)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.nn import Bernoulli, Categorical, DiagGaussian, Tensor, product_of_gaussians

from ..helpers import check_gradients

RNG = np.random.default_rng(5)


class TestDiagGaussian:
    def test_log_prob_matches_scipy(self):
        mean = RNG.standard_normal((4, 3))
        log_std = RNG.standard_normal((4, 3)) * 0.2
        x = RNG.standard_normal((4, 3))
        dist = DiagGaussian(Tensor(mean), Tensor(log_std))
        expected = stats.norm.logpdf(x, loc=mean, scale=np.exp(log_std)).sum(axis=-1)
        np.testing.assert_allclose(dist.log_prob(x).data, expected, atol=1e-10)

    def test_entropy_matches_scipy(self):
        mean = np.zeros((2, 3))
        log_std = RNG.standard_normal((2, 3)) * 0.3
        dist = DiagGaussian(Tensor(mean), Tensor(log_std))
        expected = stats.norm.entropy(scale=np.exp(log_std)).sum(axis=-1)
        np.testing.assert_allclose(dist.entropy().data, expected, atol=1e-10)

    def test_kl_self_is_zero(self):
        mean = RNG.standard_normal((3, 2))
        log_std = RNG.standard_normal((3, 2)) * 0.1
        dist = DiagGaussian(Tensor(mean), Tensor(log_std))
        np.testing.assert_allclose(dist.kl(dist).data, np.zeros(3), atol=1e-12)

    def test_kl_against_monte_carlo(self):
        p = DiagGaussian(Tensor(np.array([0.5])), Tensor(np.array([0.1])))
        q = DiagGaussian(Tensor(np.array([-0.3])), Tensor(np.array([0.4])))
        samples = p.mean.data + np.exp(p.log_std.data) * RNG.standard_normal((200000, 1))
        log_p = stats.norm.logpdf(samples, 0.5, np.exp(0.1)).sum(-1)
        log_q = stats.norm.logpdf(samples, -0.3, np.exp(0.4)).sum(-1)
        mc_kl = (log_p - log_q).mean()
        np.testing.assert_allclose(p.kl(q).item(), mc_kl, atol=0.01)

    def test_sample_statistics(self):
        dist = DiagGaussian(Tensor(np.full((50000, 1), 2.0)), Tensor(np.full((50000, 1), np.log(0.5))))
        samples = dist.sample(RNG)
        np.testing.assert_allclose(samples.mean(), 2.0, atol=0.02)
        np.testing.assert_allclose(samples.std(), 0.5, atol=0.02)

    def test_rsample_gradient_flows(self):
        mean = Tensor(np.zeros(3), requires_grad=True)
        log_std = Tensor(np.zeros(3), requires_grad=True)
        dist = DiagGaussian(mean, log_std)
        sample = dist.rsample(np.random.default_rng(0))
        sample.sum().backward()
        assert mean.grad is not None
        assert log_std.grad is not None

    def test_log_std_clipping(self):
        dist = DiagGaussian(Tensor(np.zeros(2)), Tensor(np.array([100.0, -100.0])))
        assert dist.log_std.data[0] == DiagGaussian.LOG_STD_MAX
        assert dist.log_std.data[1] == DiagGaussian.LOG_STD_MIN

    def test_mode_is_mean(self):
        mean = RNG.standard_normal(4)
        dist = DiagGaussian(Tensor(mean), Tensor(np.zeros(4)))
        np.testing.assert_array_equal(dist.mode(), mean)

    def test_log_prob_gradient(self):
        x = RNG.standard_normal(3)
        check_gradients(
            lambda t: DiagGaussian(t[0], t[1]).log_prob(x).sum(),
            [RNG.standard_normal(3), RNG.standard_normal(3) * 0.1],
        )


class TestCategorical:
    def test_log_prob_matches_manual(self):
        logits = RNG.standard_normal((4, 3))
        dist = Categorical(Tensor(logits))
        values = np.array([0, 2, 1, 0])
        shifted = logits - logits.max(axis=-1, keepdims=True)
        manual = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        expected = manual[np.arange(4), values]
        np.testing.assert_allclose(dist.log_prob(values).data, expected, atol=1e-12)

    def test_sample_frequencies(self):
        logits = np.log(np.array([0.7, 0.2, 0.1]))
        dist = Categorical(Tensor(np.tile(logits, (20000, 1))))
        samples = dist.sample(RNG)
        freqs = np.bincount(samples.astype(int), minlength=3) / 20000
        np.testing.assert_allclose(freqs, [0.7, 0.2, 0.1], atol=0.02)

    def test_entropy_uniform_is_log_n(self):
        dist = Categorical(Tensor(np.zeros(5)))
        np.testing.assert_allclose(dist.entropy().item(), np.log(5), atol=1e-10)

    def test_kl_self_zero(self):
        logits = RNG.standard_normal((2, 4))
        dist = Categorical(Tensor(logits))
        np.testing.assert_allclose(dist.kl(dist).data, np.zeros(2), atol=1e-12)

    def test_kl_matches_scipy(self):
        p_logits = RNG.standard_normal(4)
        q_logits = RNG.standard_normal(4)
        p = np.exp(p_logits) / np.exp(p_logits).sum()
        q = np.exp(q_logits) / np.exp(q_logits).sum()
        expected = stats.entropy(p, q)
        ours = Categorical(Tensor(p_logits)).kl(Categorical(Tensor(q_logits))).item()
        np.testing.assert_allclose(ours, expected, atol=1e-10)

    def test_mode(self):
        logits = np.array([[0.1, 5.0, 0.2], [3.0, 0.0, 0.1]])
        np.testing.assert_array_equal(Categorical(Tensor(logits)).mode(), [1, 0])

    def test_log_prob_gradient(self):
        values = np.array([1, 0])
        check_gradients(
            lambda t: Categorical(t[0]).log_prob(values).sum(),
            [RNG.standard_normal((2, 3))],
        )


class TestBernoulli:
    def test_log_prob_matches_manual(self):
        logits = RNG.standard_normal(10)
        x = (RNG.random(10) < 0.5).astype(float)
        p = 1.0 / (1.0 + np.exp(-logits))
        expected = x * np.log(p) + (1 - x) * np.log(1 - p)
        ours = Bernoulli(Tensor(logits)).log_prob(x).data
        np.testing.assert_allclose(ours, expected, atol=1e-10)

    def test_sample_frequency(self):
        logits = np.full(20000, 1.0)
        samples = Bernoulli(Tensor(logits)).sample(RNG)
        np.testing.assert_allclose(samples.mean(), 1 / (1 + np.exp(-1.0)), atol=0.02)

    def test_entropy_max_at_half(self):
        dist = Bernoulli(Tensor(np.array([0.0])))
        np.testing.assert_allclose(dist.entropy().data, [np.log(2)], atol=1e-10)


class TestProductOfGaussians:
    def test_two_factor_closed_form(self):
        # Product of N(0,1) and N(2,1) is N(1, 1/2).
        means = Tensor(np.array([[0.0], [2.0]]))
        log_stds = Tensor(np.array([[0.0], [0.0]]))
        product = product_of_gaussians(means, log_stds, axis=0)
        np.testing.assert_allclose(product.mean.data, [1.0], atol=1e-12)
        np.testing.assert_allclose(np.exp(product.log_std.data) ** 2, [0.5], atol=1e-12)

    def test_precision_weighting(self):
        # A tight factor should dominate the product mean.
        means = Tensor(np.array([[0.0], [10.0]]))
        log_stds = Tensor(np.array([[np.log(0.01)], [np.log(10.0)]]))
        product = product_of_gaussians(means, log_stds, axis=0)
        assert abs(product.mean.data[0]) < 0.1

    def test_variance_shrinks_with_factors(self):
        for n in [1, 5, 25]:
            means = Tensor(np.zeros((n, 1)))
            log_stds = Tensor(np.zeros((n, 1)))
            product = product_of_gaussians(means, log_stds, axis=0)
            np.testing.assert_allclose(np.exp(product.log_std.data) ** 2, [1.0 / n], atol=1e-10)

    def test_matches_sequential_two_gaussian_products(self):
        rng = np.random.default_rng(11)
        means = rng.standard_normal((4, 2))
        stds = np.abs(rng.standard_normal((4, 2))) + 0.3
        product = product_of_gaussians(Tensor(means), Tensor(np.log(stds)), axis=0)
        # Reference: iterate the standard 2-Gaussian product formula.
        mean_ref, var_ref = means[0], stds[0] ** 2
        for i in range(1, 4):
            var_i = stds[i] ** 2
            new_var = 1.0 / (1.0 / var_ref + 1.0 / var_i)
            mean_ref = new_var * (mean_ref / var_ref + means[i] / var_i)
            var_ref = new_var
        np.testing.assert_allclose(product.mean.data, mean_ref, atol=1e-10)
        np.testing.assert_allclose(np.exp(2 * product.log_std.data), var_ref, atol=1e-10)

    def test_gradient_flows_to_all_factors(self):
        means = Tensor(RNG.standard_normal((3, 2)), requires_grad=True)
        log_stds = Tensor(RNG.standard_normal((3, 2)) * 0.1, requires_grad=True)
        product = product_of_gaussians(means, log_stds, axis=0)
        (product.mean.sum() + product.log_std.sum()).backward()
        assert means.grad is not None and np.all(np.abs(means.grad) > 0)
        assert log_stds.grad is not None

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_product_variance_never_exceeds_min_factor(self, n):
        rng = np.random.default_rng(n)
        stds = np.abs(rng.standard_normal((n, 1))) + 0.1
        product = product_of_gaussians(
            Tensor(rng.standard_normal((n, 1))), Tensor(np.log(stds)), axis=0
        )
        product_var = float(np.exp(2 * product.log_std.data)[0])
        assert product_var <= float((stds**2).min()) + 1e-12

"""Tests for LSTM / GRU cells and sequence unrolling (BPTT)."""

import numpy as np

from repro.nn import GRUCell, LSTM, LSTMCell, Tensor

from ..helpers import check_gradients

RNG = np.random.default_rng(3)


class TestLSTMCell:
    def test_output_shapes(self):
        cell = LSTMCell(4, 8, RNG)
        state = cell.initial_state(3)
        h, (h2, c2) = cell(Tensor(RNG.standard_normal((3, 4))), state)
        assert h.shape == (3, 8)
        assert h2.shape == (3, 8)
        assert c2.shape == (3, 8)

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(4, 8, RNG)
        np.testing.assert_array_equal(cell.bias.data[8:16], np.ones(8))

    def test_state_changes_output(self):
        cell = LSTMCell(2, 4, RNG)
        x = Tensor(RNG.standard_normal((1, 2)))
        zero_state = cell.initial_state(1)
        h1, _ = cell(x, zero_state)
        active_state = (Tensor(np.ones((1, 4))), Tensor(np.ones((1, 4))))
        h2, _ = cell(x, active_state)
        assert not np.allclose(h1.data, h2.data)

    def test_gradients_through_time(self):
        cell = LSTMCell(2, 3, RNG)
        xs = RNG.standard_normal((4, 1, 2))

        def loss(tensors):
            state = cell.initial_state(1)
            total = None
            for t in range(4):
                h, state = cell(tensors[0][t], state)
                total = h.sum() if total is None else total + h.sum()
            return total

        check_gradients(loss, [xs], atol=1e-4)

    def test_parameter_gradients_populated(self):
        cell = LSTMCell(2, 3, RNG)
        state = cell.initial_state(2)
        h, state = cell(Tensor(RNG.standard_normal((2, 2))), state)
        h, _ = cell(Tensor(RNG.standard_normal((2, 2))), state)
        h.sum().backward()
        for param in cell.parameters():
            assert param.grad is not None
            assert np.any(param.grad != 0)


class TestGRUCell:
    def test_output_shape(self):
        cell = GRUCell(4, 6, RNG)
        h = cell(Tensor(RNG.standard_normal((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_interpolation_property(self):
        # With z -> 1 the GRU must copy the previous state.
        cell = GRUCell(2, 3, RNG)
        cell.bias.data[3:6] = 100.0  # saturate update gate z to 1
        h_prev = Tensor(RNG.standard_normal((1, 3)))
        h = cell(Tensor(RNG.standard_normal((1, 2))), h_prev)
        np.testing.assert_allclose(h.data, h_prev.data, atol=1e-6)

    def test_gradients(self):
        cell = GRUCell(2, 3, RNG)
        h = cell(Tensor(RNG.standard_normal((2, 2))), cell.initial_state(2))
        h.sum().backward()
        for param in cell.parameters():
            assert param.grad is not None


class TestLSTMSequence:
    def test_output_shapes(self):
        lstm = LSTM(3, 5, RNG)
        seq = Tensor(RNG.standard_normal((7, 2, 3)))
        outputs, (h, c) = lstm(seq)
        assert outputs.shape == (7, 2, 5)
        assert h.shape == (2, 5)
        assert c.shape == (2, 5)

    def test_matches_manual_unroll(self):
        lstm = LSTM(3, 4, RNG)
        seq = RNG.standard_normal((5, 2, 3))
        outputs, _ = lstm(Tensor(seq))
        state = lstm.cell.initial_state(2)
        for t in range(5):
            h, state = lstm.cell(Tensor(seq[t]), state)
            np.testing.assert_allclose(outputs.data[t], h.data, atol=1e-12)

    def test_reset_mask_restarts_state(self):
        lstm = LSTM(2, 3, RNG)
        seq = RNG.standard_normal((4, 1, 2))
        # Reset at t=2: outputs from t=2 on must equal a fresh run on the suffix.
        mask = np.zeros((4, 1))
        mask[2, 0] = 1.0
        outputs_masked, _ = lstm(Tensor(seq), reset_mask=mask)
        outputs_suffix, _ = lstm(Tensor(seq[2:]))
        np.testing.assert_allclose(outputs_masked.data[2:], outputs_suffix.data, atol=1e-12)

    def test_initial_state_passthrough(self):
        lstm = LSTM(2, 3, RNG)
        seq = Tensor(RNG.standard_normal((2, 1, 2)))
        h0 = Tensor(np.ones((1, 3)) * 0.5)
        c0 = Tensor(np.ones((1, 3)) * 0.5)
        out_custom, _ = lstm(seq, state=(h0, c0))
        out_zero, _ = lstm(seq)
        assert not np.allclose(out_custom.data, out_zero.data)

    def test_bptt_gradients_nonzero_at_first_step(self):
        lstm = LSTM(2, 3, RNG)
        seq = Tensor(RNG.standard_normal((6, 2, 2)), requires_grad=True)
        outputs, _ = lstm(seq)
        outputs[5].sum().backward()
        first_step_grad = seq.grad[0]
        assert np.any(first_step_grad != 0.0), "gradient should flow to t=0 through BPTT"

    def test_learns_to_remember_first_input(self):
        """LSTM can learn a copy task: output the first element at the end."""
        from repro.nn import Adam, Linear, mse_loss

        rng = np.random.default_rng(42)
        lstm = LSTM(1, 8, rng)
        head = Linear(8, 1, rng)
        params = lstm.parameters() + head.parameters()
        optimizer = Adam(params, lr=5e-3)
        losses = []
        for _ in range(150):
            signal = rng.standard_normal((1, 8, 1))
            seq = np.concatenate([signal, np.zeros((5, 8, 1))], axis=0)
            target = signal[0]
            optimizer.zero_grad()
            outputs, _ = lstm(Tensor(seq))
            prediction = head(outputs[-1])
            loss = mse_loss(prediction, Tensor(target))
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) * 0.5

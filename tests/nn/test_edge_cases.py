"""Edge-case and numerical-robustness tests for the nn substrate."""

import numpy as np

from repro import nn


class TestNumericalRobustness:
    def test_sigmoid_extreme_inputs(self):
        out = nn.Tensor(np.array([1e4, -1e4])).sigmoid()
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [1.0, 0.0], atol=1e-12)

    def test_softmax_with_neg_inf_like_logits(self):
        logits = nn.Tensor(np.array([[0.0, -1e30, 0.0]]))
        probs = nn.softmax(logits).data
        np.testing.assert_allclose(probs[0], [0.5, 0.0, 0.5], atol=1e-12)

    def test_gaussian_log_prob_tiny_std(self):
        dist = nn.DiagGaussian(nn.Tensor(np.zeros(1)), nn.Tensor(np.array([-30.0])))
        # log_std is clipped; likelihood stays finite
        value = dist.log_prob(np.array([0.1])).data
        assert np.isfinite(value)

    def test_log_prob_far_from_mean(self):
        dist = nn.DiagGaussian(nn.Tensor(np.zeros(2)), nn.Tensor(np.zeros(2)))
        value = dist.log_prob(np.full(2, 100.0)).item()
        assert np.isfinite(value) and value < -1000

    def test_adam_with_zero_gradients(self):
        param = nn.Parameter(np.ones(3))
        optimizer = nn.Adam([param], lr=0.1)
        param.grad = np.zeros(3)
        optimizer.step()
        np.testing.assert_array_equal(param.data, np.ones(3))

    def test_empty_like_batch_dimension(self):
        mlp = nn.MLP([3, 4, 2], np.random.default_rng(0))
        out = mlp(nn.Tensor(np.zeros((0, 3))))
        assert out.shape == (0, 2)

    def test_lstm_batch_size_one(self):
        lstm = nn.LSTM(2, 3, np.random.default_rng(0))
        outputs, _ = lstm(nn.Tensor(np.random.default_rng(0).standard_normal((4, 1, 2))))
        assert outputs.shape == (4, 1, 3)

    def test_product_of_gaussians_single_factor_identity(self):
        mean = nn.Tensor(np.array([[1.5, -0.5]]))
        log_std = nn.Tensor(np.array([[0.2, -0.3]]))
        product = nn.product_of_gaussians(mean, log_std, axis=0)
        np.testing.assert_allclose(product.mean.data, [1.5, -0.5], atol=1e-12)
        np.testing.assert_allclose(product.log_std.data, [0.2, -0.3], atol=1e-12)

    def test_clip_grad_norm_zero_gradients(self):
        param = nn.Parameter(np.ones(2))
        param.grad = np.zeros(2)
        norm = nn.clip_grad_norm([param], max_norm=1.0)
        assert norm == 0.0


class TestGraphEdgeCases:
    def test_scalar_tensor_operations(self):
        t = nn.Tensor(2.0, requires_grad=True)
        (t * t).backward()
        np.testing.assert_allclose(t.grad, 4.0)

    def test_chained_getitem(self):
        t = nn.Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        t[0][1].sum().backward()
        expected = np.zeros((2, 3, 4))
        expected[0, 1] = 1.0
        np.testing.assert_array_equal(t.grad, expected)

    def test_concat_single_tensor(self):
        t = nn.Tensor(np.ones((2, 3)), requires_grad=True)
        nn.concat([t], axis=0).sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones((2, 3)))

    def test_backward_twice_through_same_graph(self):
        """Grad accumulation across separate forward passes is supported."""
        t = nn.Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0])

    def test_no_grad_inside_grad_context(self):
        t = nn.Tensor(np.ones(2), requires_grad=True)
        a = t * 2.0
        with nn.no_grad():
            b = t * 3.0
        assert a.requires_grad
        assert not b.requires_grad

    def test_nested_no_grad(self):
        with nn.no_grad():
            with nn.no_grad():
                pass
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_where_with_all_true(self):
        a = nn.Tensor(np.ones(3), requires_grad=True)
        b = nn.Tensor(np.zeros(3), requires_grad=True)
        nn.where(np.ones(3, dtype=bool), a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(3))
        np.testing.assert_array_equal(b.grad, np.zeros(3))

    def test_stack_gradient_axis1(self):
        a = nn.Tensor(np.ones(3), requires_grad=True)
        b = nn.Tensor(np.ones(3), requires_grad=True)
        out = nn.stack([a, b], axis=1)
        assert out.shape == (3, 2)
        (out * np.array([[1.0, 2.0]] * 3)).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(3))
        np.testing.assert_array_equal(b.grad, np.full(3, 2.0))


class TestModuleEdgeCases:
    def test_module_without_parameters(self):
        class Empty(nn.Module):
            pass

        assert Empty().parameters() == []
        assert Empty().num_parameters() == 0

    def test_save_load_empty_module_roundtrip(self, tmp_path):
        mlp = nn.MLP([2, 2], np.random.default_rng(0))
        path = tmp_path / "m.npz"
        nn.save_module(mlp, path)
        clone = nn.MLP([2, 2], np.random.default_rng(1))
        nn.load_module(clone, path)
        x = nn.Tensor(np.ones((1, 2)))
        np.testing.assert_allclose(mlp(x).data, clone(x).data)

    def test_copy_from(self):
        a = nn.MLP([2, 3, 1], np.random.default_rng(0))
        b = nn.MLP([2, 3, 1], np.random.default_rng(1))
        b.copy_from(a)
        x = nn.Tensor(np.ones((2, 2)))
        np.testing.assert_allclose(a(x).data, b(x).data)

"""Trainer observability: JSONL sink output, and proof it is inert.

The load-bearing test here is the bit-parity regression: two seeded
strict runs, one with ``metrics_path`` set and one without, must end
with byte-for-byte identical policy parameters and identical logged
metrics dicts. Timings flow only into the registry/JSONL side channel,
never into anything the optimiser or the determinism witness reads.
"""

import numpy as np
import pytest

from repro.core.config import scenario_small_config
from repro.nn.serialization import state_to_bytes
from repro.obs import read_metrics_jsonl
from repro.rl import sharding_available
from repro.scenarios import trainer_from_config

SPEC = {"family": "slate", "num_envs": 4, "num_users": 5, "horizon": 5}


def build_trainer(seed: int = 11, **config_overrides):
    config = scenario_small_config(seed=seed)
    config.scenario = dict(SPEC)
    for key, value in config_overrides.items():
        setattr(config, key, value)
    trainer = trainer_from_config(config, dict(SPEC))
    trainer.pretrain_sadae(epochs=1)
    return trainer


def run(iterations: int = 2, **overrides):
    """Seeded run -> (final policy bytes, per-iteration logged metrics)."""
    with build_trainer(**overrides) as trainer:
        logged = [trainer.train_iteration() for _ in range(iterations)]
        params = state_to_bytes(trainer.policy.replica_state())
    return params, logged


class TestMetricsAreInert:
    def test_metrics_path_does_not_change_training(self, tmp_path):
        """Byte-for-byte parity: sink on vs sink off."""
        baseline_params, baseline_logged = run()
        metrics_params, metrics_logged = run(
            metrics_path=str(tmp_path / "metrics.jsonl")
        )
        assert metrics_params == baseline_params
        assert len(metrics_logged) == len(baseline_logged)
        for with_sink, without in zip(metrics_logged, baseline_logged):
            assert set(with_sink) == set(without)
            for key in without:
                np.testing.assert_array_equal(with_sink[key], without[key])

    def test_logged_metrics_carry_no_timing_keys(self):
        """Wall-clock numbers must never leak into the returned dict."""
        _, logged = run(iterations=1)
        for key in logged[0]:
            assert "seconds" not in key and "duration" not in key


class TestJSONLRecords:
    def test_one_record_per_iteration(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        run(iterations=3, metrics_path=str(path))
        records = read_metrics_jsonl(path, strict=True)
        assert [r["iteration"] for r in records] == [0, 1, 2]

    def test_records_carry_logged_and_registry_snapshot(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        _, logged = run(iterations=2, metrics_path=str(path))
        records = read_metrics_jsonl(path, strict=True)
        final = records[-1]
        # The logged block mirrors train_iteration's returned dict.
        assert set(final["logged"]) == set(logged[-1])
        snapshot = final["metrics"]
        assert snapshot["train_iterations_total"]["series"][0]["value"] == 2
        assert "train_collect_lag" in snapshot
        phases = {
            series["labels"]["phase"]
            for series in snapshot["train_phase_seconds"]["series"]
        }
        assert {"collect", "update", "sadae", "sadae_pretrain"} <= phases
        for series in snapshot["train_phase_seconds"]["series"]:
            assert sum(series["counts"]) == series["count"]

    def test_sink_reopened_after_pool_relayout_keeps_appending(self, tmp_path):
        """Changing the worker layout mid-run closes the sink; the next
        iteration must reopen it in append mode, not truncate."""
        if not sharding_available():
            pytest.skip("platform has no multiprocessing start method")
        path = tmp_path / "metrics.jsonl"
        with build_trainer(
            metrics_path=str(path),
            rollout_mode="shard_parallel",
            rollout_workers=2,
        ) as trainer:
            trainer.train_iteration()
            trainer.config.rollout_workers = 1
            trainer.train_iteration()
        records = read_metrics_jsonl(path, strict=True)
        assert [r["iteration"] for r in records] == [0, 1]


@pytest.mark.skipif(
    not sharding_available(), reason="platform has no multiprocessing start method"
)
class TestPoolInstrumentation:
    def test_sharded_pool_reports_into_trainer_registry(self):
        with build_trainer(
            rollout_mode="shard_parallel", rollout_workers=2
        ) as trainer:
            trainer.train_iteration()
            snapshot = trainer.metrics.snapshot()
        assert "rollout_step_wait_seconds" in snapshot
        assert "rollout_collect_seconds" in snapshot
        collect = snapshot["rollout_collect_seconds"]["series"]
        assert sum(series["count"] for series in collect) >= 1
        assert trainer.metrics.value("rollout_pool_degraded") == 0.0

"""Registry semantics: families, labels, histogram edges, thread safety.

The histogram edge cases here are load-bearing: the Prometheus ``le``
contract (a sample equal to an edge counts in that edge's bucket) is
what makes the exported cumulative buckets agree with what a real
scraper computes, and the exact-sum concurrency tests are what lets the
serve hot path trust lock-per-family accounting under thread churn.
"""

import json
import math
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricError,
    MetricsRegistry,
    quantile_from_buckets,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("requests_total", "requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter("ops_total", "ops", ("op",))
        counter.labels("act").inc(3)
        counter.labels("open").inc()
        assert counter.labels("act").value == 3
        assert counter.labels("open").value == 1

    def test_bound_children_are_cached(self):
        counter = MetricsRegistry().counter("ops_total", "ops", ("op",))
        assert counter.labels("act") is counter.labels("act")

    def test_negative_increment_raises(self):
        counter = MetricsRegistry().counter("requests_total")
        with pytest.raises(MetricError, match="only go up"):
            counter.inc(-1)

    def test_label_arity_enforced(self):
        counter = MetricsRegistry().counter("ops_total", "ops", ("op",))
        with pytest.raises(MetricError, match="label value"):
            counter.labels()
        with pytest.raises(MetricError, match="label value"):
            counter.labels("a", "b")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.labels().set(5)
        gauge.labels().inc(2)
        gauge.labels().dec()
        assert gauge.value == 6

    def test_set_max_keeps_high_water_mark(self):
        gauge = MetricsRegistry().gauge("peak")
        for value in (3, 9, 4):
            gauge.labels().set_max(value)
        assert gauge.value == 9

    def test_set_function_sampled_at_read(self):
        queue = [1, 2, 3]
        gauge = MetricsRegistry().gauge("depth")
        gauge.set_function(lambda: len(queue))
        assert gauge.value == 3
        queue.pop()
        assert gauge.value == 2

    def test_failing_callback_reads_nan_not_raise(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set_function(lambda: 1 / 0)
        assert math.isnan(gauge.value)
        snapshot = gauge.snapshot()
        assert math.isnan(snapshot["series"][0]["value"])


class TestRegistryGetOrCreate:
    def test_same_name_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", "r", ("op",))
        b = registry.counter("requests_total", "r", ("op",))
        assert a is b

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError, match="already registered as counter"):
            registry.gauge("x")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", labels=("op",))
        with pytest.raises(MetricError, match="labels"):
            registry.counter("x", labels=("code",))

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 2.0, 3.0))
        assert registry.histogram("h", buckets=(1.0, 2.0)) is registry.get("h")

    def test_value_reads_series_or_default(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", labels=("op",))
        counter.labels("act").inc(4)
        assert registry.value("ops_total", "act") == 4
        assert registry.value("ops_total", "never_touched") == 0.0
        assert registry.value("no_such_family", default=-1.0) == -1.0


class TestHistogramEdges:
    """Satellite: boundary values, overflow, and edge validation."""

    def test_boundary_value_lands_in_its_le_bucket(self):
        """Prometheus ``le`` semantics: observe(edge) counts in that
        edge's bucket, not the next one."""
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0, 10.0))
        child = histogram.labels()
        for value in (0.1, 1.0, 10.0):
            child.observe(value)
        assert child._counts == [1, 1, 1, 0]

    def test_below_first_edge_lands_in_first_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        child = histogram.labels()
        child.observe(0.0)
        child.observe(0.05)
        assert child._counts == [2, 0, 0]

    def test_above_last_edge_overflows_to_inf_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        child = histogram.labels()
        child.observe(1.0000001)
        child.observe(math.inf)
        assert child._counts == [0, 0, 2]
        assert child.count == 2

    def test_counts_sum_and_count_agree(self):
        histogram = MetricsRegistry().histogram("h", buckets=DEFAULT_LATENCY_BUCKETS_S)
        child = histogram.labels()
        for value in (0.0001, 0.003, 0.2, 99.0):
            child.observe(value)
        assert sum(child._counts) == child.count == 4
        assert child.sum == pytest.approx(0.0001 + 0.003 + 0.2 + 99.0)

    def test_empty_edges_rejected(self):
        with pytest.raises(MetricError, match="at least one"):
            MetricsRegistry().histogram("h", buckets=())

    def test_unsorted_or_duplicate_edges_rejected(self):
        with pytest.raises(MetricError, match="strictly increasing"):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(MetricError, match="strictly increasing"):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_nonfinite_edges_rejected(self):
        with pytest.raises(MetricError, match="finite"):
            MetricsRegistry().histogram("h", buckets=(1.0, math.inf))


class TestQuantiles:
    def test_empty_is_nan(self):
        assert math.isnan(quantile_from_buckets((1.0,), [0, 0], 0, 0.5))

    def test_interpolates_inside_bucket(self):
        # 10 samples uniform in the (1.0, 2.0] bucket: p50 sits mid-bucket.
        assert quantile_from_buckets((1.0, 2.0), [0, 10, 0], 10, 0.5) == pytest.approx(1.5)

    def test_first_bucket_interpolates_from_zero(self):
        assert quantile_from_buckets((2.0,), [10, 0], 10, 0.5) == pytest.approx(1.0)

    def test_overflow_bucket_reports_last_finite_edge(self):
        assert quantile_from_buckets((1.0, 2.0), [0, 0, 5], 5, 0.99) == 2.0

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(MetricError, match="quantile"):
            quantile_from_buckets((1.0,), [1, 0], 1, 1.5)

    def test_histogram_quantile_shortcut(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        child = histogram.labels()
        for _ in range(10):
            child.observe(1.5)
        assert child.quantile(0.5) == pytest.approx(1.5)


class TestConcurrency:
    """Satellite: exact totals and coherent snapshots under thread churn."""

    THREADS = 8
    PER_THREAD = 2000

    def _hammer(self, work):
        threads = [threading.Thread(target=work) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_increments_are_exact(self):
        counter = MetricsRegistry().counter("ops_total", labels=("op",))
        child = counter.labels("act")
        self._hammer(lambda: [child.inc() for _ in range(self.PER_THREAD)])
        assert child.value == self.THREADS * self.PER_THREAD

    def test_histogram_observations_are_exact(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.5, 1.5))
        child = histogram.labels()
        self._hammer(lambda: [child.observe(1.0) for _ in range(self.PER_THREAD)])
        total = self.THREADS * self.PER_THREAD
        assert child.count == total
        assert child._counts == [0, total, 0]
        assert child.sum == pytest.approx(float(total))

    def test_snapshot_during_increments_is_internally_consistent(self):
        """Every snapshot taken mid-churn must satisfy the histogram
        invariant sum(counts) == count — a torn read would break it."""
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.5, 1.5))
        child = histogram.labels()
        stop = threading.Event()
        bad = []

        def snapshotter():
            while not stop.is_set():
                series = registry.snapshot()["h"]["series"][0]
                if sum(series["counts"]) != series["count"]:
                    bad.append(series)

        reader = threading.Thread(target=snapshotter)
        reader.start()
        self._hammer(lambda: [child.observe(1.0) for _ in range(self.PER_THREAD)])
        stop.set()
        reader.join()
        assert bad == []
        assert child.count == self.THREADS * self.PER_THREAD


class TestSnapshot:
    def test_snapshot_is_json_safe_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "b", ("op",)).labels("x").inc()
        registry.gauge("a_gauge", "a").set(2.0)
        registry.histogram("c_hist", "c", buckets=(1.0,)).observe(0.5)
        first = registry.snapshot()
        second = registry.snapshot()
        assert first == second
        assert json.loads(json.dumps(first)) == first
        assert list(first) == sorted(first)

    def test_series_sorted_by_label_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", labels=("op",))
        counter.labels("zeta").inc()
        counter.labels("alpha").inc()
        labels = [s["labels"]["op"] for s in registry.snapshot()["ops_total"]["series"]]
        assert labels == ["alpha", "zeta"]

"""Exporters: Prometheus text rendering/parsing, HTTP scrape, JSONL CRC."""

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    JSONLMetricsSink,
    MetricsHTTPExporter,
    MetricsRegistry,
    parse_prometheus_text,
    read_metrics_jsonl,
    to_prometheus_text,
)


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests_total", "served requests", ("op",)).labels("act").inc(7)
    registry.gauge("queue_depth", "pending requests").set(3)
    histogram = registry.histogram("latency_seconds", "latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.1, 0.5, 2.0):
        histogram.observe(value)
    return registry


class TestPrometheusText:
    def test_help_and_type_lines(self):
        text = to_prometheus_text(sample_registry().snapshot())
        assert "# HELP requests_total served requests" in text
        assert "# TYPE requests_total counter" in text
        assert "# TYPE queue_depth gauge" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_counter_and_gauge_samples(self):
        text = to_prometheus_text(sample_registry().snapshot())
        assert 'requests_total{op="act"} 7' in text
        assert "queue_depth 3" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = to_prometheus_text(sample_registry().snapshot())
        # 0.05 and 0.1 both land le=0.1 (boundary counts inward).
        assert 'latency_seconds_bucket{le="0.1"} 2' in text
        assert 'latency_seconds_bucket{le="1"} 3' in text
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text
        assert "latency_seconds_count 4" in text
        assert "latency_seconds_sum 2.65" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", "", ("k",)).labels('we"ird\nvalue\\x').inc()
        text = to_prometheus_text(registry.snapshot())
        assert 'c{k="we\\"ird\\nvalue\\\\x"} 1' in text
        parsed = parse_prometheus_text(text)
        assert parsed["c"][0][0] == {"k": 'we"ird\nvalue\\x'}

    def test_nan_and_inf_values_render(self):
        registry = MetricsRegistry()
        registry.gauge("g").set_function(lambda: 1 / 0)  # snapshot reads NaN
        text = to_prometheus_text(registry.snapshot())
        assert "g NaN" in text

    def test_parse_roundtrip(self):
        snapshot = sample_registry().snapshot()
        parsed = parse_prometheus_text(to_prometheus_text(snapshot))
        assert parsed["requests_total"] == [({"op": "act"}, 7.0)]
        assert parsed["queue_depth"] == [({}, 3.0)]
        buckets = {
            labels["le"]: value for labels, value in parsed["latency_seconds_bucket"]
        }
        assert buckets == {"0.1": 2.0, "1": 3.0, "+Inf": 4.0}

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("name not-a-number\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text('name{k=unquoted} 1\n')


class TestHTTPExporter:
    def _get(self, address, path):
        host, port = address
        with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10.0) as r:
            return r.read().decode("utf-8"), r.headers.get("Content-Type", "")

    def test_metrics_endpoint_serves_parseable_exposition(self):
        with MetricsHTTPExporter(sample_registry()) as exporter:
            body, content_type = self._get(exporter.address, "/metrics")
            assert content_type.startswith("text/plain")
            parsed = parse_prometheus_text(body)
            assert parsed["requests_total"] == [({"op": "act"}, 7.0)]

    def test_json_endpoint_matches_snapshot(self):
        registry = sample_registry()
        with MetricsHTTPExporter(registry) as exporter:
            body, content_type = self._get(exporter.address, "/metrics.json")
            assert content_type.startswith("application/json")
            assert json.loads(body) == registry.snapshot()

    def test_healthz_and_unknown_path(self):
        with MetricsHTTPExporter(MetricsRegistry()) as exporter:
            body, _ = self._get(exporter.address, "/healthz")
            assert body == "ok\n"
            with pytest.raises(urllib.error.HTTPError):
                self._get(exporter.address, "/no-such-path")

    def test_scrape_sees_live_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total")
        with MetricsHTTPExporter(registry) as exporter:
            counter.inc()
            body, _ = self._get(exporter.address, "/metrics")
            assert parse_prometheus_text(body)["ticks_total"] == [({}, 1.0)]
            counter.inc(4)
            body, _ = self._get(exporter.address, "/metrics")
            assert parse_prometheus_text(body)["ticks_total"] == [({}, 5.0)]

    def test_close_is_idempotent_and_address_guarded(self):
        exporter = MetricsHTTPExporter(MetricsRegistry())
        with pytest.raises(RuntimeError, match="not started"):
            exporter.address
        exporter.start()
        exporter.close()
        exporter.close()


class TestJSONLSink:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with JSONLMetricsSink(path) as sink:
            sink.append({"iteration": 0, "value": 1.5})
            sink.append({"iteration": 1, "nested": {"a": [1, 2]}})
        records = read_metrics_jsonl(path, strict=True)
        assert records == [
            {"iteration": 0, "value": 1.5},
            {"iteration": 1, "nested": {"a": [1, 2]}},
        ]

    def test_crc_field_is_reserved(self, tmp_path):
        with JSONLMetricsSink(tmp_path / "m.jsonl") as sink:
            with pytest.raises(ValueError, match="reserved"):
                sink.append({"crc32": 7})

    def test_append_after_close_raises(self, tmp_path):
        sink = JSONLMetricsSink(tmp_path / "m.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.append({"x": 1})

    def test_reopen_appends_not_truncates(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with JSONLMetricsSink(path) as sink:
            sink.append({"run": 1})
        with JSONLMetricsSink(path) as sink:
            sink.append({"run": 2})
        assert [r["run"] for r in read_metrics_jsonl(path)] == [1, 2]

    def test_torn_tail_skipped_leniently_raised_strictly(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with JSONLMetricsSink(path) as sink:
            sink.append({"iteration": 0})
            sink.append({"iteration": 1})
        # Crash mid-write: chop the final line in half.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 9])
        records = read_metrics_jsonl(path)
        assert records == [{"iteration": 0}]
        with pytest.raises(ValueError, match="invalid metrics line"):
            read_metrics_jsonl(path, strict=True)

    def test_bit_flip_detected_by_crc(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with JSONLMetricsSink(path) as sink:
            sink.append({"value": 100})
        corrupted = path.read_text().replace("100", "999")
        path.write_text(corrupted)
        assert read_metrics_jsonl(path) == []
        with pytest.raises(ValueError, match="crc mismatch"):
            read_metrics_jsonl(path, strict=True)

    def test_snapshot_payload_survives_roundtrip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        registry = sample_registry()
        with JSONLMetricsSink(path) as sink:
            sink.append({"iteration": 0, "metrics": registry.snapshot()})
        (record,) = read_metrics_jsonl(path, strict=True)
        assert record["metrics"] == registry.snapshot()

    def test_nan_gauge_is_not_json_serializable_excluded(self, tmp_path):
        """Registry snapshots with NaN gauge reads still frame: json
        emits NaN tokens, and the reader accepts them back."""
        registry = MetricsRegistry()
        registry.gauge("g").set_function(lambda: 1 / 0)
        with JSONLMetricsSink(tmp_path / "m.jsonl") as sink:
            sink.append({"metrics": registry.snapshot()})
        (record,) = read_metrics_jsonl(tmp_path / "m.jsonl", strict=True)
        assert math.isnan(record["metrics"]["g"]["series"][0]["value"])

"""The span recorder, and trace-id propagation through a live gateway.

The propagation contract: a trace id enters at the gateway (minted
there, or pinned by the client in the ``act`` message), rides the
request into the replica's microbatch queue, and comes back in the
reply — so the gateway's end-to-end ``gateway.act`` span and the
replica's ``serve.queue_wait``/``serve.compute`` spans all share one id.
"""

import threading

import numpy as np

from repro.obs import Tracer
from repro.serve import GatewayClient

from ..serve.helpers import STATE_DIM
from ..serve.test_gateway import make_gateway, wait_until


class TestTracer:
    def test_trace_ids_are_unique_and_monotone(self):
        tracer = Tracer()
        ids = [tracer.new_trace_id() for _ in range(100)]
        assert len(set(ids)) == 100
        # One shared prefix, a monotonically increasing counter suffix.
        prefixes = {tid.rsplit("-", 1)[0] for tid in ids}
        assert len(prefixes) == 1
        counters = [int(tid.rsplit("-", 1)[1], 16) for tid in ids]
        assert counters == sorted(counters)

    def test_ids_differ_across_tracers(self):
        assert Tracer().new_trace_id() != Tracer().new_trace_id()

    def test_record_and_filtered_lookup(self):
        tracer = Tracer()
        tracer.record("a", "t1", 0.0, 0.5, replica="r0")
        tracer.record("b", "t1", 0.5, 0.1)
        tracer.record("a", "t2", 1.0, 0.2)
        assert len(tracer.spans()) == 3
        assert [s.name for s in tracer.spans(trace_id="t1")] == ["a", "b"]
        assert [s.trace_id for s in tracer.spans(name="a")] == ["t1", "t2"]
        assert tracer.spans(trace_id="t1", name="a")[0].tags == {"replica": "r0"}

    def test_span_context_manager_times_the_block(self):
        tracer = Tracer()
        with tracer.span("phase", tag="x") as tid:
            pass
        (span,) = tracer.spans()
        assert span.trace_id == tid
        assert span.name == "phase"
        assert span.duration_s >= 0.0
        assert span.tags == {"tag": "x"}

    def test_capacity_bound_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.record("s", f"t{index}", 0.0, 0.0)
        assert tracer.stats() == {"recorded": 5, "retained": 3, "dropped": 2}
        assert [s.trace_id for s in tracer.spans()] == ["t2", "t3", "t4"]

    def test_concurrent_ids_stay_unique(self):
        tracer = Tracer()
        out = [None] * 8

        def mint(index):
            out[index] = [tracer.new_trace_id() for _ in range(500)]

        threads = [
            threading.Thread(target=mint, args=(i,)) for i in range(len(out))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        flat = [tid for per in out for tid in per]
        assert len(set(flat)) == len(flat)

    def test_clear_keeps_recorded_total(self):
        tracer = Tracer()
        tracer.record("s", "t", 0.0, 0.0)
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.stats()["recorded"] == 1


class TestEndToEndPropagation:
    """One trace id links gateway span to replica queue/compute spans."""

    def _act(self, client, trace=None):
        session = client.open_session(num_users=1)
        result = session.act(np.zeros((1, STATE_DIM)), trace=trace)
        session.end()
        return session, result

    def test_gateway_minted_id_reaches_replica_spans(self):
        gateway, server = make_gateway()
        with gateway:
            with GatewayClient(gateway.address) as client:
                session, _ = self._act(client)
            trace = session.last_trace
            assert trace  # the reply carries the gateway-minted id
            # The replica records its spans as the batch retires; the act
            # reply can race ahead of that by a scheduling quantum.
            assert wait_until(
                lambda: len(gateway.tracer.spans(trace_id=trace)) >= 3
            )
            spans = {s.name: s for s in gateway.tracer.spans(trace_id=trace)}
            assert set(spans) == {"gateway.act", "serve.queue_wait", "serve.compute"}
            assert spans["gateway.act"].tags["session"] == session.id
            assert spans["gateway.act"].tags["replica"] == server.name
            assert spans["serve.queue_wait"].tags["replica"] == server.name
            assert spans["serve.compute"].tags["session"] == session.id
            assert spans["serve.compute"].tags["batch_rows"] >= 1

    def test_client_pinned_id_is_honoured(self):
        gateway, _ = make_gateway()
        with gateway:
            with GatewayClient(gateway.address) as client:
                session, _ = self._act(client, trace="my-trace-0042")
            assert session.last_trace == "my-trace-0042"
            assert wait_until(
                lambda: len(gateway.tracer.spans(trace_id="my-trace-0042")) >= 3
            )

    def test_each_request_gets_its_own_id(self):
        gateway, _ = make_gateway()
        with gateway:
            with GatewayClient(gateway.address) as client:
                session = client.open_session(num_users=1)
                traces = []
                for _ in range(3):
                    session.act(np.zeros((1, STATE_DIM)))
                    traces.append(session.last_trace)
                session.end()
            assert len(set(traces)) == 3

    def test_server_and_gateway_share_one_tracer(self):
        gateway, server = make_gateway()
        with gateway:
            assert server.tracer is gateway.tracer

    def test_timeout_reply_carries_the_trace_id(self):
        """A typed TIMEOUT still reports which trace died."""
        gateway, _ = make_gateway(
            serve_overrides={"max_wait_ms": 60_000.0, "max_batch_size": 64}
        )
        with gateway:
            with GatewayClient(gateway.address) as client:
                session = client.open_session(num_users=1)
                reply = gateway._op_act(
                    {
                        "session": session.id,
                        "obs": np.zeros((1, STATE_DIM)),
                        "deadline_ms": 1.0,
                        "trace": "doomed-trace",
                    }
                )
                assert reply["ok"] is False and reply["error"] == "TIMEOUT"
                assert reply["trace"] == "doomed-trace"

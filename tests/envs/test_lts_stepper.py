"""Native block-diagonal LTS stepper: seeded equivalence with per-env stepping.

The contract under test (see :meth:`repro.envs.lts.LTSEnv.make_batch_stepper`):
a :class:`VecEnvPool` of homogeneous :class:`LTSEnv` members steps through
one stacked ``_LTSBatchStepper`` call per timestep and remains
*bit-identical* to looping ``collect_segment`` env by env — the same
guarantee the DPR stepper provides, closing the LTS side of the
``make_batch_stepper`` protocol.
"""

import numpy as np

from repro.envs import LTSConfig, LTSEnv
from repro.rl import RecurrentActorCritic, VecEnvPool, collect_segment, collect_segments_vec

SEGMENT_FIELDS = (
    "states",
    "prev_actions",
    "actions",
    "rewards",
    "dones",
    "values",
    "log_probs",
    "last_values",
)


def make_envs(num_envs=4, num_users=8, horizon=7, seed0=100, **overrides):
    envs = []
    for g in range(num_envs):
        config = LTSConfig(
            num_users=num_users,
            horizon=horizon,
            omega_g=2.0 * g - 3.0,       # heterogeneous group parameters
            omega_u_range=2.0,            # per-user gaps
            sigma_c=1.0 + 0.2 * g,        # heterogeneous noise scales
            seed=seed0 + g,
            **overrides,
        )
        envs.append(LTSEnv(config))
    return envs


def make_policy(seed=2):
    return RecurrentActorCritic(2, 1, np.random.default_rng(seed), lstm_hidden=16, head_hidden=(32,))


def assert_segments_identical(seq, vec):
    assert len(seq) == len(vec)
    for s, v in zip(seq, vec):
        for name in SEGMENT_FIELDS:
            np.testing.assert_array_equal(getattr(s, name), getattr(v, name), err_msg=name)


class TestLTSBatchStepper:
    def test_stepper_engaged_for_homogeneous_pool(self):
        pool = VecEnvPool(make_envs())
        assert pool._batch_stepper is not None

    def test_not_engaged_for_single_env(self):
        assert LTSEnv.make_batch_stepper(make_envs(num_envs=1), [slice(0, 8)]) is None

    def test_not_engaged_for_mixed_horizons(self):
        envs = make_envs()
        envs[1].horizon = 3
        assert VecEnvPool(envs)._batch_stepper is None

    def test_not_engaged_for_subclasses(self):
        class TweakedLTSEnv(LTSEnv):
            pass

        envs = make_envs(num_envs=2)
        envs.append(TweakedLTSEnv(LTSConfig(num_users=8, horizon=7, seed=9)))
        assert VecEnvPool(envs)._batch_stepper is None

    def test_rollouts_bit_identical_to_sequential(self):
        policy = make_policy()
        seq = [
            collect_segment(env, policy, np.random.default_rng(90 + i), extras_from_info=("sat",))
            for i, env in enumerate(make_envs())
        ]
        pool = VecEnvPool(make_envs())
        assert pool._batch_stepper is not None
        vec = collect_segments_vec(
            pool,
            policy,
            [np.random.default_rng(90 + i) for i in range(4)],
            extras_from_info=("sat",),
        )
        assert_segments_identical(seq, vec)
        for s, v in zip(seq, vec):
            np.testing.assert_array_equal(s.extras["sat"], v.extras["sat"], err_msg="sat")

    def test_truncated_rollouts_bit_identical(self):
        policy = make_policy(seed=5)
        seq = [
            collect_segment(env, policy, np.random.default_rng(30 + i), max_steps=3)
            for i, env in enumerate(make_envs())
        ]
        vec = collect_segments_vec(
            make_envs(),
            policy,
            [np.random.default_rng(30 + i) for i in range(4)],
            max_steps=3,
        )
        assert all(s.horizon == 3 for s in vec)
        assert_segments_identical(seq, vec)

    def test_multi_episode_rng_continuity(self):
        """Back-to-back episodes on the same pool keep every env stream
        aligned with the sequential path (the stepper never writes back
        episode state but does advance the env RNGs)."""
        policy = make_policy(seed=3)
        envs_seq = make_envs(seed0=200)
        envs_vec = make_envs(seed0=200)
        pool = VecEnvPool(envs_vec)
        rngs_seq = [np.random.default_rng(40 + i) for i in range(4)]
        rngs_vec = [np.random.default_rng(40 + i) for i in range(4)]
        for _ in range(2):
            seq = [collect_segment(e, policy, r) for e, r in zip(envs_seq, rngs_seq)]
            vec = collect_segments_vec(pool, policy, rngs_vec)
            assert_segments_identical(seq, vec)

    def test_resample_user_gaps_honoured_between_episodes(self):
        """reset() re-reads per-user parameters, so the Fig. 7
        unlimited-user resampling changes the pooled dynamics exactly as
        it changes the sequential ones."""
        policy = make_policy(seed=4)
        envs_seq = make_envs(seed0=300)
        envs_vec = make_envs(seed0=300)
        pool = VecEnvPool(envs_vec)
        # Episode 1 on both paths (keeps every env RNG stream aligned) …
        for i, env in enumerate(envs_seq):
            collect_segment(env, policy, np.random.default_rng(50 + i))
        collect_segments_vec(pool, policy, [np.random.default_rng(50 + i) for i in range(4)])
        # … then redraw the per-user gaps on both env sets.
        for env in envs_seq:
            env.resample_user_gaps()
        for env in envs_vec:
            env.resample_user_gaps()
        seq = [
            collect_segment(env, policy, np.random.default_rng(60 + i))
            for i, env in enumerate(envs_seq)
        ]
        vec = collect_segments_vec(
            pool, policy, [np.random.default_rng(60 + i) for i in range(4)]
        )
        assert_segments_identical(seq, vec)

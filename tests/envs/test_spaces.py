"""Tests for Box / Discrete spaces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import Box, Discrete


class TestBox:
    def test_contains(self):
        box = Box(low=np.zeros(2), high=np.ones(2))
        assert box.contains(np.array([0.5, 0.5]))
        assert not box.contains(np.array([1.5, 0.5]))
        assert not box.contains(np.array([0.5]))

    def test_clip(self):
        box = Box(low=np.zeros(2), high=np.ones(2))
        np.testing.assert_array_equal(box.clip([2.0, -1.0]), [1.0, 0.0])

    def test_sample_inside(self):
        box = Box(low=np.array([-2.0, 0.0]), high=np.array([2.0, 5.0]))
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert box.contains(box.sample(rng))

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Box(low=np.ones(2), high=np.zeros(2))

    def test_shape_broadcast(self):
        box = Box(low=0.0, high=1.0, shape=(3,))
        assert box.shape == (3,)
        assert box.dim == 3

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            Box(low=np.zeros(2), high=np.ones(3))

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_dim_matches_shape(self, n):
        box = Box(low=0.0, high=1.0, shape=(n,))
        assert box.dim == n


class TestDiscrete:
    def test_contains(self):
        space = Discrete(4)
        assert space.contains(0)
        assert space.contains(3)
        assert not space.contains(4)
        assert not space.contains(-1)

    def test_sample_range(self):
        space = Discrete(3)
        rng = np.random.default_rng(0)
        samples = {space.sample(rng) for _ in range(100)}
        assert samples == {0, 1, 2}

    def test_invalid_n_raises(self):
        with pytest.raises(ValueError):
            Discrete(0)

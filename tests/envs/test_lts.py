"""Tests for the LTS (Choc/Kale) environment dynamics and task sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import (
    LTSConfig,
    LTSEnv,
    MU_C_REAL,
    MU_K_REAL,
    admissible_omega_g,
    make_lts_task,
    oracle_constant_policy_return,
)
from repro.rl import evaluate


def make_env(**kwargs) -> LTSEnv:
    defaults = dict(num_users=20, horizon=30, seed=0)
    defaults.update(kwargs)
    return LTSEnv(LTSConfig(**defaults))


class TestDynamics:
    def test_reset_state_shape(self):
        env = make_env()
        states = env.reset()
        assert states.shape == (20, 2)

    def test_initial_sat_is_half(self):
        # NPE starts at 0 so SAT = sigmoid(0) = 0.5 for every user.
        env = make_env()
        states = env.reset()
        np.testing.assert_allclose(states[:, 0], 0.5)

    def test_sat_bounded(self):
        env = make_env()
        env.reset()
        rng = np.random.default_rng(1)
        for _ in range(30):
            states, _, _, _ = env.step(rng.random((20, 1)))
            assert np.all((states[:, 0] > 0) & (states[:, 0] < 1))

    def test_npe_recursion(self):
        env = make_env(num_users=3)
        env.reset()
        actions = np.array([[1.0], [0.0], [0.5]])
        _, _, _, info = env.step(actions)
        # NPE_1 = γ_n * 0 - 2 (a - 0.5)
        expected = -2.0 * (actions[:, 0] - 0.5)
        np.testing.assert_allclose(info["npe"], expected)

    def test_sat_matches_sigmoid_of_npe(self):
        env = make_env(num_users=5)
        env.reset()
        _, _, _, info = env.step(np.full((5, 1), 0.8))
        expected_sat = 1.0 / (1.0 + np.exp(-env.sensitivity * info["npe"]))
        np.testing.assert_allclose(info["sat"], expected_sat)

    def test_clickbait_erodes_satisfaction(self):
        env = make_env(num_users=10, horizon=50)
        env.reset()
        for _ in range(50):
            _, _, _, info = env.step(np.ones((10, 1)))
        assert np.all(info["sat"] < 0.5)

    def test_kale_builds_satisfaction(self):
        env = make_env(num_users=10, horizon=50)
        env.reset()
        for _ in range(50):
            _, _, _, info = env.step(np.zeros((10, 1)))
        assert np.all(info["sat"] > 0.5)

    def test_engagement_mean_formula(self):
        env = make_env(num_users=4)
        env.reset()
        a = np.array([[0.3], [0.7], [0.0], [1.0]])
        _, _, _, info = env.step(a)
        expected = (a[:, 0] * env.mu_c + (1 - a[:, 0]) * env.mu_k_users) * 0.5
        np.testing.assert_allclose(info["engagement_mean"], expected)

    def test_rewards_scatter_around_mean(self):
        env = make_env(num_users=5000, horizon=5)
        env.reset()
        _, rewards, _, info = env.step(np.full((5000, 1), 0.5))
        np.testing.assert_allclose(rewards.mean(), info["engagement_mean"].mean(), atol=0.1)

    def test_done_at_horizon(self):
        env = make_env(horizon=3)
        env.reset()
        for t in range(3):
            _, _, dones, _ = env.step(np.full((20, 1), 0.5))
        assert np.all(dones)

    def test_not_done_before_horizon(self):
        env = make_env(horizon=5)
        env.reset()
        _, _, dones, _ = env.step(np.full((20, 1), 0.5))
        assert not np.any(dones)

    def test_actions_clipped(self):
        env = make_env(num_users=2)
        env.reset()
        _, _, _, info = env.step(np.array([[5.0], [-5.0]]))
        np.testing.assert_allclose(info["npe"], [-1.0, 1.0])

    def test_wrong_action_shape_raises(self):
        env = make_env()
        env.reset()
        with pytest.raises(ValueError):
            env.step(np.zeros((3, 1)))

    def test_observation_noise_centered_on_mu_c(self):
        env = make_env(num_users=5000, omega_g=3.0)
        states = env.reset()
        np.testing.assert_allclose(states[:, 1].mean(), MU_C_REAL + 3.0, atol=0.1)
        np.testing.assert_allclose(states[:, 1].std(), 2.0, atol=0.1)

    def test_seed_reproducibility(self):
        env1, env2 = make_env(seed=42), make_env(seed=42)
        s1, s2 = env1.reset(), env2.reset()
        np.testing.assert_array_equal(s1, s2)
        a = np.full((20, 1), 0.3)
        r1 = env1.step(a)[1]
        r2 = env2.step(a)[1]
        np.testing.assert_array_equal(r1, r2)


class TestOmegaParameterisation:
    def test_omega_g_shifts_group_mean(self):
        env = make_env(omega_g=5.0)
        assert env.mu_c == MU_C_REAL + 5.0

    def test_omega_u_shifts_user_mean(self):
        env = make_env(omega_u=2.0)
        np.testing.assert_allclose(env.mu_k_users, MU_K_REAL + 2.0)

    def test_omega_u_range_draws_per_user(self):
        env = make_env(num_users=500, omega_u_range=3.0)
        gaps = env.mu_k_users - MU_K_REAL
        assert np.all(np.abs(gaps) <= 3.0)
        assert gaps.std() > 0.5  # actually spread out

    def test_resample_user_gaps_changes_draws(self):
        env = make_env(num_users=100, omega_u_range=3.0)
        before = env.mu_k_users.copy()
        env.resample_user_gaps()
        assert not np.allclose(before, env.mu_k_users)

    def test_resample_noop_without_range(self):
        env = make_env(num_users=10)
        before = env.mu_k_users.copy()
        env.resample_user_gaps()
        np.testing.assert_array_equal(before, env.mu_k_users)


class TestOracle:
    def test_oracle_matches_rollout(self):
        env = make_env(num_users=2000, horizon=20)
        oracle = oracle_constant_policy_return(env, 0.5)
        measured = evaluate(lambda s, t: np.full((2000, 1), 0.5), env, episodes=2)
        np.testing.assert_allclose(measured, oracle, rtol=0.02)

    def test_optimal_action_increases_with_mu_c(self):
        """Richer groups (higher μ_c) reward more clickbait — the structure
        the context-aware policy must discover."""
        grid = np.linspace(0, 1, 21)
        best_actions = []
        for omega_g in [-8.0, 0.0, 7.0]:
            env = make_env(num_users=100, horizon=140, omega_g=omega_g)
            returns = [oracle_constant_policy_return(env, a) for a in grid]
            best_actions.append(grid[int(np.argmax(returns))])
        assert best_actions[0] < best_actions[1] <= best_actions[2] + 1e-9
        assert best_actions[0] < best_actions[2]

    def test_wrong_group_policy_is_costly(self):
        env = make_env(num_users=100, horizon=140, omega_g=0.0)
        grid = np.linspace(0, 1, 21)
        returns = [oracle_constant_policy_return(env, a) for a in grid]
        best = max(returns)
        poor_group_action = 0.0  # optimal for μ_c = 6, wrong here
        assert oracle_constant_policy_return(env, poor_group_action) < 0.75 * best


class TestTasks:
    def test_admissible_omega_g_lts1(self):
        values = admissible_omega_g(2)
        assert all(abs(v) >= 2 for v in values)
        assert all(6 <= MU_C_REAL + v < 22 for v in values)
        assert -8 in values and 7 in values and 0 not in values and 1 not in values

    def test_gap_levels_nested(self):
        lts1 = set(admissible_omega_g(2))
        lts2 = set(admissible_omega_g(3))
        lts3 = set(admissible_omega_g(4))
        assert lts3 < lts2 < lts1

    def test_make_task_names(self):
        assert make_lts_task("LTS1").name == "LTS1"
        assert make_lts_task("LTS3", beta=2.0).name == "LTS3-beta2"

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError):
            make_lts_task("LTS9")

    def test_beta_only_for_lts3(self):
        with pytest.raises(ValueError):
            make_lts_task("LTS1", beta=1.0)

    def test_target_env_is_real_world(self):
        task = make_lts_task("LTS2", num_users=10, horizon=5)
        target = task.make_target_env()
        assert target.mu_c == MU_C_REAL
        np.testing.assert_allclose(target.mu_k_users, MU_K_REAL)

    def test_train_envs_respect_gap(self):
        task = make_lts_task("LTS3", num_users=5, horizon=5)
        for env in task.make_train_envs():
            assert abs(env.mu_c - MU_C_REAL) >= 4

    def test_train_envs_deterministic_per_index(self):
        task = make_lts_task("LTS1", num_users=5, horizon=5)
        env_a = task.make_train_env(3)
        env_b = task.make_train_env(3)
        np.testing.assert_array_equal(env_a.reset(), env_b.reset())

    def test_beta_task_has_user_gaps(self):
        task = make_lts_task("LTS3", beta=4.0, num_users=200, horizon=5)
        env = task.make_train_env(0)
        assert np.abs(env.mu_k_users - MU_K_REAL).max() > 1.0

    @given(st.sampled_from(["LTS1", "LTS2", "LTS3"]))
    @settings(max_examples=9, deadline=None)
    def test_simulator_count_positive(self, name):
        task = make_lts_task(name, num_users=2, horizon=2)
        assert task.num_simulators > 0

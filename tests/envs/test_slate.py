"""SlateRec world: choice model, churn dynamics, and the native stepper.

Covers the family contract every env needs to ride the rollout stack:
shape/space conformance, validated construction, pickling (worker
shipping), and the ``make_batch_stepper`` bit-identity with sequential
per-env stepping — plus the slate-specific behaviour: MNL choice
probabilities, interest/boredom evolution, and churn as the long-term
engagement signal.
"""

import pickle

import numpy as np

from repro.envs import SlateConfig, SlateRecEnv
from repro.rl import (
    MLPActorCritic,
    VecEnvPool,
    collect_segment,
    collect_segments_vec,
)
from repro.rl.parity import assert_segments_identical


def make_env(**overrides):
    defaults = dict(num_users=12, horizon=10, slate_size=4, seed=7)
    defaults.update(overrides)
    return SlateRecEnv(SlateConfig(**defaults))


def make_envs(num_envs=4, num_users=8, horizon=7, slate_size=3, seed0=100, **overrides):
    envs = []
    for g in range(num_envs):
        config = SlateConfig(
            num_users=num_users,
            horizon=horizon,
            slate_size=slate_size,
            omega_g=2.0 * g - 3.0,        # heterogeneous group parameters
            omega_u_range=2.0,             # per-user gaps
            temperature=0.4 + 0.1 * g,     # heterogeneous choice models
            seed=seed0 + g,
            **overrides,
        )
        envs.append(SlateRecEnv(config))
    return envs


def make_policy(slate_size=3, seed=2):
    return MLPActorCritic(4, slate_size, np.random.default_rng(seed), hidden_sizes=(16,))


def constant_slate(env, spread=True):
    k = env.config.slate_size
    if spread:
        return np.tile(np.linspace(0.1, 0.9, k), (env.num_users, 1))
    return np.full((env.num_users, k), 0.95)


class TestSlateRecEnv:
    def test_spaces_and_shapes(self):
        env = make_env()
        assert env.observation_dim == SlateRecEnv.STATE_DIM
        assert env.action_dim == env.config.slate_size == 4
        states = env.reset()
        assert states.shape == (12, 4)
        next_states, rewards, dones, info = env.step(constant_slate(env))
        assert next_states.shape == (12, 4)
        assert rewards.shape == (12,)
        assert not dones.any()
        assert info["sat"].shape == (12,)
        assert set(info) >= {"engagement_mean", "sat", "boredom", "active", "clicked"}

    def test_episode_terminates_at_horizon(self):
        env = make_env(horizon=5)
        env.reset()
        for t in range(5):
            _, _, dones, _ = env.step(constant_slate(env))
        assert dones.all()

    def test_validation_rejects_empty_population(self):
        for field in ("num_users", "horizon", "slate_size"):
            try:
                SlateRecEnv(SlateConfig(**{field: 0}))
            except ValueError as error:
                assert field in str(error)
            else:
                raise AssertionError(f"{field}=0 should raise ValueError")

    def test_choice_probabilities_normalised(self):
        env = make_env()
        env.reset()
        probs = env.choice_probabilities(constant_slate(env))
        assert probs.shape == (12, env.config.slate_size + 1)
        assert (probs >= 0).all()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_interest_drifts_toward_consumed_content(self):
        env = make_env(seed=3, churn_base=0.0, num_users=200, interest_lr=0.2)
        env.reset()
        before = np.abs(env._interest - 0.9).mean()
        for _ in range(10):
            env.step(np.full((env.num_users, env.config.slate_size), 0.9))
        after = np.abs(env._interest - 0.9).mean()
        assert after < before  # clicked users moved toward the content

    def test_boredom_builds_on_repetition(self):
        env = make_env(seed=4, churn_base=0.0, num_users=200)
        env.reset()
        for _ in range(8):
            env.step(np.full((env.num_users, env.config.slate_size), 0.5))
        assert env._boredom.mean() > 0.1

    def test_clickbait_erodes_satisfaction_and_churns_users(self):
        """The long-term engagement structure: pure-Choc slates buy
        clicks but drop SAT and lose users; Kale-leaning slates keep
        satisfaction (and hence the population) up."""
        choc = make_env(seed=5, num_users=300, horizon=40)
        kale = make_env(seed=5, num_users=300, horizon=40)
        choc.reset()
        kale.reset()
        for _ in range(40):
            choc.step(np.full((300, 4), 1.0))
            kale.step(np.full((300, 4), 0.15))
        assert choc._sat.mean() < kale._sat.mean()
        assert choc._active.mean() < kale._active.mean()
        assert kale._active.mean() > 0.5

    def test_churned_users_earn_nothing_and_can_return(self):
        env = make_env(seed=6, num_users=400, horizon=60, churn_base=0.5, return_prob=0.3)
        env.reset()
        returned = False
        prev_active = env._active.copy()
        for _ in range(60):
            _, rewards, _, info = env.step(constant_slate(env, spread=False))
            inactive = prev_active <= 0.0
            assert np.all(rewards[inactive] == 0.0)
            returned = returned or bool((info["active"][inactive] > 0).any())
            prev_active = info["active"].copy()
        assert returned  # the return path actually fires

    def test_resample_user_gaps_redraws_mu_kale(self):
        env = make_env(omega_u_range=3.0)
        before = env.mu_kale_users.copy()
        env.resample_user_gaps()
        assert not np.array_equal(before, env.mu_kale_users)

    def test_env_pickles(self):
        env = make_env()
        env.reset()
        env.step(constant_slate(env))
        clone = pickle.loads(pickle.dumps(env))
        actions = constant_slate(env)
        states_a, rewards_a, _, _ = env.step(actions)
        states_b, rewards_b, _, _ = clone.step(actions)
        np.testing.assert_array_equal(states_a, states_b)
        np.testing.assert_array_equal(rewards_a, rewards_b)


class TestSlateBatchStepper:
    def test_stepper_engaged_for_homogeneous_pool(self):
        pool = VecEnvPool(make_envs())
        assert pool._batch_stepper is not None

    def test_not_engaged_for_single_env_or_mixed_shapes(self):
        assert SlateRecEnv.make_batch_stepper(make_envs(num_envs=1), [slice(0, 8)]) is None
        mixed_horizon = make_envs()
        mixed_horizon[1].horizon = 3
        assert VecEnvPool(mixed_horizon)._batch_stepper is None

    def test_not_engaged_for_subclasses(self):
        class TweakedSlateEnv(SlateRecEnv):
            pass

        envs = make_envs(num_envs=2)
        envs.append(TweakedSlateEnv(SlateConfig(num_users=8, horizon=7, slate_size=3, seed=9)))
        assert VecEnvPool(envs)._batch_stepper is None

    def test_rollouts_bit_identical_to_sequential(self):
        policy = make_policy()
        seq = [
            collect_segment(env, policy, np.random.default_rng(90 + i), extras_from_info=("sat", "active"))
            for i, env in enumerate(make_envs())
        ]
        pool = VecEnvPool(make_envs())
        assert pool._batch_stepper is not None
        vec = collect_segments_vec(
            pool,
            policy,
            [np.random.default_rng(90 + i) for i in range(4)],
            extras_from_info=("sat", "active"),
        )
        assert_segments_identical(seq, vec, label="slate-stepper")

    def test_truncated_rollouts_bit_identical(self):
        policy = make_policy(seed=5)
        seq = [
            collect_segment(env, policy, np.random.default_rng(30 + i), max_steps=3)
            for i, env in enumerate(make_envs())
        ]
        vec = collect_segments_vec(
            make_envs(),
            policy,
            [np.random.default_rng(30 + i) for i in range(4)],
            max_steps=3,
        )
        assert all(s.horizon == 3 for s in vec)
        assert_segments_identical(seq, vec, label="slate-truncated")

    def test_multi_episode_rng_continuity(self):
        policy = make_policy(seed=3)
        envs_seq = make_envs(seed0=200)
        pool = VecEnvPool(make_envs(seed0=200))
        rngs_seq = [np.random.default_rng(40 + i) for i in range(4)]
        rngs_vec = [np.random.default_rng(40 + i) for i in range(4)]
        for _ in range(2):
            seq = [collect_segment(e, policy, r) for e, r in zip(envs_seq, rngs_seq)]
            vec = collect_segments_vec(pool, policy, rngs_vec)
            assert_segments_identical(seq, vec, label="slate-continuity")

    def test_resample_user_gaps_honoured_between_episodes(self):
        policy = make_policy(seed=4)
        envs_seq = make_envs(seed0=300)
        envs_vec = make_envs(seed0=300)
        pool = VecEnvPool(envs_vec)
        for i, env in enumerate(envs_seq):
            collect_segment(env, policy, np.random.default_rng(50 + i))
        collect_segments_vec(pool, policy, [np.random.default_rng(50 + i) for i in range(4)])
        for env in envs_seq:
            env.resample_user_gaps()
        for env in envs_vec:
            env.resample_user_gaps()
        seq = [
            collect_segment(env, policy, np.random.default_rng(60 + i))
            for i, env in enumerate(envs_seq)
        ]
        vec = collect_segments_vec(
            pool, policy, [np.random.default_rng(60 + i) for i in range(4)]
        )
        assert_segments_identical(seq, vec, label="slate-resample")

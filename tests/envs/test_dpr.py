"""Tests for the DPR world: featurizer, ground-truth dynamics, logging."""

import numpy as np

from repro.envs import (
    BehaviorPolicy,
    BehaviorPolicyConfig,
    COST_RATE,
    DPRConfig,
    DPRFeaturizer,
    DPRWorld,
    HISTORY_DAYS,
    collect_dpr_dataset,
)


def make_world(**kwargs) -> DPRWorld:
    defaults = dict(num_cities=3, drivers_per_city=12, horizon=8, seed=7)
    defaults.update(kwargs)
    return DPRWorld(DPRConfig(**defaults))


class TestFeaturizer:
    def test_state_dim(self):
        featurizer = DPRFeaturizer()
        assert featurizer.state_dim == 13

    def test_slices_partition_state(self):
        featurizer = DPRFeaturizer()
        covered = []
        for sl in featurizer.slices.values():
            covered.extend(range(sl.start, sl.stop))
        assert sorted(covered) == list(range(featurizer.state_dim))

    def test_time_features_weekly_period(self):
        featurizer = DPRFeaturizer()
        np.testing.assert_allclose(featurizer.time_features(0), featurizer.time_features(7))
        assert not np.allclose(featurizer.time_features(1), featurizer.time_features(2))

    def test_build_states_shapes_and_stats(self):
        featurizer = DPRFeaturizer()
        n = 4
        history = np.tile(np.arange(1.0, HISTORY_DAYS + 1.0), (n, 1))
        states = featurizer.build_states(
            user_static=np.zeros((n, 4)),
            group_static=np.array([1.0, 2.0]),
            t=0,
            order_history=history,
            last_feedback=np.zeros((n, 3)),
        )
        assert states.shape == (n, 13)
        stat = states[:, featurizer.slices["stat"]]
        np.testing.assert_allclose(stat[:, 0], history[:, -7:].mean(axis=1))
        np.testing.assert_allclose(stat[:, 1], history.mean(axis=1))


class TestWorldGeneration:
    def test_city_count(self):
        world = make_world()
        assert len(world.cities) == 3
        assert all(len(p) == 12 for p in world.personas)

    def test_demand_scales_spread(self):
        world = make_world(num_cities=5)
        scales = [c.demand_scale for c in world.cities]
        assert scales == sorted(scales)
        assert scales[-1] / scales[0] > 4.0

    def test_personas_heterogeneous(self):
        world = make_world(drivers_per_city=50)
        tolerances = [p.tolerance for p in world.personas[0]]
        assert np.std(tolerances) > 0.05

    def test_world_reproducible(self):
        w1, w2 = make_world(seed=3), make_world(seed=3)
        assert w1.cities[0].demand_scale == w2.cities[0].demand_scale
        assert w1.personas[1][0].tolerance == w2.personas[1][0].tolerance


class TestCityEnvDynamics:
    def test_reset_shapes(self):
        env = make_world().make_city_env(0)
        states = env.reset()
        assert states.shape == (12, 13)

    def test_step_shapes(self):
        env = make_world().make_city_env(0)
        env.reset()
        states, rewards, dones, info = env.step(np.full((12, 2), 0.4))
        assert states.shape == (12, 13)
        assert rewards.shape == (12,)
        assert "orders" in info and "cost" in info

    def test_reward_is_orders_minus_cost(self):
        env = make_world().make_city_env(1)
        env.reset()
        actions = np.full((12, 2), 0.5)
        _, rewards, _, info = env.step(actions)
        np.testing.assert_allclose(rewards, info["orders"] - env.config.alpha1 * info["cost"])

    def test_cost_formula(self):
        env = make_world().make_city_env(1)
        env.reset()
        actions = np.column_stack([np.full(12, 0.5), np.full(12, 0.8)])
        _, _, _, info = env.step(actions)
        np.testing.assert_allclose(info["cost"], COST_RATE * 0.8 * info["orders"])

    def test_orders_nonnegative(self):
        env = make_world().make_city_env(0)
        env.reset()
        rng = np.random.default_rng(0)
        for _ in range(8):
            _, _, _, info = env.step(rng.random((12, 2)))
            assert np.all(info["orders"] >= 0)

    def test_engagement_bounded(self):
        env = make_world().make_city_env(0)
        env.reset()
        for _ in range(8):
            _, _, _, info = env.step(np.ones((12, 2)))
            assert np.all(info["engagement"] >= env.config.engagement_min)
            assert np.all(info["engagement"] <= env.config.engagement_max)

    def test_history_rolls(self):
        env = make_world().make_city_env(0)
        env.reset()
        _, _, _, info = env.step(np.full((12, 2), 0.4))
        np.testing.assert_array_equal(env._order_history[:, -1], info["orders"])

    def test_done_at_horizon(self):
        env = make_world(horizon=3).make_city_env(0)
        env.reset()
        for _ in range(3):
            _, _, dones, _ = env.step(np.full((12, 2), 0.4))
        assert np.all(dones)

    def test_demand_scale_drives_group_differences(self):
        """Drivers with identical personas complete more orders in bigger
        cities — the paper's group-behaviour difference."""
        world = make_world(num_cities=5, drivers_per_city=40)
        low_env = world.make_city_env(0)
        high_env = world.make_city_env(4)
        low_env.reset()
        high_env.reset()
        actions_low = np.full((40, 2), 0.4)
        orders_low = low_env.step(actions_low)[3]["orders"].mean()
        orders_high = high_env.step(actions_low)[3]["orders"].mean()
        assert orders_high > 2.0 * orders_low

    def test_impossible_tasks_erode_engagement(self):
        """Repeatedly recommending tasks far above tolerance with no bonus
        must reduce engagement — the long-term structure of the task."""
        env = make_world(horizon=20).make_city_env(2)
        env.reset()
        start = env._engagement.mean()
        hard = np.column_stack([np.ones(12), np.zeros(12)])
        for _ in range(20):
            _, _, _, info = env.step(hard)
        assert info["engagement"].mean() < start

    def test_reasonable_tasks_sustain_engagement(self):
        env = make_world(horizon=20).make_city_env(2)
        env.reset()
        easy = np.column_stack([np.full(12, 0.2), np.full(12, 0.5)])
        for _ in range(20):
            _, _, _, info = env.step(easy)
        assert info["engagement"].mean() > 0.8


class TestGroundTruthResponse:
    def test_completion_decreases_with_difficulty(self):
        env = make_world().make_city_env(0)
        response = env.response
        easy = response.completion_probability(np.full(12, 0.1), np.zeros(12))
        hard = response.completion_probability(np.full(12, 0.9), np.zeros(12))
        assert np.all(easy > hard)

    def test_bonus_increases_completion(self):
        env = make_world().make_city_env(0)
        response = env.response
        no_bonus = response.completion_probability(np.full(12, 0.5), np.zeros(12))
        bonus = response.completion_probability(np.full(12, 0.5), np.ones(12))
        assert np.all(bonus > no_bonus)

    def test_bonus_increases_expected_orders(self):
        """Ground-truth bonus elasticity is positive for every driver — the
        prior knowledge that F_trend checks simulators against."""
        env = make_world().make_city_env(0)
        response = env.response
        e = np.ones(12)
        low = response.expected_orders(e, np.full(12, 0.5), np.zeros(12), np.ones(12))
        high = response.expected_orders(e, np.full(12, 0.5), np.ones(12), np.ones(12))
        assert np.all(high > low)


class TestBehaviorPolicyAndLogging:
    def test_actions_in_bounds(self):
        world = make_world()
        env = world.make_city_env(0)
        states = env.reset()
        policy = BehaviorPolicy(BehaviorPolicyConfig(seed=0))
        actions = policy(states)
        assert actions.shape == (12, 2)
        assert np.all((actions >= 0) & (actions <= 1))

    def test_narrow_action_coverage(self):
        """πₑ must not cover the full action space — the premise of the
        extrapolation-error analysis."""
        world = make_world(drivers_per_city=100)
        dataset = collect_dpr_dataset(world, episodes=1)
        _, actions, _ = dataset.transition_pairs()
        assert actions[:, 0].std() < 0.25
        assert actions[:, 1].std() < 0.25
        span = actions.max(axis=0) - actions.min(axis=0)
        assert np.all(span < 0.95)

    def test_collect_dataset_structure(self):
        world = make_world()
        dataset = collect_dpr_dataset(world, episodes=2)
        assert len(dataset) == 3
        group = dataset.groups[0]
        assert group.num_episodes == 2
        assert group.horizon == 8
        assert group.num_users == 12
        assert group.state_dim == 13
        assert group.feedback_dim == 3

    def test_collect_reproducible(self):
        d1 = collect_dpr_dataset(make_world(), episodes=1, seed=5)
        d2 = collect_dpr_dataset(make_world(), episodes=1, seed=5)
        np.testing.assert_array_equal(d1.groups[0].actions, d2.groups[0].actions)
        np.testing.assert_array_equal(d1.groups[0].feedback, d2.groups[0].feedback)

    def test_feedback_matches_orders(self):
        dataset = collect_dpr_dataset(make_world(), episodes=1)
        group = dataset.groups[0]
        # feedback[..., 0] is orders; must be consistent with reward + cost
        orders = group.feedback[..., 0]
        assert np.all(orders >= 0)
        assert orders.mean() > 0

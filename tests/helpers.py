"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import Tensor


def numeric_gradient(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``func`` w.r.t. ``inputs[wrt]``."""
    base = [np.asarray(x, dtype=np.float64).copy() for x in inputs]
    grad = np.zeros_like(base[wrt])
    flat = base[wrt].reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = float(func([Tensor(b) for b in base]).data)
        flat[index] = original - eps
        minus = float(func([Tensor(b) for b in base]).data)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert autodiff gradients match finite differences for every input."""
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = func(tensors)
    assert out.data.ndim == 0 or out.data.size == 1, "gradcheck needs a scalar output"
    out.backward()
    for index, tensor in enumerate(tensors):
        expected = numeric_gradient(func, inputs, wrt=index)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(expected)
        np.testing.assert_allclose(actual, expected, atol=atol, rtol=rtol)

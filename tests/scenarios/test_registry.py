"""The scenario registry: specs, round-tripping, validation, families.

The acceptance contract: ``make_scenario`` builds LTS, DPR and SlateRec
populations from pure config dicts, specs round-trip exactly
(spec → env → spec), and malformed specs — unknown families/parameters,
empty populations — fail with clear ValueErrors at spec time.
"""

import numpy as np
import pytest

from repro.envs import DPRCityEnv, LTSEnv, SlateRecEnv
from repro.scenarios import (
    Scenario,
    ScenarioSpec,
    list_scenarios,
    make_scenario,
    normalize_spec,
    register_scenario,
    scenario_defaults,
    unregister_scenario,
)

SMALL_SPECS = {
    "lts": {"family": "lts", "num_users": 6, "horizon": 5, "seed": 3},
    "dpr": {
        "family": "dpr",
        "num_cities": 3,
        "drivers_per_city": 4,
        "horizon": 5,
        "seed": 3,
    },
    "slate": {
        "family": "slate",
        "num_envs": 4,
        "num_users": 6,
        "horizon": 5,
        "slate_size": 3,
        "seed": 3,
    },
}

FAMILY_ENV_TYPES = {"lts": LTSEnv, "dpr": DPRCityEnv, "slate": SlateRecEnv}


class TestRegistry:
    def test_builtin_families_registered(self):
        assert {"lts", "dpr", "slate"} <= set(list_scenarios())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            make_scenario("no_such_world")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_scenario({"family": "slate", "wibble": 3})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("slate")(lambda spec: None)

    def test_custom_family_registers_and_unregisters(self):
        @register_scenario("tiny_lts_clone", defaults={"num_users": 3, "horizon": 2})
        def build(spec):
            """A throwaway family for this test."""
            from repro.envs import LTSConfig

            def make_train_env(index, seed_offset=0):
                return LTSEnv(
                    LTSConfig(
                        num_users=spec.params["num_users"],
                        horizon=spec.params["horizon"],
                        seed=spec.seed + index + seed_offset,
                    )
                )

            return Scenario(
                spec,
                num_train_envs=2,
                state_dim=2,
                action_dim=1,
                make_train_env=make_train_env,
                make_target_env=lambda seed_offset=0: make_train_env(99, seed_offset),
            )

        try:
            scenario = make_scenario("tiny_lts_clone")
            assert scenario.description  # pulled from the builder docstring
            assert len(scenario.make_train_envs()) == 2
        finally:
            unregister_scenario("tiny_lts_clone")
        assert "tiny_lts_clone" not in list_scenarios()


@pytest.mark.parametrize("family", sorted(SMALL_SPECS))
class TestFamilies:
    def test_builds_population_from_config_dict(self, family):
        scenario = make_scenario(SMALL_SPECS[family])
        envs = scenario.make_train_envs()
        assert len(envs) == scenario.num_train_envs >= 2
        for env in envs:
            assert isinstance(env, FAMILY_ENV_TYPES[family])
            assert env.observation_dim == scenario.state_dim
            assert env.action_dim == scenario.action_dim
        target = scenario.make_target_env()
        assert isinstance(target, FAMILY_ENV_TYPES[family])
        assert target.observation_dim == scenario.state_dim

    def test_spec_round_trips_through_build(self, family):
        """spec → env → spec: rebuilding from the resolved spec yields an
        equal spec and a bit-identical population."""
        scenario = make_scenario(SMALL_SPECS[family])
        rebuilt = make_scenario(scenario.spec.to_dict())
        assert rebuilt.spec == scenario.spec
        assert rebuilt.spec.to_dict() == scenario.spec.to_dict()
        env_a = scenario.make_train_env(0)
        env_b = rebuilt.make_train_env(0)
        np.testing.assert_array_equal(env_a.reset(), env_b.reset())

    def test_spec_dict_is_json_compatible(self, family):
        import json

        data = make_scenario(SMALL_SPECS[family]).spec.to_dict()
        assert json.loads(json.dumps(data)) == data

    def test_deterministic_rebuild(self, family):
        a = make_scenario(SMALL_SPECS[family])
        b = make_scenario(SMALL_SPECS[family])
        for index in range(min(2, a.num_train_envs)):
            np.testing.assert_array_equal(
                a.make_train_env(index).reset(), b.make_train_env(index).reset()
            )

    def test_seed_changes_population(self, family):
        spec = dict(SMALL_SPECS[family])
        other = dict(spec, seed=spec["seed"] + 100)
        states_a = make_scenario(spec).make_train_env(0).reset()
        states_b = make_scenario(other).make_train_env(0).reset()
        assert not np.array_equal(states_a, states_b)


class TestPopulationValidation:
    @pytest.mark.parametrize(
        "family,key",
        [
            ("lts", "num_users"),
            ("slate", "num_envs"),
            ("slate", "num_users"),
            ("dpr", "num_cities"),
            ("dpr", "drivers_per_city"),
        ],
    )
    def test_empty_population_rejected_at_spec_time(self, family, key):
        spec = dict(SMALL_SPECS[family])
        spec[key] = 0
        with pytest.raises(ValueError, match="must be an integer >= 1"):
            make_scenario(spec)

    def test_lts_task_rejects_empty_users_directly(self):
        from repro.envs import make_lts_task

        with pytest.raises(ValueError, match="num_users must be >= 1"):
            make_lts_task("LTS3", num_users=0)

    def test_lts_target_env_rejects_empty_users(self):
        from repro.envs import make_lts_task

        task = make_lts_task("LTS3", num_users=5)
        with pytest.raises(ValueError, match="num_users must be >= 1"):
            task.make_target_env(num_users=0)

    def test_numpy_integer_counts_accepted(self):
        spec = dict(SMALL_SPECS["slate"])
        spec["num_envs"] = np.int64(3)
        scenario = make_scenario(spec)
        assert scenario.num_train_envs == 3
        assert scenario.spec.params["num_envs"] == 3
        assert type(scenario.spec.params["num_envs"]) is int  # JSON-clean

    def test_boolean_counts_rejected(self):
        spec = dict(SMALL_SPECS["slate"])
        spec["num_users"] = True  # int subclass, but a sizing bug
        with pytest.raises(ValueError, match="must be an integer >= 1"):
            make_scenario(spec)

    def test_dpr_target_city_held_out_of_training(self):
        scenario = make_scenario(SMALL_SPECS["dpr"])
        target = scenario.make_target_env()
        train_ids = {env.group_id for env in scenario.make_train_envs()}
        assert target.group_id not in train_ids
        assert scenario.num_train_envs == SMALL_SPECS["dpr"]["num_cities"] - 1

    def test_dpr_single_city_rejected(self):
        spec = dict(SMALL_SPECS["dpr"], num_cities=1)
        with pytest.raises(ValueError, match="held out"):
            make_scenario(spec)

    @pytest.mark.parametrize("bad", [2.5, "1", True, -1, 99])
    def test_dpr_invalid_target_city_rejected_at_spec_time(self, bad):
        """A non-integer or out-of-range target_city must fail loudly —
        a fractional value would otherwise silently disable the
        hold-out (no int equals 2.5) and crash later in env build."""
        spec = dict(SMALL_SPECS["dpr"], target_city=bad)
        with pytest.raises(ValueError, match="target_city"):
            make_scenario(spec)

    def test_spec_defaults_are_copies(self):
        defaults = scenario_defaults("slate")
        defaults["num_envs"] = 999
        assert scenario_defaults("slate")["num_envs"] != 999


class TestNormalization:
    def test_bare_name_resolves_defaults(self):
        spec = normalize_spec("slate")
        assert spec.params == scenario_defaults("slate")
        assert spec.seed == 0

    def test_tuples_normalised_to_lists(self):
        spec = normalize_spec(
            {"family": "lts", "sensitivity_range": (0.1, 0.2), "num_users": 4, "horizon": 3}
        )
        assert spec.params["sensitivity_range"] == [0.1, 0.2]

    def test_spec_object_accepted(self):
        spec = ScenarioSpec(family="slate", params={"num_envs": 3}, seed=5)
        scenario = make_scenario(spec)
        assert scenario.num_train_envs == 3
        assert scenario.spec.seed == 5

    def test_slate_hidden_parameter_distribution_gapped(self):
        """Every drawn ω_g honours the spec's gap around the target."""
        scenario = make_scenario(
            {"family": "slate", "num_envs": 32, "num_users": 2, "horizon": 2,
             "min_gap": 3.0, "seed": 9}
        )
        for index in range(scenario.num_train_envs):
            env = scenario.make_train_env(index)
            assert abs(env.config.omega_g) >= 3.0
        assert make_scenario(scenario.spec.to_dict()).spec == scenario.spec

    def test_slate_impossible_gap_rejected(self):
        with pytest.raises(ValueError, match="no admissible"):
            make_scenario(
                {"family": "slate", "omega_g_low": -1.0, "omega_g_high": 1.0,
                 "min_gap": 2.0}
            )

"""ScenarioTrainer / trainer_from_config: Algorithm 1 on any family."""

import numpy as np
import pytest

from repro.core import scenario_small_config
from repro.rl import evaluate
from repro.scenarios import (
    collect_scenario_state_sets,
    make_scenario,
    trainer_from_config,
)

TINY = {
    "lts": {"family": "lts", "num_users": 6, "horizon": 5, "seed": 1},
    "dpr": {
        "family": "dpr",
        "num_cities": 3,
        "drivers_per_city": 4,
        "horizon": 4,
        "seed": 1,
    },
    "slate": {
        "family": "slate",
        "num_envs": 3,
        "num_users": 6,
        "horizon": 5,
        "slate_size": 3,
        "seed": 1,
    },
}


def tiny_config(seed=0, **overrides):
    config = scenario_small_config(seed=seed)
    config.sadae_pretrain_epochs = 2
    config.segments_per_iteration = 2
    config.sadae_updates_per_iteration = 1
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestScenarioTrainer:
    @pytest.mark.parametrize("family", sorted(TINY))
    def test_trains_and_evaluates_each_family(self, family):
        config = tiny_config()
        config.scenario = TINY[family]
        with trainer_from_config(config) as trainer:
            losses = trainer.pretrain_sadae(epochs=2, steps_per_env=3)
            assert len(losses) == 2 and np.isfinite(losses).all()
            metrics = trainer.train_iteration()
            assert np.isfinite(metrics["reward"])
            policy = trainer.sim2rec_policy
        target = trainer.scenario.make_target_env()
        reward = evaluate(
            policy.as_act_fn(np.random.default_rng(0), deterministic=True), target
        )
        assert np.isfinite(reward)

    def test_explicit_scenario_overrides_config(self):
        config = tiny_config()
        trainer = trainer_from_config(config, scenario=TINY["slate"])
        assert trainer.scenario.spec.family == "slate"
        trainer.close()

    def test_missing_scenario_raises(self):
        with pytest.raises(ValueError, match="no scenario given"):
            trainer_from_config(tiny_config())

    def test_state_sets_cover_every_simulator(self):
        scenario = make_scenario(TINY["slate"])
        sets = collect_scenario_state_sets(scenario, steps_per_env=4)
        assert len(sets) == scenario.num_train_envs * 4
        states, actions = sets[0]
        assert states.shape == (6, scenario.state_dim)
        assert actions.shape == (6, scenario.action_dim)

    def test_state_sets_reject_population_resize(self):
        scenario = make_scenario(TINY["slate"])
        with pytest.raises(ValueError, match="users_per_set"):
            collect_scenario_state_sets(scenario, users_per_set=999)

    def test_shard_parallel_matches_vectorized_collection(self):
        """The scenario trainer rides the rollout-mode contract: slate
        populations collect bit-identically with policy replicas in the
        workers (the mode the trainer defaults to at rollout_workers>1)."""
        from repro.rl import sharding_available

        if not sharding_available():
            pytest.skip("platform has no multiprocessing start method")
        rewards = {}
        buffers = {}
        for mode in ("vectorized", "shard_parallel"):
            config = tiny_config(rollout_mode=mode, rollout_workers=2)
            config.scenario = TINY["slate"]
            with trainer_from_config(config) as trainer:
                buffer, raw = trainer.collect()
            rewards[mode] = raw
            buffers[mode] = buffer
        assert rewards["vectorized"] == rewards["shard_parallel"]
        for seg_a, seg_b in zip(
            buffers["vectorized"].segments, buffers["shard_parallel"].segments
        ):
            np.testing.assert_array_equal(seg_a.states, seg_b.states)
            np.testing.assert_array_equal(seg_a.rewards, seg_b.rewards)


class TestCLI:
    def test_list_and_spec(self, capsys):
        from repro.scenarios.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "slate" in out and "lts" in out and "dpr" in out
        assert main(["spec", "slate"]) == 0
        out = capsys.readouterr().out
        assert '"family": "slate"' in out

    def test_train_smoke(self, capsys):
        import json

        from repro.scenarios.__main__ import main

        spec = json.dumps(TINY["slate"])
        config_args = [
            "train", "--scenario", spec,
            "--iterations", "1", "--pretrain-epochs", "1",
        ]
        assert main(config_args) == 0
        out = capsys.readouterr().out
        assert "target-env return" in out

"""Run checkpoint / resume: trajectory bit-identity and corruption safety.

The contract (``repro.core.checkpoint``): a trainer that snapshots,
dies and is rebuilt from the same config resumes on the **exact**
trajectory the unbroken run takes — same per-iteration metrics, same
final parameters, bit for bit — and a corrupted snapshot (torn write,
flipped bit) is rejected loudly instead of resuming from garbage.
"""

import os

import numpy as np
import pytest

from repro.core import (
    CHECKPOINT_VERSION,
    Sim2RecConfig,
    checkpoint_iteration,
    lts_small_config,
)
from repro.core.checkpoint import pickle_to_array, unpickle_array
from repro.core.config import scenario_small_config
from repro.envs.lts_tasks import make_lts_task
from repro.core.trainer import Sim2RecLTSTrainer, build_sim2rec_policy
from repro.nn import StateChecksumError
from repro.rl.chaos import flip_byte, truncate_file
from repro.scenarios import trainer_from_config

SPEC = {"family": "slate", "num_envs": 4, "num_users": 5, "horizon": 5}


def scenario_trainer(seed=3, tweak=None):
    config = scenario_small_config(seed=seed)
    config.scenario = dict(SPEC)
    config.segments_per_iteration = 2
    if tweak is not None:
        tweak(config)
    return trainer_from_config(config, dict(SPEC))


def lts_trainer(seed=5):
    config = lts_small_config(seed=seed)
    config.segments_per_iteration = 2
    task = make_lts_task("LTS3", num_users=8, horizon=6, seed=seed)
    policy = build_sim2rec_policy(2, 1, config)
    return Sim2RecLTSTrainer(policy, task, config)


def run_iterations(trainer, count):
    return [trainer.train_iteration() for _ in range(count)]


def final_params(trainer):
    return {k: v.copy() for k, v in trainer.policy.replica_state().items()}


class TestResumeTrajectory:
    def test_resume_matches_unbroken_run(self, tmp_path):
        path = tmp_path / "run.npz"
        with scenario_trainer() as trainer:
            trainer.pretrain_sadae(epochs=2)
            unbroken = run_iterations(trainer, 4)
            expected = final_params(trainer)
        with scenario_trainer() as trainer:
            trainer.pretrain_sadae(epochs=2)
            head = run_iterations(trainer, 2)
            trainer.save_checkpoint(path)
        with scenario_trainer() as trainer:  # the "new process"
            assert trainer.load_checkpoint(path) == 2
            assert trainer.iteration == 2
            tail = run_iterations(trainer, 2)
            resumed = final_params(trainer)
        assert head + tail == unbroken
        assert set(resumed) == set(expected)
        for key in expected:
            np.testing.assert_array_equal(resumed[key], expected[key], err_msg=key)

    def test_resume_matches_under_sharded_rollouts(self, tmp_path):
        path = tmp_path / "run.npz"

        def sharded(config):
            config.rollout_workers = 2

        with scenario_trainer(tweak=sharded) as trainer:
            trainer.pretrain_sadae(epochs=1)
            unbroken = run_iterations(trainer, 3)
        with scenario_trainer(tweak=sharded) as trainer:
            trainer.pretrain_sadae(epochs=1)
            head = run_iterations(trainer, 1)
            trainer.save_checkpoint(path)
        with scenario_trainer(tweak=sharded) as trainer:
            trainer.load_checkpoint(path)
            tail = run_iterations(trainer, 2)
        assert head + tail == unbroken

    def test_lts_trainer_resumes_exactly(self, tmp_path):
        path = tmp_path / "lts.npz"
        unbroken_trainer = lts_trainer()
        unbroken_trainer.pretrain_sadae(epochs=1, users_per_set=6)
        unbroken = run_iterations(unbroken_trainer, 4)
        trainer = lts_trainer()
        trainer.pretrain_sadae(epochs=1, users_per_set=6)
        head = run_iterations(trainer, 2)
        trainer.save_checkpoint(path)
        fresh = lts_trainer()
        fresh.load_checkpoint(path)
        tail = run_iterations(fresh, 2)
        assert head + tail == unbroken

    def test_periodic_checkpointing_through_config(self, tmp_path):
        """checkpoint_every wires automatic snapshots into train_iteration."""
        path = tmp_path / "auto.npz"

        def auto(config):
            config.checkpoint_every = 2
            config.checkpoint_path = str(path)

        with scenario_trainer(tweak=auto) as trainer:
            trainer.pretrain_sadae(epochs=1)
            run_iterations(trainer, 1)
            assert not path.exists()  # iteration 1: not a multiple of 2
            run_iterations(trainer, 1)
            assert path.exists()
            assert checkpoint_iteration(path) == 2
            run_iterations(trainer, 2)
            assert checkpoint_iteration(path) == 4


class TestCorruptionSafety:
    def make_checkpoint(self, tmp_path):
        path = tmp_path / "run.npz"
        with scenario_trainer() as trainer:
            trainer.pretrain_sadae(epochs=1)
            run_iterations(trainer, 1)
            trainer.save_checkpoint(path)
        return path

    def test_truncated_checkpoint_is_rejected(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        truncate_file(path, keep_fraction=0.5)
        with scenario_trainer() as trainer:
            with pytest.raises((StateChecksumError, ValueError, OSError, KeyError)):
                trainer.load_checkpoint(path)

    def test_flipped_bit_is_rejected_by_the_checksum(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        flip_byte(path, offset=-4096)
        with scenario_trainer() as trainer:
            with pytest.raises(StateChecksumError):
                trainer.load_checkpoint(path)

    def test_unreadable_checkpoint_peeks_as_none(self, tmp_path):
        assert checkpoint_iteration(tmp_path / "missing.npz") is None
        path = self.make_checkpoint(tmp_path)
        assert checkpoint_iteration(path) == 1
        truncate_file(path, keep_fraction=0.3)
        assert checkpoint_iteration(path) is None

    def test_version_mismatch_is_rejected(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        from repro.nn import load_state, save_state

        state = load_state(path)
        state["meta.version"] = np.array([CHECKPOINT_VERSION + 1], dtype=np.int64)
        save_state(path, state)
        with scenario_trainer() as trainer:
            with pytest.raises(ValueError, match="version"):
                trainer.load_checkpoint(path)

    def test_config_mismatch_is_rejected(self, tmp_path):
        """A checkpoint from a different architecture must not load."""
        path = self.make_checkpoint(tmp_path)

        def bigger(config):
            config.lstm_hidden = 48

        with scenario_trainer(tweak=bigger) as trainer:
            with pytest.raises((ValueError, KeyError)):
                trainer.load_checkpoint(path)

    def test_save_is_atomic_over_existing_checkpoint(self, tmp_path):
        """A failed re-save leaves the previous checkpoint intact."""
        path = self.make_checkpoint(tmp_path)
        before = path.read_bytes()
        from repro.nn import save_state
        from repro.nn.serialization import CHECKSUM_KEY

        with pytest.raises(ValueError):
            save_state(path, {CHECKSUM_KEY: np.zeros(1)})  # reserved key
        assert path.read_bytes() == before
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []


class TestPickleArrays:
    def test_roundtrip(self):
        rng = np.random.default_rng(7)
        rng.random(13)
        clone = unpickle_array(pickle_to_array(rng))
        np.testing.assert_array_equal(clone.random(5), rng.random(5))

    def test_spawn_counter_survives(self):
        """The SeedSequence spawn counter is outside bit_generator.state;
        whole-generator pickling must preserve it so post-resume
        split_rng draws match."""
        from repro.rl import split_rng

        rng = np.random.default_rng(21)
        split_rng(rng, 3)  # advances the spawn counter
        clone = unpickle_array(pickle_to_array(rng))
        expected = [r.random(3) for r in split_rng(rng, 2)]
        got = [r.random(3) for r in split_rng(clone, 2)]
        for a, b in zip(expected, got):
            np.testing.assert_array_equal(a, b)

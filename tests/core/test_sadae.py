"""Tests for SADAE: posterior form, ELBO training, embedding quality."""

import numpy as np
import pytest

from repro import nn
from repro.core import SADAE, SADAEConfig, train_sadae


def gaussian_sets(num_sets=24, n=60, dim=2, seed=0, mean_range=(-3, 3)):
    """Synthetic corpus: each X is drawn from N(m, 1) with a set-specific m."""
    rng = np.random.default_rng(seed)
    sets, means = [], []
    for _ in range(num_sets):
        mean = rng.uniform(*mean_range, size=dim)
        states = rng.normal(mean, 1.0, size=(n, dim))
        actions = rng.normal(0.0, 1.0, size=(n, 1))
        sets.append((states, actions))
        means.append(mean)
    return sets, np.array(means)


def make_sadae(state_dim=2, action_dim=1, state_only=False, seed=0, latent=4):
    config = SADAEConfig(
        latent_dim=latent,
        encoder_hidden=(32, 32),
        decoder_hidden=(32, 32),
        learning_rate=3e-3,
        weight_decay=1e-5,
        state_only=state_only,
        seed=seed,
    )
    return SADAE(state_dim, action_dim, config)


class TestPosterior:
    def test_posterior_is_diag_gaussian(self):
        sadae = make_sadae()
        sets, _ = gaussian_sets(num_sets=1)
        posterior = sadae.posterior(*sets[0])
        assert isinstance(posterior, nn.DiagGaussian)
        assert posterior.mean.shape == (4,)

    def test_more_samples_tighter_posterior(self):
        """The Eq. (6) product sharpens with set size."""
        sadae = make_sadae()
        rng = np.random.default_rng(0)
        big = (rng.normal(1.0, 1.0, (200, 2)), rng.normal(0, 1, (200, 1)))
        small = (big[0][:10], big[1][:10])
        sadae.fit_normalizer([big])
        var_small = np.exp(2 * sadae.posterior(*small).log_std.data).mean()
        var_big = np.exp(2 * sadae.posterior(*big).log_std.data).mean()
        assert var_big < var_small

    def test_embed_is_posterior_mean(self):
        sadae = make_sadae()
        sets, _ = gaussian_sets(num_sets=1)
        embedding = sadae.embed(*sets[0])
        np.testing.assert_allclose(embedding, sadae.posterior(*sets[0]).mean.data)

    def test_embed_tensor_gradient_flows_to_encoder(self):
        sadae = make_sadae()
        sets, _ = gaussian_sets(num_sets=1)
        upsilon = sadae.embed_tensor(sets[0][0], sets[0][1], np.random.default_rng(0))
        upsilon.sum().backward()
        assert sadae.encoder.layers[0].weight.grad is not None

    def test_state_only_mode_ignores_actions(self):
        sadae = make_sadae(state_only=True)
        sets, _ = gaussian_sets(num_sets=1)
        e1 = sadae.embed(sets[0][0], None)
        e2 = sadae.embed(sets[0][0], sets[0][1])
        np.testing.assert_array_equal(e1, e2)


class TestELBO:
    def test_elbo_is_scalar(self):
        sadae = make_sadae()
        sets, _ = gaussian_sets(num_sets=1)
        sadae.fit_normalizer(sets)
        value = sadae.elbo(sets[0][0], sets[0][1], np.random.default_rng(0))
        assert value.data.shape == () or value.data.size == 1

    def test_elbo_requires_actions_unless_state_only(self):
        sadae = make_sadae()
        sets, _ = gaussian_sets(num_sets=1)
        sadae.fit_normalizer(sets)
        with pytest.raises(ValueError):
            sadae.elbo(sets[0][0], None, np.random.default_rng(0))

    def test_training_decreases_loss(self):
        sadae = make_sadae()
        sets, _ = gaussian_sets()
        losses = train_sadae(sadae, sets, epochs=25, rng=np.random.default_rng(0))
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_training_state_only(self):
        sadae = make_sadae(state_only=True)
        sets, _ = gaussian_sets()
        state_sets = [(s, None) for s, _ in sets]
        losses = train_sadae(sadae, state_sets, epochs=20, rng=np.random.default_rng(0))
        assert losses[-1] < losses[0]

    def test_gradients_reach_decoders(self):
        sadae = make_sadae()
        sets, _ = gaussian_sets(num_sets=1)
        sadae.fit_normalizer(sets)
        (-sadae.elbo(sets[0][0], sets[0][1], np.random.default_rng(0))).backward()
        assert sadae.state_decoder.layers[0].weight.grad is not None
        assert sadae.action_decoder.layers[0].weight.grad is not None

    def test_callback_invoked(self):
        sadae = make_sadae()
        sets, _ = gaussian_sets(num_sets=4)
        calls = []
        train_sadae(sadae, sets, epochs=3, rng=np.random.default_rng(0), callback=calls.append)
        assert calls == [0, 1, 2]


class TestEmbeddingQuality:
    def test_embedding_separates_distributions(self):
        """Sets from distant distributions must embed further apart than
        fresh draws from the same distribution (RQ1 at unit scale)."""
        sadae = make_sadae(latent=4)
        sets, means = gaussian_sets(num_sets=30, n=80)
        train_sadae(sadae, sets, epochs=40, rng=np.random.default_rng(0))
        rng = np.random.default_rng(123)
        mean_a, mean_b = np.array([-2.0, -2.0]), np.array([2.0, 2.0])

        def embed_from(mean):
            states = rng.normal(mean, 1.0, (80, 2))
            actions = rng.normal(0, 1.0, (80, 1))
            return sadae.embed(states, actions)

        same = np.linalg.norm(embed_from(mean_a) - embed_from(mean_a))
        different = np.linalg.norm(embed_from(mean_a) - embed_from(mean_b))
        assert different > 2.0 * same

    def test_embedding_correlates_with_generating_mean(self):
        sadae = make_sadae(latent=4)
        sets, means = gaussian_sets(num_sets=40, n=60, dim=2)
        train_sadae(sadae, sets, epochs=40, rng=np.random.default_rng(0))
        embeddings = np.stack([sadae.embed(s, a) for s, a in sets])
        # Some latent dimension must track the generating mean's first coord.
        correlations = [
            abs(np.corrcoef(embeddings[:, d], means[:, 0])[0, 1])
            for d in range(embeddings.shape[1])
        ]
        assert max(correlations) > 0.7

    def test_reconstruction_matches_distribution(self):
        """Decoded samples should approximate the source distribution."""
        sadae = make_sadae(latent=4)
        sets, means = gaussian_sets(num_sets=30, n=100)
        train_sadae(sadae, sets, epochs=60, rng=np.random.default_rng(0))
        states, actions = sets[0]
        recon_states, recon_actions = sadae.sample_reconstruction(
            states, actions, np.random.default_rng(0), num_samples=2000
        )
        assert recon_actions is not None
        np.testing.assert_allclose(recon_states.mean(axis=0), states.mean(axis=0), atol=0.7)

    def test_decode_state_distribution_raw_scale(self):
        sadae = make_sadae()
        sets, _ = gaussian_sets(num_sets=2)
        sadae.fit_normalizer(sets)
        mean, std = sadae.decode_state_distribution(np.zeros(4))
        assert mean.shape == (2,)
        assert np.all(std > 0)

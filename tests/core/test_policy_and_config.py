"""Tests for the Sim2Rec policy wiring and the Table II configs."""

import numpy as np

from repro.core import (
    SADAE,
    SADAEConfig,
    Sim2RecPolicy,
    build_sim2rec_policy,
    dpr_paper_config,
    dpr_small_config,
    lts_paper_config,
    lts_small_config,
)
from repro.rl import RolloutSegment


def make_policy(state_dim=3, action_dim=2, state_only=False, seed=0):
    sadae = SADAE(
        state_dim,
        action_dim,
        SADAEConfig(latent_dim=4, encoder_hidden=(16,), decoder_hidden=(16,), state_only=state_only, seed=seed),
    )
    return Sim2RecPolicy(
        state_dim,
        action_dim,
        sadae,
        np.random.default_rng(seed),
        fc_sizes=(8, 4),
        lstm_hidden=8,
        head_hidden=(16,),
    )


def make_segment(policy, steps=3, n=6, seed=0):
    rng = np.random.default_rng(seed)
    dones = np.zeros((steps, n))
    dones[-1] = 1.0
    segment = RolloutSegment(
        states=rng.standard_normal((steps, n, policy.state_dim)),
        prev_actions=rng.uniform(0, 1, (steps, n, policy.action_dim)),
        actions=rng.uniform(0, 1, (steps, n, policy.action_dim)),
        rewards=rng.standard_normal((steps, n)),
        dones=dones,
        values=rng.standard_normal((steps, n)),
        log_probs=rng.standard_normal((steps, n)),
        last_values=rng.standard_normal(n),
    )
    segment.finalize(0.9, 0.9)
    return segment


class TestSim2RecPolicy:
    def test_context_dim_from_fc_sizes(self):
        policy = make_policy()
        assert policy.context_dim == 4

    def test_act_shapes(self):
        policy = make_policy()
        policy.start_rollout(6)
        actions, log_probs, values = policy.act(
            np.random.default_rng(0).standard_normal((6, 3)),
            np.zeros((6, 2)),
            np.random.default_rng(1),
        )
        assert actions.shape == (6, 2)
        assert log_probs.shape == (6,)

    def test_group_context_shared_across_users(self):
        """υ is a group-level embedding: the rollout context rows are equal."""
        policy = make_policy()
        states = np.random.default_rng(0).standard_normal((5, 3))
        context = policy._rollout_context(states, np.zeros((5, 2)))
        assert context.shape == (5, 4)
        for row in context[1:]:
            np.testing.assert_array_equal(row, context[0])

    def test_context_depends_on_group_distribution(self):
        policy = make_policy()
        rng = np.random.default_rng(0)
        ctx_a = policy._rollout_context(rng.normal(0, 1, (50, 3)), np.zeros((50, 2)))
        ctx_b = policy._rollout_context(rng.normal(5, 1, (50, 3)), np.zeros((50, 2)))
        assert not np.allclose(ctx_a[0], ctx_b[0])

    def test_ppo_gradient_reaches_sadae_encoder(self):
        """The Eq. (4) path: policy loss → context → q_κ."""
        policy = make_policy()
        segment = make_segment(policy)
        log_probs, values, _ = policy.evaluate_segment(segment, np.arange(6))
        (log_probs.sum() + values.sum()).backward()
        encoder_grads = [p.grad for p in policy.sadae.encoder.parameters()]
        assert all(g is not None for g in encoder_grads)
        assert any(np.any(g != 0) for g in encoder_grads)

    def test_policy_parameters_include_sadae_and_fc(self):
        policy = make_policy()
        names = [name for name, _ in policy.named_parameters()]
        assert any(name.startswith("sadae.") for name in names)
        assert any(name.startswith("context_mlp.") for name in names)

    def test_state_only_mode(self):
        policy = make_policy(state_only=True)
        policy.start_rollout(4)
        actions, _, _ = policy.act(
            np.random.default_rng(0).standard_normal((4, 3)),
            np.zeros((4, 2)),
            np.random.default_rng(1),
        )
        assert actions.shape == (4, 2)

    def test_build_sim2rec_policy_helper(self):
        config = lts_small_config()
        policy = build_sim2rec_policy(2, 1, config)
        assert isinstance(policy, Sim2RecPolicy)
        assert policy.context_dim == config.fc_sizes[-1]
        assert policy.sadae.config.state_only


class TestConfigs:
    def test_lts_paper_values_match_table2(self):
        config = lts_paper_config()
        assert config.fc_sizes == (128, 128, 128, 32)
        assert config.lstm_hidden == 64
        assert config.head_hidden == (128, 64)
        assert config.ppo.gamma == 0.99
        assert config.sadae.latent_dim == 5
        assert config.sadae.encoder_hidden == (512, 512)
        assert config.sadae.learning_rate == 2e-5
        assert config.sadae.weight_decay == 0.1
        assert config.sadae.state_only

    def test_dpr_paper_values_match_table2(self):
        config = dpr_paper_config()
        assert config.fc_sizes == (512, 512, 256)
        assert config.lstm_hidden == 256
        assert config.head_hidden == (512, 256)
        assert config.ppo.gamma == 0.9
        assert config.sadae.latent_dim == 200
        assert config.sadae.learning_rate == 1e-6
        assert config.sadae.weight_decay == 0.001
        assert config.truncate_horizon == 5
        assert not config.sadae.state_only

    def test_lr_decay_range_matches_table2(self):
        for config in (lts_paper_config(), dpr_paper_config()):
            assert config.ppo.learning_rate == 1e-4
            assert config.ppo.final_learning_rate == 1e-6

    def test_pe_ablation_flags(self):
        config = dpr_small_config().ablate_prediction_error_handling()
        assert not config.use_uncertainty_penalty
        assert config.truncate_horizon is None
        # extrapolation handling stays on
        assert config.use_trend_filter and config.use_exec_filter

    def test_ee_ablation_flags(self):
        config = dpr_small_config().ablate_extrapolation_error_handling()
        assert not config.use_trend_filter
        assert not config.use_exec_filter
        # prediction-error handling stays on
        assert config.use_uncertainty_penalty
        assert config.truncate_horizon == 5

    def test_ablations_do_not_mutate_original(self):
        config = dpr_small_config()
        config.ablate_prediction_error_handling()
        config.ablate_extrapolation_error_handling()
        assert config.use_uncertainty_penalty
        assert config.use_trend_filter

    def test_small_configs_have_lts_dpr_distinction(self):
        assert lts_small_config().sadae.state_only
        assert not dpr_small_config().sadae.state_only
        assert dpr_small_config().truncate_horizon == 5

"""The pipelined determinism contract (``Sim2RecConfig.determinism``).

Strict mode's bit-parity grid is untouched (``tests/rl/``,
``tests/core/test_trainer.py``); this module owns what pipelined mode
promises instead: seeded run-to-run reproducibility, identical
trajectories across worker counts (ineligible launches execute the same
schedule synchronously), replica staleness of exactly one iteration,
checkpoint/resume that drains a mid-flight prefetch onto the unbroken
trajectory, and fault recovery of an in-flight prefetch without hangs.
"""

import os
import signal

import numpy as np
import pytest

from repro.core.config import Sim2RecConfig, scenario_small_config
from repro.rl import sharding_available, verify_training_reproducibility
from repro.rl.workers import FaultPolicy, _replica_state
from repro.scenarios import trainer_from_config

pytestmark = pytest.mark.skipif(
    not sharding_available(), reason="platform has no multiprocessing start method"
)

SPEC = {"family": "slate", "num_envs": 4, "num_users": 5, "horizon": 5}

FAST_POLICY = FaultPolicy(
    max_restarts=2,
    backoff=0.0,
    step_deadline=15.0,
    broadcast_deadline=15.0,
    collect_deadline=30.0,
    graceful_join=0.5,
)


def build_trainer(
    workers: int = 2,
    determinism: str = "pipelined",
    seed: int = 11,
    fault_policy=None,
    **config_overrides,
):
    config = scenario_small_config(seed=seed)
    config.scenario = dict(SPEC)
    config.rollout_mode = "shard_parallel"
    config.rollout_workers = workers
    config.determinism = determinism
    config.fault_policy = fault_policy
    for key, value in config_overrides.items():
        setattr(config, key, value)
    trainer = trainer_from_config(config, dict(SPEC))
    trainer.pretrain_sadae(epochs=1)
    return trainer


def run_metrics(iterations: int = 3, **kwargs):
    with build_trainer(**kwargs) as trainer:
        return [trainer.train_iteration() for _ in range(iterations)]


class TestDeterminismFlag:
    def test_strict_is_the_default(self):
        assert Sim2RecConfig().resolved_determinism() == "strict"

    def test_unknown_value_rejected(self):
        config = Sim2RecConfig(determinism="fast-and-loose")
        with pytest.raises(ValueError, match="fast-and-loose"):
            config.resolved_determinism()
        with pytest.raises(ValueError):
            config.determinism = "eventual"
            config.resolved_determinism()

    def test_strict_trainer_has_no_prefetch_state(self):
        """Strict runs never touch the prefetch machinery."""
        with build_trainer(determinism="strict") as trainer:
            trainer.train_iteration()
            assert trainer._prefetch is None


class TestPipelinedReproducibility:
    def test_seeded_run_to_run_reproducibility(self):
        """Same config + seed => same metric trajectory, every run."""
        reference = verify_training_reproducibility(
            build_trainer, iterations=3, runs=2, label="pipelined"
        )
        assert [m["collect_lag"] for m in reference] == [0.0, 1.0, 1.0]

    def test_worker_counts_share_one_trajectory(self):
        """An in-process pipelined run (workers=1 launches collect the
        schedule synchronously) is identical to the overlapped 2-worker
        run — the contract that lets 1-CPU CI certify the overlap path."""
        assert run_metrics(workers=2) == run_metrics(workers=1)

    def test_pipelined_is_not_strict(self):
        """The stale-by-one policy is real: trajectories diverge from
        strict after the first update."""
        pipelined = run_metrics(determinism="pipelined")
        strict = run_metrics(determinism="strict")
        assert pipelined[0]["reward"] == strict[0]["reward"]  # both fresh at 0
        assert [m["reward"] for m in pipelined[1:]] != [m["reward"] for m in strict[1:]]
        assert all("collect_lag" not in m for m in strict)

    def test_replica_staleness_is_exactly_one_iteration(self):
        """After iteration k the workers hold the policy as it stood
        when iteration k returned minus one — the weights that collected
        the in-flight prefetch are exactly one update behind."""

        def snapshot(policy):
            return {k: v.copy() for k, v in _replica_state(policy).items()}

        with build_trainer(workers=2) as trainer:
            states = []
            for _ in range(3):
                trainer.train_iteration()
                states.append(snapshot(trainer.policy))
            pool = trainer._worker_pool
            assert pool is not None and trainer._prefetch is not None
            replica = pool._replica_cache
            assert set(replica) == set(states[-2])
            for key in replica:
                np.testing.assert_array_equal(replica[key], states[-2][key])
            assert any(
                not np.array_equal(replica[key], states[-1][key]) for key in replica
            )


class TestPipelinedCheckpoint:
    def test_checkpoint_mid_prefetch_drains_onto_unbroken_trajectory(self, tmp_path):
        """A checkpoint taken with a prefetch in flight drains it; both
        the checkpointing run and a resumed fresh trainer continue the
        unbroken run's exact metric trajectory, and the archive carries
        the drained segments."""
        from repro.nn.serialization import load_state

        reference = run_metrics(iterations=5)
        path = tmp_path / "pipelined.npz"
        with build_trainer() as trainer:
            # At seed 11 the launch after the third iteration is a single
            # shard_parallel round (no duplicate env draws), so the
            # prefetch is genuinely dispatched to the workers here.
            got = [trainer.train_iteration() for _ in range(3)]
            assert trainer._prefetch is not None
            assert trainer._prefetch["pool"] is not None  # genuinely in flight
            trainer.save_checkpoint(path)
            assert trainer._prefetch["pool"] is None  # drained in place
            got += [trainer.train_iteration() for _ in range(2)]
        assert got == reference
        archive = load_state(path)
        assert "prefetch.segments" in archive and "prefetch.envs" in archive

        with build_trainer() as resumed:
            assert resumed.load_checkpoint(path) == 3
            assert resumed._prefetch is not None
            assert resumed._prefetch["segments"] is not None
            tail = [resumed.train_iteration() for _ in range(2)]
        assert tail == reference[3:]

    def test_strict_checkpoint_has_no_prefetch_keys(self, tmp_path):
        from repro.nn.serialization import load_state

        path = tmp_path / "strict.npz"
        with build_trainer(determinism="strict") as trainer:
            trainer.train_iteration()
            trainer.save_checkpoint(path)
        assert not any(key.startswith("prefetch.") for key in load_state(path))

    def test_periodic_checkpointing_stays_on_trajectory(self, tmp_path):
        """checkpoint_every drains the just-launched prefetch every
        period — the trajectory must not fork from an uncheckpointed run."""
        reference = run_metrics(iterations=4)
        got = run_metrics(
            iterations=4,
            checkpoint_every=2,
            checkpoint_path=str(tmp_path / "auto.npz"),
        )
        assert got == reference

    def test_close_discards_inflight_prefetch(self):
        trainer = build_trainer()
        trainer.train_iteration()
        assert trainer._prefetch is not None
        trainer.close()
        assert trainer._prefetch is None
        trainer.close()  # idempotent


class TestPipelinedFaults:
    def test_worker_death_mid_prefetch_recovers_bit_identically(self):
        """SIGKILL a worker while the prefetch is in flight: the next
        consume recovers it under the FaultPolicy and the run keeps the
        no-fault pipelined trajectory."""
        reference = run_metrics(iterations=3, fault_policy=None)
        with build_trainer(fault_policy=FAST_POLICY) as trainer:
            metrics = [trainer.train_iteration()]
            assert trainer._prefetch is not None
            os.kill(trainer._worker_pool._procs[0].pid, signal.SIGKILL)
            metrics += [trainer.train_iteration() for _ in range(2)]
            assert trainer._worker_pool.restart_counts[0] >= 1
        assert metrics == reference

"""Tests for the Sec. IV-C error countermeasures."""

import numpy as np
import pytest

from repro.core import (
    apply_exec_filter,
    apply_uncertainty_penalty,
    compute_trend_filter,
    filter_group_log,
    intervention_response,
)
from repro.envs import DPRConfig, DPRWorld, collect_dpr_dataset
from repro.rl import RolloutSegment
from repro.sim import SimulatorEnsemble, SimulatorLearnerConfig, train_user_simulator


def make_segment(steps=4, n=3, ds=13, da=2, seed=0):
    rng = np.random.default_rng(seed)
    dones = np.zeros((steps, n))
    dones[-1] = 1.0
    return RolloutSegment(
        states=rng.standard_normal((steps, n, ds)),
        prev_actions=rng.uniform(0, 1, (steps, n, da)),
        actions=rng.uniform(0.2, 0.8, (steps, n, da)),
        rewards=np.ones((steps, n)),
        dones=dones,
        values=np.zeros((steps, n)),
        log_probs=np.zeros((steps, n)),
        last_values=np.zeros(n),
    )


@pytest.fixture(scope="module")
def dpr_setup():
    world = DPRWorld(DPRConfig(num_cities=2, drivers_per_city=12, horizon=10, seed=31))
    dataset = collect_dpr_dataset(world, episodes=2)
    members = [
        train_user_simulator(
            dataset.subsample_users(0.8, seed=i),
            SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=30, seed=i),
        )
        for i in range(3)
    ]
    return world, dataset, SimulatorEnsemble(members)


class TestExecFilter:
    def test_no_violation_no_change(self):
        segment = make_segment()
        low = np.zeros((3, 2))
        high = np.ones((3, 2))
        affected = apply_exec_filter(segment, low, high, r_min=0.0, gamma=0.9)
        assert affected == 0
        np.testing.assert_array_equal(segment.rewards, np.ones((4, 3)))

    def test_violation_sets_done_and_reward(self):
        segment = make_segment()
        segment.actions[2, 1] = [0.95, 0.5]  # outside user 1's bounds below
        low = np.full((3, 2), 0.2)
        high = np.full((3, 2), 0.8)
        affected = apply_exec_filter(segment, low, high, r_min=-1.0, gamma=0.9)
        assert affected == 1
        assert segment.dones[2, 1] == 1.0
        np.testing.assert_allclose(segment.rewards[2, 1], -1.0 / 0.1)

    def test_first_violation_wins(self):
        segment = make_segment()
        segment.actions[1, 0] = [0.9, 0.5]
        segment.actions[3, 0] = [0.9, 0.5]
        low = np.full((3, 2), 0.2)
        high = np.full((3, 2), 0.8)
        apply_exec_filter(segment, low, high, r_min=0.0, gamma=0.9)
        assert segment.dones[1, 0] == 1.0
        # later violation untouched (the episode already ended)
        assert segment.rewards[3, 0] == 1.0

    def test_tolerance_expands_bounds(self):
        segment = make_segment()
        segment.actions[0, 0] = [0.85, 0.5]
        low = np.full((3, 2), 0.2)
        high = np.full((3, 2), 0.8)
        affected = apply_exec_filter(
            segment, low, high, r_min=0.0, gamma=0.9, tolerance=0.1
        )
        assert affected == 0

    def test_action_clip_applies_before_check(self):
        segment = make_segment()
        segment.actions[0, 0] = [5.0, 0.5]  # raw sample far out; clips to 1.0
        low = np.full((3, 2), 0.0)
        high = np.full((3, 2), 1.0)
        affected = apply_exec_filter(
            segment, low, high, r_min=0.0, gamma=0.9, action_clip=(0.0, 1.0)
        )
        assert affected == 0

    def test_mask_invalidates_after_cut(self):
        segment = make_segment()
        segment.actions[1, 2] = [0.9, 0.5]
        low = np.full((3, 2), 0.2)
        high = np.full((3, 2), 0.8)
        apply_exec_filter(segment, low, high, r_min=0.0, gamma=0.9)
        segment.finalize(gamma=0.9, lam=0.9)
        np.testing.assert_array_equal(segment.valid_mask[:, 2], [1.0, 1.0, 0.0, 0.0])


class TestUncertaintyPenalty:
    def test_penalty_reduces_rewards(self, dpr_setup):
        _, dataset, ensemble = dpr_setup
        group = dataset.groups[0]
        segment = make_segment(n=group.num_users, ds=group.state_dim)
        segment.states = group.states[0, :4]
        segment.actions = group.actions[0, :4]
        before = segment.rewards.copy()
        penalties = apply_uncertainty_penalty(segment, ensemble, alpha=0.5)
        assert np.all(penalties >= 0)
        assert np.all(segment.rewards <= before)

    def test_alpha_scales_penalty(self, dpr_setup):
        _, dataset, ensemble = dpr_setup
        group = dataset.groups[0]

        def penalised(alpha):
            segment = make_segment(n=group.num_users, ds=group.state_dim)
            segment.states = group.states[0, :4]
            segment.actions = group.actions[0, :4]
            apply_uncertainty_penalty(segment, ensemble, alpha=alpha)
            return segment.rewards

        r_small = penalised(0.01)
        r_large = penalised(1.0)
        assert r_large.mean() < r_small.mean()


class TestTrendFilter:
    def test_intervention_response_shape(self, dpr_setup):
        _, dataset, ensemble = dpr_setup
        deltas = np.linspace(-0.4, 0.4, 5)
        responses = intervention_response(ensemble, dataset.groups[0], deltas)
        assert responses.shape == (3, 12, 5)

    def test_keeps_most_users_with_decent_simulators(self, dpr_setup):
        _, dataset, ensemble = dpr_setup
        result = compute_trend_filter(ensemble, dataset.groups[0])
        assert result.keep_mask.sum() >= 6  # consensus mode is forgiving

    def test_modes_ordered_by_strictness(self, dpr_setup):
        _, dataset, ensemble = dpr_setup
        group = dataset.groups[0]
        consensus = compute_trend_filter(ensemble, group, mode="consensus").keep_mask
        mean_mode = compute_trend_filter(ensemble, group, mode="mean").keep_mask
        strict = compute_trend_filter(ensemble, group, mode="strict").keep_mask
        assert strict.sum() <= mean_mode.sum() <= consensus.sum()
        # strict ⊆ mean ⊆ consensus
        assert np.all(consensus[strict])
        assert np.all(consensus[mean_mode])

    def test_unknown_mode_raises(self, dpr_setup):
        _, dataset, ensemble = dpr_setup
        with pytest.raises(ValueError):
            compute_trend_filter(ensemble, dataset.groups[0], mode="bogus")

    def test_slopes_recorded(self, dpr_setup):
        _, dataset, ensemble = dpr_setup
        result = compute_trend_filter(ensemble, dataset.groups[0])
        assert result.slopes.shape == (3, 12)
        assert result.response_curves.shape[0] == 3

    def test_filter_group_log_restricts_users(self, dpr_setup):
        _, dataset, _ = dpr_setup
        group = dataset.groups[0]
        mask = np.zeros(group.num_users, dtype=bool)
        mask[[0, 3, 5]] = True
        filtered = filter_group_log(group, mask)
        assert filtered.num_users == 3

    def test_filter_group_log_never_empties(self, dpr_setup):
        _, dataset, _ = dpr_setup
        group = dataset.groups[0]
        filtered = filter_group_log(group, np.zeros(group.num_users, dtype=bool))
        assert filtered.num_users == group.num_users

    def test_filter_group_log_shape_validation(self, dpr_setup):
        _, dataset, _ = dpr_setup
        with pytest.raises(ValueError):
            filter_group_log(dataset.groups[0], np.ones(3, dtype=bool))

"""Set-batched SADAE training: equivalence with the sequential ELBO loop.

The contract under test (see :meth:`repro.core.sadae.SADAE.elbo_batch`):
stacking K equal-cardinality state-action sets into one encoder/decoder
forward yields per-set ELBOs — and hence ``train_sadae`` losses —
*bit-identical* to evaluating :meth:`~repro.core.sadae.SADAE.elbo` set by
set with the same generator, because the υ-noise is drawn per set in set
order and every row's arithmetic is batch-length independent.
"""

import numpy as np
import pytest

from repro.core import SADAE, SADAEConfig, train_sadae


def gaussian_sets(num_sets=12, n=40, dim=2, action_dim=1, seed=0):
    rng = np.random.default_rng(seed)
    sets = []
    for _ in range(num_sets):
        mean = rng.uniform(-2, 2, size=dim)
        sets.append(
            (rng.normal(mean, 1.0, size=(n, dim)), rng.normal(0, 1, size=(n, action_dim)))
        )
    return sets


def make_sadae(state_only=False, seed=0):
    return SADAE(
        2,
        1,
        SADAEConfig(
            latent_dim=4,
            encoder_hidden=(32, 32),
            decoder_hidden=(32, 32),
            learning_rate=3e-3,
            weight_decay=1e-5,
            state_only=state_only,
            seed=seed,
        ),
    )


class TestElboBatchEquivalence:
    @pytest.mark.parametrize("state_only", [False, True])
    def test_per_set_elbos_bit_identical(self, state_only):
        sadae = make_sadae(state_only=state_only)
        sets = gaussian_sets(num_sets=6)
        if state_only:
            sets = [(s, None) for s, _ in sets]
        sadae.fit_normalizer(sets)
        # Sequential pass: one shared generator advanced set by set.
        rng = np.random.default_rng(3)
        sequential = [sadae.elbo(s, a, rng).item() for s, a in sets]
        batched = [v.item() for v in sadae.elbo_batch(sets, np.random.default_rng(3))]
        assert sequential == batched

    def test_gradients_flow_through_batched_path(self):
        sadae = make_sadae()
        sets = gaussian_sets(num_sets=4)
        sadae.fit_normalizer(sets)
        elbos = sadae.elbo_batch(sets, np.random.default_rng(0))
        total = elbos[0]
        for value in elbos[1:]:
            total = total + value
        (-total).backward()
        assert sadae.encoder.layers[0].weight.grad is not None
        assert sadae.state_decoder.layers[0].weight.grad is not None
        assert sadae.action_decoder.layers[0].weight.grad is not None

    def test_unequal_cardinality_rejected(self):
        sadae = make_sadae()
        sets = gaussian_sets(num_sets=2)
        short = (sets[1][0][:10], sets[1][1][:10])
        with pytest.raises(ValueError, match="equal-cardinality"):
            sadae.elbo_batch([sets[0], short], np.random.default_rng(0))

    def test_missing_actions_rejected(self):
        sadae = make_sadae()
        sets = gaussian_sets(num_sets=2)
        with pytest.raises(ValueError, match="actions required"):
            sadae.elbo_batch([sets[0], (sets[1][0], None)], np.random.default_rng(0))

    def test_empty_batch(self):
        sadae = make_sadae()
        assert sadae.elbo_batch([], np.random.default_rng(0)) == []


class TestTrainSadaeBatched:
    def test_equal_cardinality_losses_match(self):
        """The acceptance case: batched epochs reproduce sequential epochs
        on an equal-cardinality corpus to ≤1e-10. Each step's loss is
        bit-identical given identical parameters (see
        ``test_per_set_elbos_bit_identical``); across optimizer steps the
        backward pass sums gradients in a different order, so parameters —
        and hence later losses — drift at the last ulp."""
        sets = gaussian_sets(num_sets=16)
        seq_losses = train_sadae(
            make_sadae(), sets, epochs=4, rng=np.random.default_rng(5), batched=False
        )
        bat_losses = train_sadae(
            make_sadae(), sets, epochs=4, rng=np.random.default_rng(5), batched=True
        )
        np.testing.assert_allclose(seq_losses, bat_losses, rtol=1e-10, atol=1e-10)

    def test_all_distinct_cardinalities_bit_identical(self):
        """Singleton groups fall back to the sequential elbo, so a fully
        ragged corpus also reproduces the sequential losses exactly."""
        rng = np.random.default_rng(1)
        sets = [
            (rng.normal(0, 1, (n, 2)), rng.normal(0, 1, (n, 1)))
            for n in (10, 20, 30, 40)
        ]
        seq_losses = train_sadae(
            make_sadae(), sets, epochs=3, rng=np.random.default_rng(6),
            sets_per_step=4, batched=False,
        )
        bat_losses = train_sadae(
            make_sadae(), sets, epochs=3, rng=np.random.default_rng(6),
            sets_per_step=4, batched=True,
        )
        assert seq_losses == bat_losses

    def test_mixed_cardinalities_train(self):
        """Ragged corpora group by set size; training still converges."""
        rng = np.random.default_rng(2)
        sets = []
        for n in (25, 25, 25, 40, 40, 40, 40):
            mean = rng.uniform(-2, 2, 2)
            sets.append((rng.normal(mean, 1.0, (n, 2)), rng.normal(0, 1, (n, 1))))
        losses = train_sadae(
            make_sadae(), sets, epochs=15, rng=np.random.default_rng(7), batched=True
        )
        assert all(np.isfinite(losses))
        assert losses[-1] < losses[0]

    def test_state_only_batched(self):
        sets = [(s, None) for s, _ in gaussian_sets(num_sets=8)]
        seq_losses = train_sadae(
            make_sadae(state_only=True), sets, epochs=3,
            rng=np.random.default_rng(8), batched=False,
        )
        bat_losses = train_sadae(
            make_sadae(state_only=True), sets, epochs=3,
            rng=np.random.default_rng(8), batched=True,
        )
        np.testing.assert_allclose(seq_losses, bat_losses, rtol=1e-10, atol=1e-10)

"""Tests for the Algorithm 1 trainers (LTS and DPR backends)."""

import numpy as np
import pytest

from repro.core import (
    Sim2RecDPRTrainer,
    Sim2RecLTSTrainer,
    build_sim2rec_policy,
    collect_lts_state_sets,
    dpr_small_config,
    lts_small_config,
)
from repro.envs import DPRConfig, DPRWorld, collect_dpr_dataset, make_lts_task
from repro.sim import SimulatorLearnerConfig, build_simulator_set


@pytest.fixture(scope="module")
def lts_setup():
    config = lts_small_config(seed=0)
    task = make_lts_task("LTS3", num_users=20, horizon=15, seed=0)
    policy = build_sim2rec_policy(2, 1, config)
    trainer = Sim2RecLTSTrainer(policy, task, config)
    return config, task, policy, trainer


@pytest.fixture(scope="module")
def dpr_setup():
    world = DPRWorld(DPRConfig(num_cities=2, drivers_per_city=10, horizon=10, seed=41))
    dataset = collect_dpr_dataset(world, episodes=2)
    ensemble = build_simulator_set(
        dataset,
        num_members=3,
        base_config=SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=25),
        seed=0,
    )
    return world, dataset, ensemble


class TestLTSTrainer:
    def test_iteration_produces_metrics(self, lts_setup):
        _, _, _, trainer = lts_setup
        metrics = trainer.train_iteration()
        for key in ("reward", "shaped_reward", "policy_loss", "value_loss"):
            assert key in metrics

    def test_training_logs_history(self, lts_setup):
        _, _, _, trainer = lts_setup
        start = len(trainer.logger.series("reward"))
        trainer.train(2)
        assert len(trainer.logger.series("reward")) == start + 2

    def test_pretrain_sadae_reduces_loss(self, lts_setup):
        config, task, _, _ = lts_setup
        policy = build_sim2rec_policy(2, 1, config)
        trainer = Sim2RecLTSTrainer(policy, task, config)
        losses = trainer.pretrain_sadae(epochs=8, users_per_set=60)
        assert losses[-1] < losses[0]

    def test_env_sampler_draws_from_task_set(self, lts_setup):
        _, task, _, trainer = lts_setup
        rng = np.random.default_rng(0)
        omega_gs = {trainer.env_sampler(rng).group_id for _ in range(40)}
        assert omega_gs <= set(float(w) for w in task.train_omega_gs)
        assert len(omega_gs) > 1

    def test_resample_users_mode_changes_gaps(self):
        config = lts_small_config(seed=1)
        task = make_lts_task("LTS3", beta=4.0, num_users=15, horizon=10, seed=1)
        policy = build_sim2rec_policy(2, 1, config)
        trainer = Sim2RecLTSTrainer(policy, task, config, resample_users=True)
        rng = np.random.default_rng(0)
        env = trainer.env_sampler(rng)
        before = env.mu_k_users.copy()
        # drawing the same env again resamples its user gaps
        for _ in range(10):
            env2 = trainer.env_sampler(rng)
            if env2 is env:
                break
        assert not np.allclose(before, env.mu_k_users)

    def test_collect_lts_state_sets_shapes(self):
        task = make_lts_task("LTS3", num_users=10, horizon=8, seed=0)
        sets = collect_lts_state_sets(task, users_per_set=25, steps_per_env=4)
        assert len(sets) == task.num_simulators * 4
        states, actions = sets[0]
        assert states.shape == (25, 2)
        assert actions is None


class TestDPRTrainer:
    def make_trainer(self, dpr_setup, config=None):
        _, dataset, ensemble = dpr_setup
        config = config or dpr_small_config(seed=0)
        policy = build_sim2rec_policy(dataset.state_dim, dataset.action_dim, config)
        return Sim2RecDPRTrainer(policy, ensemble, dataset, config), config

    def test_iteration_runs(self, dpr_setup):
        trainer, _ = self.make_trainer(dpr_setup)
        metrics = trainer.train_iteration()
        assert "reward" in metrics

    def test_trend_filter_computed_per_group(self, dpr_setup):
        trainer, _ = self.make_trainer(dpr_setup)
        _, dataset, _ = dpr_setup
        assert set(trainer.trend_results) == set(dataset.group_ids)

    def test_trend_filter_disabled_in_ee_ablation(self, dpr_setup):
        config = dpr_small_config(seed=0).ablate_extrapolation_error_handling()
        trainer, _ = self.make_trainer(dpr_setup, config)
        assert trainer.trend_results == {}

    def test_rollouts_truncated_at_tc(self, dpr_setup):
        trainer, config = self.make_trainer(dpr_setup)
        rng = np.random.default_rng(0)
        env = trainer.env_sampler(rng)
        assert env.horizon == config.truncate_horizon

    def test_pe_ablation_uses_full_horizon_env(self, dpr_setup):
        config = dpr_small_config(seed=0).ablate_prediction_error_handling()
        trainer, _ = self.make_trainer(dpr_setup, config)
        metrics = trainer.train_iteration()  # must run without penalty
        assert "reward" in metrics

    def test_uncertainty_penalty_lowers_shaped_reward(self, dpr_setup):
        base_config = dpr_small_config(seed=0)
        # disable exec filter so the only difference is the penalty
        base_config.use_exec_filter = False
        base_config.use_trend_filter = False
        trainer, _ = self.make_trainer(dpr_setup, base_config)

        pe_config = dpr_small_config(seed=0)
        pe_config.use_exec_filter = False
        pe_config.use_trend_filter = False
        pe_config = pe_config.ablate_prediction_error_handling()
        pe_config.truncate_horizon = base_config.truncate_horizon  # same length
        trainer_pe, _ = self.make_trainer(dpr_setup, pe_config)

        m_with = trainer.train_iteration()
        m_without = trainer_pe.train_iteration()
        assert m_with["shaped_reward"] <= m_with["reward"]
        np.testing.assert_allclose(m_without["shaped_reward"], m_without["reward"], rtol=1e-9)

    def test_sadae_pretraining_runs(self, dpr_setup):
        trainer, _ = self.make_trainer(dpr_setup)
        losses = trainer.pretrain_sadae(epochs=2)
        assert len(losses) == 2

    def test_reward_improves_over_training(self, dpr_setup):
        """End-to-end smoke: simulated reward should trend upward."""
        trainer, _ = self.make_trainer(dpr_setup)
        trainer.pretrain_sadae(epochs=3)
        trainer.train(12)
        rewards = trainer.logger.series("reward")
        assert np.mean(rewards[-4:]) > np.mean(rewards[:4]) - 1.0

"""Tests for seeding, normalisation and logging utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    MetricLogger,
    RewardScaler,
    RngStream,
    RunningMeanStd,
    make_rng,
    spawn_rngs,
)


class TestSeeding:
    def test_make_rng_deterministic(self):
        assert make_rng(5).integers(0, 1000) == make_rng(5).integers(0, 1000)

    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.integers(0, 10**9) for r in rngs]
        assert len(set(draws)) == 3

    def test_spawn_rngs_reproducible(self):
        d1 = [r.integers(0, 10**9) for r in spawn_rngs(42, 3)]
        d2 = [r.integers(0, 10**9) for r in spawn_rngs(42, 3)]
        assert d1 == d2

    def test_rng_stream_same_name_same_stream(self):
        stream = RngStream(seed=1)
        rng_a = stream.child("policy")
        rng_b = stream.child("policy")
        assert rng_a is rng_b

    def test_rng_stream_names_independent(self):
        stream = RngStream(seed=1)
        a = stream.child("policy").integers(0, 10**9)
        b = stream.child("sadae").integers(0, 10**9)
        assert a != b

    def test_rng_stream_order_independent(self):
        s1 = RngStream(seed=3)
        s2 = RngStream(seed=3)
        s1.child("x")
        value1 = s1.child("y").integers(0, 10**9)
        value2 = s2.child("y").integers(0, 10**9)  # no prior child("x")
        assert value1 == value2


class TestRunningMeanStd:
    def test_matches_batch_statistics(self):
        rng = np.random.default_rng(0)
        data = rng.normal(3.0, 2.0, (1000, 4))
        rms = RunningMeanStd(shape=(4,))
        for chunk in np.array_split(data, 10):
            rms.update(chunk)
        # The epsilon-count initialisation introduces a tiny bias.
        np.testing.assert_allclose(rms.mean, data.mean(axis=0), rtol=1e-5)
        np.testing.assert_allclose(rms.var, data.var(axis=0), rtol=1e-5)

    def test_normalize_standardises(self):
        rng = np.random.default_rng(1)
        data = rng.normal(-5.0, 3.0, (2000,))
        rms = RunningMeanStd(shape=())
        rms.update(data)
        normalised = rms.normalize(data)
        np.testing.assert_allclose(normalised.mean(), 0.0, atol=1e-2)
        np.testing.assert_allclose(normalised.std(), 1.0, atol=1e-2)

    def test_normalize_clips(self):
        rms = RunningMeanStd(shape=())
        rms.update(np.zeros(100) + np.random.default_rng(0).normal(0, 1, 100))
        assert abs(rms.normalize(np.array([1e9]), clip=5.0)[0]) <= 5.0

    def test_denormalize_roundtrip(self):
        rng = np.random.default_rng(2)
        data = rng.normal(7.0, 0.5, (500, 2))
        rms = RunningMeanStd(shape=(2,))
        rms.update(data)
        roundtrip = rms.denormalize(rms.normalize(data[:10], clip=100.0))
        np.testing.assert_allclose(roundtrip, data[:10], atol=1e-8)

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_incremental_equals_oneshot(self, chunks):
        rng = np.random.default_rng(chunks)
        data = rng.standard_normal((120, 2))
        incremental = RunningMeanStd(shape=(2,))
        for chunk in np.array_split(data, chunks):
            incremental.update(chunk)
        oneshot = RunningMeanStd(shape=(2,))
        oneshot.update(data)
        np.testing.assert_allclose(incremental.mean, oneshot.mean, atol=1e-10)
        np.testing.assert_allclose(incremental.var, oneshot.var, atol=1e-10)


class TestRewardScaler:
    def test_scale_shape_preserved(self):
        scaler = RewardScaler(gamma=0.99)
        rewards = np.ones(8)
        scaled = scaler.scale(rewards, np.zeros(8))
        assert scaled.shape == (8,)

    def test_scaling_reduces_large_rewards(self):
        scaler = RewardScaler(gamma=0.99)
        for _ in range(50):
            scaled = scaler.scale(np.full(4, 100.0), np.zeros(4))
        assert np.all(scaled < 10.0)

    def test_dones_reset_returns(self):
        scaler = RewardScaler(gamma=1.0)
        scaler.scale(np.ones(2), np.zeros(2))
        scaler.scale(np.ones(2), np.ones(2))  # episode ends
        scaler.scale(np.ones(2), np.zeros(2))
        np.testing.assert_allclose(scaler._returns, 1.0)


class TestMetricLogger:
    def test_series_in_order(self):
        logger = MetricLogger()
        logger.log(0, reward=1.0)
        logger.log(1, reward=2.0)
        assert logger.series("reward") == [1.0, 2.0]
        assert logger.steps("reward") == [0, 1]

    def test_last_and_default(self):
        logger = MetricLogger()
        assert logger.last("missing") is None
        assert logger.last("missing", default=3.0) == 3.0
        logger.log(0, x=5.0)
        assert logger.last("x") == 5.0

    def test_mean_with_window(self):
        logger = MetricLogger()
        for step, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            logger.log(step, m=value)
        assert logger.mean("m") == 2.5
        assert logger.mean("m", last_n=2) == 3.5

    def test_mean_missing_raises(self):
        with pytest.raises(KeyError):
            MetricLogger().mean("nope")

    def test_multiple_metrics_per_step(self):
        logger = MetricLogger()
        logger.log(0, a=1.0, b=2.0)
        assert logger.series("a") == [1.0]
        assert logger.series("b") == [2.0]

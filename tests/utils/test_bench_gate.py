"""The CI bench-regression gate: floor comparisons, tolerance, CPU gating."""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression", ROOT / ".github" / "check_bench_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def rollout_payload(
    speedup=2.5,
    worker_speedup=2.0,
    cpu_count=4,
    equivalent=True,
    shard_parallel_vs_sharded=1.6,
    mode_equivalent=True,
    with_mode_sweep=True,
    scenario_speedup=2.0,
    scenario_equivalent=True,
    with_scenario_sweep=True,
):
    scenario = {
        "name": "smoke_cross_city",
        "speedup": speedup,
        "equivalent": equivalent,
        "workers": [
            {
                "num_workers": 1,
                "speedup_vs_sequential": 1.0,
                "equivalent": equivalent,
            },
            {
                "num_workers": 2,
                "speedup_vs_sequential": worker_speedup,
                "equivalent": equivalent,
            },
        ],
    }
    if with_mode_sweep:
        scenario["mode_sweep"] = [
            {
                "mode": "sharded",
                "num_workers": 2,
                "speedup_vs_sequential": worker_speedup,
                "equivalent": mode_equivalent,
            },
            {
                "mode": "shard_parallel",
                "num_workers": 2,
                "speedup_vs_sequential": worker_speedup * shard_parallel_vs_sharded,
                "speedup_vs_sharded": shard_parallel_vs_sharded,
                "equivalent": mode_equivalent,
            },
        ]
    payload = {"cpu_count": cpu_count, "scenarios": [scenario]}
    if with_scenario_sweep:
        payload["scenario_sweep"] = [
            {
                "name": name,
                "num_envs": 12,
                "speedup": scenario_speedup,
                "equivalent": scenario_equivalent,
            }
            for name in ("scenario_slate", "scenario_lts")
        ]
    return payload


BASELINE = {
    "scenarios": {"smoke_cross_city": {"min_speedup": 1.6}},
    "workers": {"2": {"min_speedup_vs_sequential": 1.3, "min_cpus": 2}},
    "mode_sweep": {
        "shard_parallel": {
            "num_workers": 2,
            "min_speedup_vs_sharded": 1.25,
            "min_cpus": 2,
        }
    },
    "scenario_sweep": {
        "scenario_slate": {"min_speedup": 1.3},
        "scenario_lts": {"min_speedup": 1.5},
    },
}


class TestCheckPayload:
    def test_passes_when_floors_hold(self, gate):
        failures = gate.check_payload(rollout_payload(), BASELINE, 0.8, "rollout")
        assert failures == []

    def test_fails_on_scenario_regression(self, gate):
        failures = gate.check_payload(
            rollout_payload(speedup=1.1), BASELINE, 0.8, "rollout"
        )
        assert any("smoke_cross_city" in f and "1.1" in f for f in failures)

    def test_tolerance_band_absorbs_jitter(self, gate):
        # floor 1.6 x tolerance 0.8 = 1.28: 1.3 passes, 1.2 fails
        assert gate.check_payload(rollout_payload(speedup=1.3), BASELINE, 0.8, "r") == []
        assert gate.check_payload(rollout_payload(speedup=1.2), BASELINE, 0.8, "r")

    def test_fails_on_worker_regression(self, gate):
        failures = gate.check_payload(
            rollout_payload(worker_speedup=0.9), BASELINE, 0.8, "rollout"
        )
        assert any("workers=2" in f for f in failures)

    def test_worker_floor_skipped_on_single_core(self, gate, capsys):
        failures = gate.check_payload(
            rollout_payload(worker_speedup=0.5, cpu_count=1), BASELINE, 0.8, "rollout"
        )
        assert failures == []
        assert "skip" in capsys.readouterr().out

    def test_fails_when_equivalence_not_verified(self, gate):
        failures = gate.check_payload(
            rollout_payload(equivalent=False), BASELINE, 0.8, "rollout"
        )
        assert any("equivalence" in f for f in failures)

    def test_fails_on_missing_scenario(self, gate):
        failures = gate.check_payload(
            {"cpu_count": 4, "scenarios": []}, BASELINE, 0.8, "rollout"
        )
        assert any("missing" in f for f in failures)


class TestModeSweepFloors:
    def test_passes_when_shard_parallel_beats_sharded(self, gate):
        assert gate.check_payload(rollout_payload(), BASELINE, 0.8, "rollout") == []

    def test_fails_when_shard_parallel_regresses(self, gate):
        # floor 1.25 x tolerance 0.8 = 1.0: a 0.9x head-to-head fails
        failures = gate.check_payload(
            rollout_payload(shard_parallel_vs_sharded=0.9), BASELINE, 0.8, "rollout"
        )
        assert any("mode=shard_parallel" in f and "0.9" in f for f in failures)

    def test_mode_floor_skipped_on_single_core(self, gate, capsys):
        failures = gate.check_payload(
            rollout_payload(shard_parallel_vs_sharded=0.5, worker_speedup=2.0, cpu_count=1),
            BASELINE,
            0.8,
            "rollout",
        )
        assert failures == []
        assert "skip rollout/mode=shard_parallel" in capsys.readouterr().out

    def test_mode_equivalence_enforced_even_on_single_core(self, gate):
        """Bit-identity does not depend on cores: a false equivalence flag
        in the mode sweep fails the gate on any machine."""
        failures = gate.check_payload(
            rollout_payload(mode_equivalent=False, cpu_count=1),
            BASELINE,
            0.8,
            "rollout",
        )
        assert any("mode=sharded" in f and "equivalence" in f for f in failures)
        assert any("mode=shard_parallel" in f and "equivalence" in f for f in failures)

    def test_fails_when_mode_missing_from_sweep(self, gate):
        failures = gate.check_payload(
            rollout_payload(with_mode_sweep=False), BASELINE, 0.8, "rollout"
        )
        assert any("mode=shard_parallel" in f and "missing" in f for f in failures)

    def test_floor_applies_only_to_its_worker_count(self, gate):
        """A sweep also carrying workers=1 and oversubscribed workers=4
        records (which structurally cannot clear a 2-worker floor) must
        still pass when the workers=2 record does."""
        payload = rollout_payload()
        payload["scenarios"][0]["mode_sweep"].extend(
            [
                {
                    "mode": "shard_parallel",
                    "num_workers": 1,
                    "speedup_vs_sequential": 2.0,
                    "speedup_vs_sharded": 1.02,
                    "equivalent": True,
                },
                {
                    "mode": "shard_parallel",
                    "num_workers": 4,
                    "speedup_vs_sequential": 1.8,
                    "speedup_vs_sharded": 0.9,
                    "equivalent": True,
                },
            ]
        )
        assert gate.check_payload(payload, BASELINE, 0.8, "rollout") == []


class TestScenarioSweepFloors:
    def test_passes_when_floors_hold(self, gate):
        assert gate.check_payload(rollout_payload(), BASELINE, 0.8, "rollout") == []

    def test_fails_on_scenario_case_regression(self, gate):
        # floor 1.5 x tolerance 0.8 = 1.2: a 1.1x scenario case fails
        failures = gate.check_payload(
            rollout_payload(scenario_speedup=1.1), BASELINE, 0.8, "rollout"
        )
        assert any("scenario_sweep/scenario_lts" in f and "1.1" in f for f in failures)

    def test_equivalence_enforced_even_on_single_core(self, gate):
        """Scenario populations verify bit-identity on any machine — a
        false flag fails the gate regardless of cpu_count."""
        failures = gate.check_payload(
            rollout_payload(scenario_equivalent=False, cpu_count=1),
            BASELINE,
            0.8,
            "rollout",
        )
        assert any(
            "scenario_sweep/scenario_slate" in f and "equivalence" in f
            for f in failures
        )

    def test_fails_when_case_missing_from_sweep(self, gate):
        failures = gate.check_payload(
            rollout_payload(with_scenario_sweep=False), BASELINE, 0.8, "rollout"
        )
        assert any(
            "scenario_sweep/scenario_slate" in f and "missing" in f for f in failures
        )

    def test_uncommitted_cases_only_checked_for_equivalence(self, gate):
        """A swept case without a committed floor (e.g. a new family being
        explored) passes on speed but still must verify equivalence."""
        payload = rollout_payload()
        payload["scenario_sweep"].append(
            {"name": "scenario_new_family", "speedup": 0.5, "equivalent": True}
        )
        assert gate.check_payload(payload, BASELINE, 0.8, "rollout") == []
        payload["scenario_sweep"][-1]["equivalent"] = False
        failures = gate.check_payload(payload, BASELINE, 0.8, "rollout")
        assert any("scenario_new_family" in f for f in failures)


def train_payload(
    pipelined_speedup=1.5,
    pipelined_equivalent=True,
    cpu_count=4,
    with_pipelined=True,
):
    payload = {
        "cpu_count": cpu_count,
        "mode": "smoke",
        "scenarios": [
            {"name": "smoke_ppo", "speedup": 3.5, "equivalent": True},
            {"name": "smoke_sadae", "speedup": 1.5, "equivalent": True},
        ],
    }
    if with_pipelined:
        payload["pipelined"] = {
            "name": "smoke_pipelined",
            "kind": "pipelined_train",
            "strict_s": 1.0,
            "pipelined_s": round(1.0 / pipelined_speedup, 6),
            "speedup": pipelined_speedup,
            "equivalent": pipelined_equivalent,
        }
    return payload


class TestRun:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_run_with_committed_baselines_shape(self, gate, tmp_path):
        """The committed baselines file parses and gates a healthy artifact."""
        baselines_path = ROOT / ".github" / "bench_baselines.json"
        baselines = json.loads(baselines_path.read_text())
        assert "rollout" in baselines and "train" in baselines
        rollout = self.write(tmp_path, "r.json", rollout_payload())
        train = self.write(tmp_path, "t.json", train_payload())
        assert gate.run(rollout, train, baselines_path) == 0

    def test_run_fails_on_missing_artifact(self, gate, tmp_path):
        rollout = self.write(tmp_path, "r.json", rollout_payload())
        assert (
            gate.run(rollout, tmp_path / "absent.json", ROOT / ".github" / "bench_baselines.json")
            == 1
        )


class TestPipelinedFloor:
    """The train bench's 'pipelined' singleton: cpu-gated speed floor,
    machine-independent equivalence (seeded reproducibility) flag."""

    BASELINE = {
        "scenarios": {
            "smoke_ppo": {"min_speedup": 2.0},
            "smoke_sadae": {"min_speedup": 1.2},
        },
        "pipelined": {"min_speedup": 1.05, "min_cpus": 2},
    }

    def test_passes_when_floor_holds(self, gate):
        assert gate.check_payload(train_payload(), self.BASELINE, 0.8, "train") == []

    def test_fails_on_overlap_regression(self, gate):
        # floor 1.05 x tolerance 0.8 = 0.84: a 0.8x overlap fails
        failures = gate.check_payload(
            train_payload(pipelined_speedup=0.8), self.BASELINE, 0.8, "train"
        )
        assert any("pipelined" in f and "0.8" in f for f in failures)

    def test_speed_floor_skipped_on_single_core(self, gate, capsys):
        """One CPU has nothing to overlap: the speed floor is skipped,
        not failed."""
        failures = gate.check_payload(
            train_payload(pipelined_speedup=0.6, cpu_count=1),
            self.BASELINE, 0.8, "train",
        )
        assert failures == []
        assert "skip train/pipelined" in capsys.readouterr().out

    def test_equivalence_enforced_even_on_single_core(self, gate):
        """Seeded reproducibility is machine-independent: a false flag
        fails the gate regardless of cpu_count."""
        failures = gate.check_payload(
            train_payload(pipelined_equivalent=False, cpu_count=1),
            self.BASELINE, 0.8, "train",
        )
        assert any("pipelined" in f and "equivalence" in f for f in failures)

    def test_missing_section_fails(self, gate):
        failures = gate.check_payload(
            train_payload(with_pipelined=False), self.BASELINE, 0.8, "train"
        )
        assert any("pipelined: missing" in f for f in failures)

    def test_committed_baselines_carry_pipelined_floors(self, gate):
        baselines = json.loads(
            (ROOT / ".github" / "bench_baselines.json").read_text()
        )
        for mode in ("smoke", "full"):
            floors = baselines["train"][mode]["pipelined"]
            assert floors["min_speedup"] > 1.0
            assert floors["min_cpus"] == 2


def serve_payload(
    speedup=2.0,
    equivalent=True,
    cpu_count=4,
    gateway_rps=1500.0,
    gateway_equivalent=True,
    queue_wait_p99_ms=2.5,
    compute_p99_ms=1.0,
    max_queue_depth=8,
    soak_sessions=3000,
    soak_evictions=1700,
    rss_growth_mb=0.5,
    rss_tracked=True,
):
    return {
        "cpu_count": cpu_count,
        "mode": "smoke",
        "scenarios": [
            {
                "name": name,
                "speedup": speedup,
                "p50_ms": 0.4,
                "p99_ms": 0.9,
                "throughput_rps": 10000.0,
                "equivalent": equivalent,
            }
            for name in ("sessions_2", "sessions_4", "sessions_8")
        ],
        "gateway": {
            "name": "gateway",
            "throughput_rps": gateway_rps,
            "p50_ms": 2.0,
            "p99_ms": 4.0,
            "queue_wait_p50_ms": 1.0,
            "queue_wait_p99_ms": queue_wait_p99_ms,
            "compute_p50_ms": 0.5,
            "compute_p99_ms": compute_p99_ms,
            "max_queue_depth": max_queue_depth,
            "equivalent": gateway_equivalent,
        },
        "soak": {
            "name": "soak",
            "sessions_opened": soak_sessions,
            "evictions": soak_evictions,
            "evicted_lru": soak_evictions,
            "evicted_ttl": 0,
            "rss_growth_mb": rss_growth_mb if rss_tracked else None,
            "rss_tracked": rss_tracked,
        },
    }


class TestServeFloors:
    """The serving-bench artifact rides the same scenarios gate."""

    #: The committed smoke floors for BENCH_serve.json.
    BASELINE = {
        "scenarios": {
            "sessions_2": {"min_speedup": 1.0},
            "sessions_4": {"min_speedup": 1.2},
            "sessions_8": {"min_speedup": 1.5},
        },
        "gateway": {
            "min_throughput_rps": 100.0,
            "min_max_queue_depth": 1,
            "max_queue_wait_p99_ms": 100.0,
            "max_compute_p99_ms": 50.0,
        },
        "soak": {
            "min_sessions_opened": 3000,
            "min_evictions": 1000,
            "max_rss_growth_mb": 64.0,
        },
    }

    def test_passes_when_floors_hold(self, gate):
        assert gate.check_payload(serve_payload(), self.BASELINE, 0.8, "serve") == []

    def test_fails_on_throughput_regression(self, gate):
        # floor 1.5 x tolerance 0.8 = 1.2: a 1.1x microbatching win fails
        failures = gate.check_payload(
            serve_payload(speedup=1.1), self.BASELINE, 0.8, "serve"
        )
        assert any("sessions_8" in f and "1.1" in f for f in failures)

    def test_fails_when_parity_not_verified(self, gate):
        failures = gate.check_payload(
            serve_payload(equivalent=False), self.BASELINE, 0.8, "serve"
        )
        assert any("equivalence" in f for f in failures)

    def test_committed_baselines_carry_serve_floors(self, gate):
        baselines = json.loads(
            (ROOT / ".github" / "bench_baselines.json").read_text()
        )
        assert "serve" in baselines
        for mode in ("smoke", "full"):
            assert baselines["serve"][mode]["scenarios"]
            gateway = baselines["serve"][mode]["gateway"]
            assert "min_throughput_rps" in gateway
            assert gateway["min_max_queue_depth"] >= 1
            assert gateway["max_queue_wait_p99_ms"] > 0
            assert gateway["max_compute_p99_ms"] > 0
            soak = baselines["serve"][mode]["soak"]
            assert soak["min_evictions"] > 0
            assert soak["max_rss_growth_mb"] > 0

    def test_gateway_floor_and_equivalence(self, gate):
        # floor 100 x tolerance 0.8 = 80: 90 rps passes, 50 fails
        assert gate.check_payload(
            serve_payload(gateway_rps=90.0), self.BASELINE, 0.8, "serve"
        ) == []
        failures = gate.check_payload(
            serve_payload(gateway_rps=50.0), self.BASELINE, 0.8, "serve"
        )
        assert any("gateway" in f and "throughput_rps" in f for f in failures)
        failures = gate.check_payload(
            serve_payload(gateway_equivalent=False), self.BASELINE, 0.8, "serve"
        )
        assert any("gateway" in f and "equivalence" in f for f in failures)

    def test_gateway_latency_ceilings(self, gate):
        """max_* ceilings are loosened by the tolerance band upward:
        ceiling 100 / tolerance 0.8 = 125, so 120 passes and 130 fails."""
        assert gate.check_payload(
            serve_payload(queue_wait_p99_ms=120.0), self.BASELINE, 0.8, "serve"
        ) == []
        failures = gate.check_payload(
            serve_payload(queue_wait_p99_ms=130.0), self.BASELINE, 0.8, "serve"
        )
        assert any("queue_wait_p99_ms" in f and "ceiling" in f for f in failures)
        failures = gate.check_payload(
            serve_payload(compute_p99_ms=90.0), self.BASELINE, 0.8, "serve"
        )
        assert any("compute_p99_ms" in f and "ceiling" in f for f in failures)

    def test_gateway_ceiling_fails_when_metric_missing(self, gate):
        """An artifact predating the instrumentation must not pass a
        committed ceiling by omission."""
        payload = serve_payload()
        del payload["gateway"]["queue_wait_p99_ms"]
        failures = gate.check_payload(payload, self.BASELINE, 0.8, "serve")
        assert any("queue_wait_p99_ms None" in f for f in failures)

    def test_gateway_queue_depth_floor(self, gate):
        """min_max_queue_depth proves the bench actually queued work:
        a depth of 0 means the latency split measured nothing."""
        failures = gate.check_payload(
            serve_payload(max_queue_depth=0), self.BASELINE, 0.8, "serve"
        )
        assert any("max_queue_depth" in f for f in failures)

    def test_soak_floors(self, gate):
        # min_evictions 1000 x tolerance 0.8 = 800
        failures = gate.check_payload(
            serve_payload(soak_evictions=700), self.BASELINE, 0.8, "serve"
        )
        assert any("soak" in f and "evictions" in f for f in failures)
        failures = gate.check_payload(
            serve_payload(soak_sessions=100), self.BASELINE, 0.8, "serve"
        )
        assert any("soak" in f and "sessions_opened" in f for f in failures)

    def test_soak_rss_ceiling_is_absolute(self, gate):
        """No tolerance band on the leak ceiling: 64 MiB means 64 MiB."""
        assert gate.check_payload(
            serve_payload(rss_growth_mb=63.0), self.BASELINE, 0.8, "serve"
        ) == []
        failures = gate.check_payload(
            serve_payload(rss_growth_mb=65.0), self.BASELINE, 0.8, "serve"
        )
        assert any("rss_growth_mb" in f for f in failures)

    def test_soak_rss_skipped_when_untracked(self, gate, capsys):
        """Off-Linux artifacts record rss_tracked=false; the ceiling is
        skipped, not failed (the eviction floors still apply)."""
        failures = gate.check_payload(
            serve_payload(rss_tracked=False), self.BASELINE, 0.8, "serve"
        )
        assert failures == []
        assert "skip serve/soak/rss" in capsys.readouterr().out

    def test_missing_sections_fail(self, gate):
        payload = serve_payload()
        del payload["gateway"], payload["soak"]
        failures = gate.check_payload(payload, self.BASELINE, 0.8, "serve")
        assert any("gateway: missing" in f for f in failures)
        assert any("soak: missing" in f for f in failures)

    def test_run_gates_serve_artifact(self, gate, tmp_path):
        """run() checks the serve artifact when handed a path to one."""
        baselines_path = ROOT / ".github" / "bench_baselines.json"
        write = TestRun().write
        rollout = write(tmp_path, "r.json", rollout_payload())
        train = write(tmp_path, "t.json", train_payload())
        good = write(tmp_path, "s.json", serve_payload())
        assert gate.run(rollout, train, baselines_path, serve_path=good) == 0
        bad = write(tmp_path, "s_bad.json", serve_payload(speedup=0.5))
        assert gate.run(rollout, train, baselines_path, serve_path=bad) == 1
        assert (
            gate.run(
                rollout, train, baselines_path, serve_path=tmp_path / "absent.json"
            )
            == 1
        )

"""Tests for DIRECT / DR-UNI / DR-OSI trainers and samplers."""

import numpy as np
import pytest

from repro.baselines import (
    dpr_ensemble_sampler,
    dpr_single_sampler,
    lts_single_sampler,
    lts_task_sampler,
    make_direct_trainer,
    make_dr_osi_policy,
    make_dr_osi_trainer,
    make_dr_uni_trainer,
    make_mlp_policy,
)
from repro.core import dpr_small_config, lts_small_config
from repro.envs import DPRConfig, DPRWorld, collect_dpr_dataset, make_lts_task
from repro.rl import MLPActorCritic, RecurrentActorCritic
from repro.sim import SimulatorLearnerConfig, build_simulator_set


@pytest.fixture(scope="module")
def lts_task():
    return make_lts_task("LTS2", num_users=15, horizon=12, seed=0)


@pytest.fixture(scope="module")
def dpr_setup():
    world = DPRWorld(DPRConfig(num_cities=2, drivers_per_city=10, horizon=10, seed=61))
    dataset = collect_dpr_dataset(world, episodes=2)
    ensemble = build_simulator_set(
        dataset,
        num_members=3,
        base_config=SimulatorLearnerConfig(hidden_sizes=(16, 16), epochs=10),
        seed=0,
    )
    return dataset, ensemble


class TestPolicyFactories:
    def test_mlp_policy_type_and_sizes(self):
        config = lts_small_config()
        policy = make_mlp_policy(2, 1, config)
        assert isinstance(policy, MLPActorCritic)
        assert policy.actor.sizes[1:-1] == list(config.head_hidden)

    def test_dr_osi_policy_has_lstm_no_context(self):
        config = lts_small_config()
        policy = make_dr_osi_policy(2, 1, config)
        assert isinstance(policy, RecurrentActorCritic)
        assert policy.context_dim == 0
        assert policy.extractor.hidden_size == config.lstm_hidden


class TestLTSSamplers:
    def test_task_sampler_covers_set(self, lts_task):
        sampler = lts_task_sampler(lts_task)
        rng = np.random.default_rng(0)
        seen = {sampler(rng).group_id for _ in range(60)}
        assert len(seen) > 3

    def test_single_sampler_is_fixed(self, lts_task):
        sampler = lts_single_sampler(lts_task, index=2)
        rng = np.random.default_rng(0)
        envs = {id(sampler(rng)) for _ in range(5)}
        assert len(envs) == 1


class TestDPRSamplers:
    def test_ensemble_sampler_varies_member_and_group(self, dpr_setup):
        dataset, ensemble = dpr_setup
        sampler = dpr_ensemble_sampler(ensemble, dataset, truncate_horizon=4)
        rng = np.random.default_rng(0)
        simulators = set()
        groups = set()
        for _ in range(30):
            env = sampler(rng)
            simulators.add(id(env.simulator))
            groups.add(env.group_id)
        assert len(simulators) == 3
        assert len(groups) == 2

    def test_single_sampler_fixes_member(self, dpr_setup):
        dataset, ensemble = dpr_setup
        sampler = dpr_single_sampler(ensemble[0], dataset, truncate_horizon=4)
        rng = np.random.default_rng(0)
        assert all(sampler(rng).simulator is ensemble[0] for _ in range(10))

    def test_truncate_horizon_respected(self, dpr_setup):
        dataset, ensemble = dpr_setup
        sampler = dpr_ensemble_sampler(ensemble, dataset, truncate_horizon=3)
        env = sampler(np.random.default_rng(0))
        assert env.horizon == 3


class TestTrainerFactories:
    def test_direct_trainer_runs_lts(self, lts_task):
        trainer = make_direct_trainer(2, 1, lts_single_sampler(lts_task, 0), lts_small_config())
        metrics = trainer.train_iteration()
        assert np.isfinite(metrics["reward"])

    def test_dr_uni_trainer_runs_lts(self, lts_task):
        trainer = make_dr_uni_trainer(2, 1, lts_task_sampler(lts_task), lts_small_config())
        metrics = trainer.train_iteration()
        assert np.isfinite(metrics["reward"])

    def test_dr_osi_trainer_runs_lts(self, lts_task):
        trainer = make_dr_osi_trainer(2, 1, lts_task_sampler(lts_task), lts_small_config())
        metrics = trainer.train_iteration()
        assert np.isfinite(metrics["reward"])

    def test_dr_uni_trainer_runs_dpr(self, dpr_setup):
        dataset, ensemble = dpr_setup
        config = dpr_small_config()
        sampler = dpr_ensemble_sampler(ensemble, dataset, truncate_horizon=config.truncate_horizon)
        trainer = make_dr_uni_trainer(dataset.state_dim, dataset.action_dim, sampler, config)
        metrics = trainer.train_iteration()
        assert np.isfinite(metrics["reward"])

    def test_dr_uni_learning_improves_reward_on_fixed_env(self, lts_task):
        """Short sanity training run: reward should not collapse."""
        config = lts_small_config()
        trainer = make_dr_uni_trainer(2, 1, lts_single_sampler(lts_task, 0), config)
        trainer.train(8)
        rewards = trainer.logger.series("reward")
        assert np.mean(rewards[-2:]) >= np.mean(rewards[:2]) - 5.0

"""Tests for WideDeep and DeepFM supervised recommenders."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import DeepFMRecommender, SupervisedConfig, WideDeepRecommender
from repro.envs import DPRConfig, DPRWorld, collect_dpr_dataset


@pytest.fixture(scope="module")
def dpr_data():
    world = DPRWorld(DPRConfig(num_cities=2, drivers_per_city=12, horizon=10, seed=51))
    return world, collect_dpr_dataset(world, episodes=2)


MODEL_CLASSES = [WideDeepRecommender, DeepFMRecommender]


@pytest.mark.parametrize("model_class", MODEL_CLASSES)
class TestSharedBehaviour:
    def test_fit_reduces_loss(self, model_class, dpr_data):
        _, dataset = dpr_data
        model = model_class(dataset.state_dim, dataset.action_dim, SupervisedConfig(epochs=15, seed=0))
        losses = model.fit(dataset)
        assert losses[-1] < losses[0]

    def test_predict_shape(self, model_class, dpr_data):
        _, dataset = dpr_data
        model = model_class(dataset.state_dim, dataset.action_dim, SupervisedConfig(epochs=3, seed=0))
        model.fit(dataset)
        s, a, _ = dataset.transition_pairs()
        assert model.predict(s[:9], a[:9]).shape == (9,)

    def test_recommend_within_logged_range(self, model_class, dpr_data):
        _, dataset = dpr_data
        model = model_class(dataset.state_dim, dataset.action_dim, SupervisedConfig(epochs=3, seed=0))
        model.fit(dataset)
        s, a, _ = dataset.transition_pairs()
        recommendations = model.recommend(s[:20])
        low, high = a.min(axis=0), a.max(axis=0)
        assert np.all(recommendations >= low - 1e-9)
        assert np.all(recommendations <= high + 1e-9)

    def test_recommend_maximises_model_score(self, model_class, dpr_data):
        _, dataset = dpr_data
        model = model_class(dataset.state_dim, dataset.action_dim, SupervisedConfig(epochs=5, seed=0))
        model.fit(dataset)
        s, _, _ = dataset.transition_pairs()
        state = s[:1]
        chosen = model.recommend(state)
        chosen_score = model.predict(state, chosen)
        for candidate in model._action_grid[:: max(len(model._action_grid) // 10, 1)]:
            other = model.predict(state, candidate[None])
            assert chosen_score >= other - 1e-9

    def test_act_fn_protocol(self, model_class, dpr_data):
        _, dataset = dpr_data
        model = model_class(dataset.state_dim, dataset.action_dim, SupervisedConfig(epochs=2, seed=0))
        model.fit(dataset)
        act_fn = model.as_act_fn()
        act_fn.reset(4)
        s, _, _ = dataset.transition_pairs()
        actions = act_fn(s[:4], 0)
        assert actions.shape == (4, dataset.action_dim)

    def test_learns_synthetic_immediate_reward(self, model_class):
        """Both models must fit a simple known r(s, a) function."""
        from repro.sim.dataset import GroupTrajectories, TrajectoryDataset

        rng = np.random.default_rng(0)
        e, t, n, ds, da = 1, 20, 30, 3, 2
        states = rng.standard_normal((e, t + 1, n, ds))
        actions = rng.uniform(0, 1, (e, t, n, da))
        rewards = 2.0 * actions[..., 0] - 1.0 * actions[..., 1] + 0.5 * states[:, :-1, :, 0]
        dataset = TrajectoryDataset(
            [
                GroupTrajectories(
                    group_id=0,
                    states=states,
                    actions=actions,
                    feedback=np.zeros((e, t, n, 1)),
                    rewards=rewards,
                )
            ]
        )
        model = model_class(ds, da, SupervisedConfig(epochs=60, seed=0, learning_rate=3e-3))
        model.fit(dataset)
        # Best action under the true r: a0 at max, a1 at min of the logged range.
        recommendations = model.recommend(rng.standard_normal((10, ds)))
        flat_actions = actions.reshape(-1, da)
        assert recommendations[:, 0].mean() > 0.7 * flat_actions[:, 0].max()
        assert recommendations[:, 1].mean() < flat_actions[:, 1].min() + 0.3


class TestWideDeepSpecifics:
    def test_cross_features_shape(self, dpr_data):
        _, dataset = dpr_data
        model = WideDeepRecommender(dataset.state_dim, dataset.action_dim, SupervisedConfig(seed=0))
        inputs = nn.Tensor(np.random.default_rng(0).standard_normal((5, dataset.state_dim + 2)))
        crosses = model._cross_features(inputs)
        assert crosses.shape == (5, dataset.state_dim * 2)

    def test_wide_and_deep_both_trained(self, dpr_data):
        _, dataset = dpr_data
        model = WideDeepRecommender(dataset.state_dim, dataset.action_dim, SupervisedConfig(epochs=3, seed=0))
        wide_before = model.wide.weight.data.copy()
        deep_before = model.deep.layers[0].weight.data.copy()
        model.fit(dataset)
        assert not np.allclose(wide_before, model.wide.weight.data)
        assert not np.allclose(deep_before, model.deep.layers[0].weight.data)


class TestDeepFMSpecifics:
    def test_fm_term_matches_manual(self):
        """The O(F·k) identity must equal the explicit pairwise sum."""
        config = SupervisedConfig(embedding_dim=3, seed=0)
        model = DeepFMRecommender(2, 1, config)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(3)
        v = model.field_embeddings.data
        scaled = x[:, None] * v
        manual = sum(
            float(scaled[i] @ scaled[j]) for i in range(3) for j in range(i + 1, 3)
        )
        sum_embed = scaled.sum(axis=0)
        identity = 0.5 * float(sum_embed @ sum_embed - (scaled * scaled).sum())
        np.testing.assert_allclose(identity, manual, atol=1e-10)

    def test_embeddings_receive_gradients(self, dpr_data):
        _, dataset = dpr_data
        model = DeepFMRecommender(dataset.state_dim, dataset.action_dim, SupervisedConfig(seed=0))
        inputs = nn.Tensor(
            np.random.default_rng(0).standard_normal((4, dataset.state_dim + 2))
        )
        model.forward_score(inputs).sum().backward()
        assert model.field_embeddings.grad is not None
        assert np.any(model.field_embeddings.grad != 0)

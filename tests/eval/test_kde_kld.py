"""Tests for KDE and the Eq. (9) KLD metric."""

import numpy as np
import pytest
from scipy import stats

from repro.eval import GaussianKDE, dataset_kld, gaussian_kld

RNG = np.random.default_rng(8)


class TestGaussianKDE:
    def test_matches_scipy_1d(self):
        data = RNG.standard_normal(200)
        ours = GaussianKDE(data)
        scipy_kde = stats.gaussian_kde(data)
        points = np.linspace(-2, 2, 9)
        np.testing.assert_allclose(ours.pdf(points), scipy_kde(points), rtol=1e-6)

    def test_matches_scipy_2d(self):
        data = RNG.standard_normal((300, 2)) @ np.array([[1.0, 0.3], [0.0, 0.7]])
        ours = GaussianKDE(data)
        scipy_kde = stats.gaussian_kde(data.T)
        points = RNG.standard_normal((20, 2))
        np.testing.assert_allclose(ours.pdf(points), scipy_kde(points.T), rtol=1e-5)

    def test_density_integrates_to_one_1d(self):
        data = RNG.standard_normal(100)
        kde = GaussianKDE(data)
        grid = np.linspace(-6, 6, 2000)
        integral = np.trapezoid(kde.pdf(grid), grid)
        np.testing.assert_allclose(integral, 1.0, atol=1e-3)

    def test_logpdf_finite_far_from_data(self):
        kde = GaussianKDE(RNG.standard_normal(50))
        assert np.isfinite(kde.logpdf(np.array([100.0]))[0])

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            GaussianKDE(np.array([1.0]))

    def test_degenerate_dimension_regularised(self):
        data = np.column_stack([RNG.standard_normal(50), np.zeros(50)])
        kde = GaussianKDE(data)  # must not raise
        assert np.isfinite(kde.logpdf(data[:5])).all()


class TestDatasetKLD:
    def test_identical_datasets_near_zero(self):
        data = RNG.standard_normal((300, 1))
        assert abs(dataset_kld(data, data.copy())) < 1e-9

    def test_same_distribution_small(self):
        a = RNG.standard_normal((400, 1))
        b = RNG.standard_normal((400, 1))
        assert abs(dataset_kld(a, b)) < 0.15

    def test_different_distributions_large(self):
        a = RNG.standard_normal((300, 1))
        b = RNG.standard_normal((300, 1)) + 5.0
        assert dataset_kld(a, b) > 1.0

    def test_orders_with_distance(self):
        a = RNG.standard_normal((300, 1))
        near = RNG.standard_normal((300, 1)) + 1.0
        far = RNG.standard_normal((300, 1)) + 4.0
        assert dataset_kld(a, far) > dataset_kld(a, near)

    def test_max_points_subsampling(self):
        a = RNG.standard_normal((2000, 2))
        b = RNG.standard_normal((2000, 2)) + 1.0
        full = dataset_kld(a, b, max_points=300)
        assert np.isfinite(full) and full > 0

    def test_multidimensional(self):
        a = RNG.standard_normal((300, 3))
        b = RNG.standard_normal((300, 3)) + np.array([2.0, 0.0, 0.0])
        assert dataset_kld(a, b) > 0.5


class TestGaussianKLD:
    def test_identical_is_zero(self):
        assert gaussian_kld(1.0, 2.0, 1.0, 2.0) == 0.0

    def test_matches_closed_form_1d(self):
        # KL(N(0,1) || N(1,2)) = log 2 + (1 + 1)/8 - 1/2
        expected = np.log(2.0) + 2.0 / 8.0 - 0.5
        np.testing.assert_allclose(gaussian_kld(0.0, 1.0, 1.0, 2.0), expected, atol=1e-12)

    def test_asymmetry(self):
        assert gaussian_kld(0.0, 1.0, 3.0, 2.0) != gaussian_kld(3.0, 2.0, 0.0, 1.0)

    def test_multivariate_sums_dims(self):
        single = gaussian_kld(0.0, 1.0, 1.0, 1.0)
        double = gaussian_kld(np.zeros(2), np.ones(2), np.ones(2), np.ones(2))
        np.testing.assert_allclose(double, 2 * single, atol=1e-12)

    def test_nonpositive_std_raises(self):
        with pytest.raises(ValueError):
            gaussian_kld(0.0, 0.0, 0.0, 1.0)

    def test_against_monte_carlo(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(0.5, 1.5, 200_000)
        log_p = stats.norm.logpdf(samples, 0.5, 1.5)
        log_q = stats.norm.logpdf(samples, -0.5, 0.8)
        mc = float(np.mean(log_p - log_q))
        np.testing.assert_allclose(gaussian_kld(0.5, 1.5, -0.5, 0.8), mc, atol=0.02)

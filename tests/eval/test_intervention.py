"""Tests for the Fig. 10 intervention clustering."""

import numpy as np
import pytest

from repro.envs import DPRConfig, DPRWorld, collect_dpr_dataset
from repro.eval import cluster_driver_responses, consistent_violators
from repro.sim import SimulatorLearnerConfig, build_simulator_set


@pytest.fixture(scope="module")
def setup():
    world = DPRWorld(DPRConfig(num_cities=2, drivers_per_city=15, horizon=10, seed=91))
    dataset = collect_dpr_dataset(world, episodes=2)
    ensemble = build_simulator_set(
        dataset,
        num_members=3,
        base_config=SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=30),
        seed=0,
    )
    return dataset, ensemble


class TestClusterDriverResponses:
    def test_result_shapes(self, setup):
        dataset, ensemble = setup
        result = cluster_driver_responses(ensemble, dataset.groups[0], 0, num_clusters=4)
        assert result.centers.shape == (4, len(result.deltas))
        assert result.labels.shape == (15,)
        assert result.cluster_slopes.shape == (4,)

    def test_baseline_subtraction(self, setup):
        """Response vectors are relative to the smallest ΔB: centers start ~0."""
        dataset, ensemble = setup
        result = cluster_driver_responses(ensemble, dataset.groups[0], 0)
        np.testing.assert_allclose(result.centers[:, 0], 0.0, atol=1e-6)

    def test_violating_fraction_in_unit_interval(self, setup):
        dataset, ensemble = setup
        result = cluster_driver_responses(ensemble, dataset.groups[0], 0)
        assert 0.0 <= result.violating_fraction <= 1.0

    def test_violating_clusters_have_nonpositive_slope(self, setup):
        dataset, ensemble = setup
        result = cluster_driver_responses(ensemble, dataset.groups[0], 0)
        for cluster in result.violating_clusters():
            assert result.cluster_slopes[cluster] <= 0.0

    def test_custom_deltas(self, setup):
        dataset, ensemble = setup
        deltas = np.linspace(-0.2, 0.2, 5)
        result = cluster_driver_responses(
            ensemble, dataset.groups[0], 0, deltas=deltas
        )
        np.testing.assert_array_equal(result.deltas, deltas)

    def test_deterministic_given_seed(self, setup):
        dataset, ensemble = setup
        r1 = cluster_driver_responses(ensemble, dataset.groups[0], 0, seed=3)
        r2 = cluster_driver_responses(ensemble, dataset.groups[0], 0, seed=3)
        np.testing.assert_array_equal(r1.labels, r2.labels)


class TestConsistentViolators:
    def test_intersection_semantics(self, setup):
        dataset, ensemble = setup
        results = [
            cluster_driver_responses(ensemble, dataset.groups[0], k)
            for k in range(len(ensemble))
        ]
        always_bad = consistent_violators(results)
        assert always_bad.shape == (15,)
        # Consistency: anyone flagged must be flagged in every member.
        for result in results:
            member_bad = np.isin(result.labels, result.violating_clusters())
            assert np.all(member_bad[always_bad])

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            consistent_violators([])

    def test_fewer_consistent_than_single(self, setup):
        dataset, ensemble = setup
        results = [
            cluster_driver_responses(ensemble, dataset.groups[0], k)
            for k in range(len(ensemble))
        ]
        single = np.isin(results[0].labels, results[0].violating_clusters())
        consistent = consistent_violators(results)
        assert consistent.sum() <= single.sum()

"""Tests for bootstrap / permutation comparison utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import ComparisonResult, bootstrap_mean_ci, paired_comparison

RNG = np.random.default_rng(12)


class TestBootstrapMeanCI:
    def test_mean_inside_ci(self):
        values = RNG.normal(5.0, 1.0, 200)
        mean, low, high = bootstrap_mean_ci(values, seed=0)
        assert low <= mean <= high

    def test_ci_covers_true_mean_typically(self):
        covered = 0
        for trial in range(20):
            values = np.random.default_rng(trial).normal(3.0, 2.0, 100)
            _, low, high = bootstrap_mean_ci(values, seed=trial)
            covered += int(low <= 3.0 <= high)
        assert covered >= 16  # ~95% nominal coverage, loose check

    def test_ci_shrinks_with_sample_size(self):
        small = RNG.normal(0, 1, 30)
        large = RNG.normal(0, 1, 3000)
        _, lo_s, hi_s = bootstrap_mean_ci(small, seed=0)
        _, lo_l, hi_l = bootstrap_mean_ci(large, seed=0)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_too_few_observations_raises(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([1.0]))

    def test_deterministic_given_seed(self):
        values = RNG.normal(0, 1, 50)
        assert bootstrap_mean_ci(values, seed=3) == bootstrap_mean_ci(values, seed=3)


class TestPairedComparison:
    def test_clear_difference_significant(self):
        a = RNG.normal(10.0, 1.0, 100)
        b = a - 2.0 + RNG.normal(0, 0.1, 100)
        result = paired_comparison(a, b, seed=0)
        assert result.significant
        assert result.mean_difference > 1.5
        assert result.p_value < 0.05

    def test_no_difference_not_significant(self):
        a = RNG.normal(5.0, 1.0, 100)
        b = a + RNG.normal(0, 0.01, 100) * np.where(RNG.random(100) < 0.5, 1, -1)
        result = paired_comparison(a, b, seed=0)
        assert not result.significant or abs(result.mean_difference) < 0.01

    def test_sign_convention(self):
        a = np.full(50, 3.0) + RNG.normal(0, 0.1, 50)
        b = np.full(50, 1.0) + RNG.normal(0, 0.1, 50)
        result = paired_comparison(a, b, seed=0)
        assert result.mean_difference > 0
        reversed_result = paired_comparison(b, a, seed=0)
        assert reversed_result.mean_difference < 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            paired_comparison(np.ones(5), np.ones(6))

    def test_too_few_pairs_raises(self):
        with pytest.raises(ValueError):
            paired_comparison(np.ones(1), np.ones(1))

    def test_p_value_in_unit_interval(self):
        a = RNG.normal(0, 1, 40)
        b = RNG.normal(0, 1, 40)
        result = paired_comparison(a, b, seed=1)
        assert 0.0 <= result.p_value <= 1.0

    @given(st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=10, deadline=None)
    def test_larger_gaps_more_significant(self, gap):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 60)
        small = paired_comparison(a + 0.01, a, seed=0)
        large = paired_comparison(a + gap, a, seed=0)
        assert large.p_value <= small.p_value + 1e-9


class TestComparisonResult:
    def test_significance_from_ci(self):
        positive = ComparisonResult(1.0, 0.5, 1.5, 0.01)
        spanning = ComparisonResult(0.1, -0.5, 0.7, 0.4)
        negative = ComparisonResult(-1.0, -1.5, -0.5, 0.01)
        assert positive.significant
        assert not spanning.significant
        assert negative.significant

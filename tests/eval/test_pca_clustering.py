"""Tests for PCA and k-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import PCA, cluster_inertia, kmeans

RNG = np.random.default_rng(9)


class TestPCA:
    def test_energy_ratio_monotone_to_one(self):
        data = RNG.standard_normal((100, 5))
        ratio = PCA(data).energy_ratio()
        assert np.all(np.diff(ratio) >= -1e-12)
        np.testing.assert_allclose(ratio[-1], 1.0, atol=1e-12)

    def test_dominant_direction_found(self):
        # Data varies almost entirely along [1, 1]/√2.
        t = RNG.standard_normal(300)
        data = np.outer(t, [1.0, 1.0]) + RNG.standard_normal((300, 2)) * 0.01
        pca = PCA(data)
        ratio = pca.energy_ratio()
        assert ratio[0] > 0.99
        direction = pca.components[:, 0]
        np.testing.assert_allclose(np.abs(direction), np.full(2, 1 / np.sqrt(2)), atol=0.01)

    def test_transform_decorrelates(self):
        data = RNG.standard_normal((500, 3)) @ RNG.standard_normal((3, 3))
        projected = PCA(data).transform(data, k=3)
        covariance = np.cov(projected, rowvar=False)
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diagonal).max() < 1e-8

    def test_projection_matches_first_pc_variance(self):
        data = RNG.standard_normal((200, 4))
        pca = PCA(data)
        projected = pca.transform(data, k=1)
        np.testing.assert_allclose(projected.var(ddof=1), pca.eigenvalues[0], rtol=1e-10)

    def test_too_few_rows_raises(self):
        with pytest.raises(ValueError):
            PCA(np.zeros((1, 3)))

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_eigenvalues_nonnegative_sorted(self, dim):
        data = np.random.default_rng(dim).standard_normal((50, dim))
        eigenvalues = PCA(data).eigenvalues
        assert np.all(eigenvalues >= 0)
        assert np.all(np.diff(eigenvalues) <= 1e-12)


class TestKMeans:
    def well_separated(self, k=3, per=40, spread=0.2, seed=0):
        rng = np.random.default_rng(seed)
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])[:k]
        data = np.concatenate(
            [c + rng.normal(0, spread, (per, 2)) for c in centers]
        )
        return data, centers

    def test_recovers_separated_clusters(self):
        data, true_centers = self.well_separated()
        centers, labels = kmeans(data, 3, rng=np.random.default_rng(0))
        # match found centers to true ones greedily
        for true in true_centers:
            distances = np.linalg.norm(centers - true, axis=1)
            assert distances.min() < 0.5

    def test_labels_consistent_with_centers(self):
        data, _ = self.well_separated()
        centers, labels = kmeans(data, 3, rng=np.random.default_rng(0))
        for index, point in enumerate(data):
            distances = np.linalg.norm(centers - point, axis=1)
            assert labels[index] == np.argmin(distances)

    def test_k_equals_n(self):
        data = RNG.standard_normal((5, 2))
        centers, labels = kmeans(data, 5, rng=np.random.default_rng(0))
        assert len(set(labels.tolist())) == 5

    def test_invalid_k_raises(self):
        data = RNG.standard_normal((5, 2))
        with pytest.raises(ValueError):
            kmeans(data, 0)
        with pytest.raises(ValueError):
            kmeans(data, 6)

    def test_more_clusters_lower_inertia(self):
        data, _ = self.well_separated(spread=1.0)
        inertias = []
        for k in (1, 2, 3):
            centers, labels = kmeans(data, k, rng=np.random.default_rng(0))
            inertias.append(cluster_inertia(data, centers, labels))
        assert inertias[0] > inertias[1] > inertias[2]

    def test_deterministic_given_rng(self):
        data, _ = self.well_separated()
        c1, l1 = kmeans(data, 3, rng=np.random.default_rng(7))
        c2, l2 = kmeans(data, 3, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(l1, l2)

    def test_identical_points(self):
        data = np.ones((10, 2))
        centers, labels = kmeans(data, 2, rng=np.random.default_rng(0))
        np.testing.assert_allclose(centers[labels], data)

"""Tests for offline metrics, the A/B protocol and the KLD probe."""

import numpy as np
import pytest

from repro.envs import (
    BehaviorPolicy,
    BehaviorPolicyConfig,
    DPRConfig,
    DPRWorld,
)
from repro.eval import (
    KLDProbe,
    ProbeConfig,
    build_probe_dataset,
    expected_cumulative_reward,
    order_cost_increment,
    probe_embedding_quality,
    rollout_totals,
    run_ab_test,
)

WORLD = DPRWorld(DPRConfig(num_cities=2, drivers_per_city=15, horizon=10, seed=71))


def behavior_fn():
    return BehaviorPolicy(BehaviorPolicyConfig(seed=0))


def constant_fn(difficulty, bonus):
    def act(states, t):
        return np.column_stack(
            [np.full(states.shape[0], difficulty), np.full(states.shape[0], bonus)]
        )

    return act


class TestRolloutTotals:
    def test_keys_and_positivity(self):
        totals = rollout_totals(WORLD.make_city_env(0, seed=1), behavior_fn())
        assert set(totals) == {"orders", "cost", "reward"}
        assert totals["orders"] > 0

    def test_reward_consistency(self):
        totals = rollout_totals(WORLD.make_city_env(0, seed=1), behavior_fn())
        np.testing.assert_allclose(
            totals["reward"], totals["orders"] - totals["cost"], rtol=1e-9
        )

    def test_zero_bonus_zero_cost(self):
        totals = rollout_totals(WORLD.make_city_env(0, seed=1), constant_fn(0.4, 0.0))
        np.testing.assert_allclose(totals["cost"], 0.0, atol=1e-12)


class TestOrderCostIncrement:
    def test_same_policy_zero_increment(self):
        result = order_cost_increment(
            lambda: WORLD.make_city_env(0, seed=3),
            constant_fn(0.4, 0.3),
            constant_fn(0.4, 0.3),
        )
        np.testing.assert_allclose(result["orders_pct"], 0.0, atol=1e-9)

    def test_higher_bonus_raises_cost_pct(self):
        result = order_cost_increment(
            lambda: WORLD.make_city_env(0, seed=3),
            constant_fn(0.4, 0.8),
            constant_fn(0.4, 0.2),
        )
        assert result["cost_pct"] > 50.0

    def test_returns_raw_stats(self):
        result = order_cost_increment(
            lambda: WORLD.make_city_env(0, seed=3),
            behavior_fn(),
            behavior_fn(),
        )
        assert "policy" in result and "behavior" in result


class TestExpectedCumulativeReward:
    def test_positive_for_behavior(self):
        value = expected_cumulative_reward(WORLD.make_city_env(1, seed=5), behavior_fn())
        assert value > 0

    def test_discounting_reduces_value(self):
        env = WORLD.make_city_env(1, seed=5)
        undiscounted = expected_cumulative_reward(env, behavior_fn(), gamma=1.0)
        discounted = expected_cumulative_reward(
            WORLD.make_city_env(1, seed=5), behavior_fn(), gamma=0.5
        )
        assert discounted < undiscounted


class TestABTest:
    def env_factory(self, seed):
        config = DPRConfig(num_cities=1, drivers_per_city=20, horizon=15, seed=81)
        return DPRWorld(config).make_city_env(0, seed=seed)

    def test_day_range(self):
        result = run_ab_test(
            self.env_factory, behavior_fn, constant_fn(0.4, 0.3), 18, 22, 28
        )
        np.testing.assert_array_equal(result.days, np.arange(18, 29))

    def test_identical_policies_no_gap(self):
        result = run_ab_test(
            self.env_factory,
            lambda: constant_fn(0.4, 0.3),
            constant_fn(0.4, 0.3),
            18,
            22,
            28,
        )
        assert abs(result.post_deploy_improvement()) < 10.0

    def test_scaled_series_normalised_by_pretreatment(self):
        result = run_ab_test(
            self.env_factory, behavior_fn, constant_fn(0.4, 0.3), 18, 22, 28
        )
        scaled = result.scaled()
        pre = scaled["control"][result.days < 22]
        np.testing.assert_allclose(pre.mean(), 1.0, atol=1e-9)

    def test_better_policy_shows_improvement(self):
        # Zero-bonus extreme hurts completion; a sensible constant beats it.
        result = run_ab_test(
            self.env_factory,
            lambda: constant_fn(0.9, 0.0),  # human policy: too-hard free tasks
            constant_fn(0.4, 0.5),
            18,
            22,
            28,
        )
        assert result.post_deploy_improvement() > 0.0


class TestKLDProbe:
    def embeddings_and_datasets(self, informative=True, count=10, seed=0):
        """υ_i = distribution mean (informative) or noise (uninformative)."""
        rng = np.random.default_rng(seed)
        embeddings, datasets = [], []
        for _ in range(count):
            mean = rng.uniform(-3, 3)
            data = rng.normal(mean, 1.0, (150, 1))
            emb = np.array([mean, mean**2]) if informative else rng.standard_normal(2)
            embeddings.append(emb)
            datasets.append(data)
        return embeddings, datasets

    def test_build_probe_dataset_shapes(self):
        embeddings, datasets = self.embeddings_and_datasets()
        pairs, targets = build_probe_dataset(embeddings, datasets, num_pairs=12)
        assert pairs.shape == (12, 4)
        assert targets.shape == (12,)

    def test_mismatched_lists_raise(self):
        embeddings, datasets = self.embeddings_and_datasets()
        with pytest.raises(ValueError):
            build_probe_dataset(embeddings[:3], datasets[:2], num_pairs=4)

    def test_probe_fits_informative_embeddings(self):
        embeddings, datasets = self.embeddings_and_datasets(informative=True)
        pairs, targets = build_probe_dataset(embeddings, datasets, num_pairs=30)
        probe = KLDProbe(2, ProbeConfig(epochs=200, seed=0))
        losses = probe.fit(pairs, targets)
        assert losses[-1] < losses[0]

    def test_informative_beats_noise_embeddings(self):
        """The probe MAE must be lower when υ actually encodes the
        distribution — the premise of the Fig. 9(b) experiment."""
        good_emb, datasets = self.embeddings_and_datasets(informative=True)
        noise_emb, _ = self.embeddings_and_datasets(informative=False)
        config = ProbeConfig(epochs=200, seed=0)
        rng = np.random.default_rng(0)
        mae_good = probe_embedding_quality(good_emb, datasets, num_pairs=30, config=config, rng=rng)
        rng = np.random.default_rng(0)
        mae_noise = probe_embedding_quality(noise_emb, datasets, num_pairs=30, config=config, rng=rng)
        assert mae_good < mae_noise

    def test_reinitialize_resets_weights(self):
        probe = KLDProbe(2, ProbeConfig(seed=0))
        before = probe.net.layers[0].weight.data.copy()
        pairs = np.random.default_rng(0).standard_normal((10, 4))
        probe.fit(pairs, np.ones(10))
        probe.reinitialize()
        np.testing.assert_array_equal(probe.net.layers[0].weight.data, before)

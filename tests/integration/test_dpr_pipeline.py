"""End-to-end integration: the DPR pipeline at miniature scale.

Exercises the whole Sec. V-C stack in one flow: world → logged data →
simulator ensemble → filters → Algorithm 1 training → deployment to the
ground-truth world (which training never touched).
"""

import numpy as np
import pytest

from repro.core import Sim2RecDPRTrainer, build_sim2rec_policy, dpr_small_config
from repro.envs import (
    BehaviorPolicy,
    BehaviorPolicyConfig,
    DPRConfig,
    DPRWorld,
    collect_dpr_dataset,
)
from repro.eval import expected_cumulative_reward, run_ab_test
from repro.sim import SimulatorLearnerConfig, build_simulator_set


@pytest.fixture(scope="module")
def pipeline():
    world = DPRWorld(DPRConfig(num_cities=3, drivers_per_city=12, horizon=12, seed=101))
    dataset = collect_dpr_dataset(world, episodes=2)
    ensemble = build_simulator_set(
        dataset,
        num_members=4,
        base_config=SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=35),
        seed=0,
    )
    config = dpr_small_config(seed=0)
    policy = build_sim2rec_policy(dataset.state_dim, dataset.action_dim, config)
    trainer = Sim2RecDPRTrainer(policy, ensemble, dataset, config)
    trainer.pretrain_sadae(epochs=5)
    trainer.train(25)
    return world, dataset, ensemble, policy, trainer


class TestDPRPipeline:
    def test_training_completes_with_finite_metrics(self, pipeline):
        _, _, _, _, trainer = pipeline
        rewards = trainer.logger.series("reward")
        assert len(rewards) == 25
        assert all(np.isfinite(r) for r in rewards)

    def test_policy_actions_in_bounds(self, pipeline):
        world, _, _, policy, _ = pipeline
        env = world.make_city_env(0)
        states = env.reset()
        actions, _, _ = policy.act(
            states, np.zeros((12, 2)), np.random.default_rng(0), deterministic=True
        )
        clipped = np.clip(actions, 0, 1)
        np.testing.assert_allclose(actions, clipped, atol=0.35)

    def test_policy_stays_near_executable_subspace(self, pipeline):
        """F_exec training pressure: deterministic actions should mostly fall
        inside the logged action range."""
        _, dataset, _, policy, _ = pipeline
        _, logged_actions, _ = dataset.transition_pairs()
        low = logged_actions.min(axis=0) - 0.15
        high = logged_actions.max(axis=0) + 0.15
        s, _, _ = dataset.transition_pairs()
        policy.start_rollout(40)
        actions, _, _ = policy.act(
            s[:40], np.zeros((40, 2)), np.random.default_rng(0), deterministic=True
        )
        inside = ((actions >= low) & (actions <= high)).all(axis=1).mean()
        assert inside > 0.5

    def test_deploys_to_ground_truth_positively(self, pipeline):
        """The trained policy earns meaningful reward in the real world it
        never interacted with."""
        world, _, _, policy, _ = pipeline
        env = world.make_city_env(1, seed=901)
        act_fn = policy.as_act_fn(np.random.default_rng(0), deterministic=True)
        reward = expected_cumulative_reward(env, act_fn, episodes=1)
        behavior = BehaviorPolicy(BehaviorPolicyConfig(seed=5))
        behavior_reward = expected_cumulative_reward(
            world.make_city_env(1, seed=901), behavior, episodes=1
        )
        assert reward > 0
        assert reward > 0.5 * behavior_reward

    def test_ab_protocol_runs_with_trained_policy(self, pipeline):
        world, _, _, policy, _ = pipeline

        def env_factory(seed):
            config = DPRConfig(num_cities=3, drivers_per_city=12, horizon=11, seed=101)
            return DPRWorld(config).make_city_env(0, seed=seed)

        result = run_ab_test(
            env_factory,
            lambda: BehaviorPolicy(BehaviorPolicyConfig(seed=1)),
            policy.as_act_fn(np.random.default_rng(0), deterministic=True),
            start_day=18,
            deploy_day=22,
            end_day=28,
            seed=3,
        )
        assert len(result.days) == 11
        assert np.isfinite(result.post_deploy_improvement())

    def test_sadae_group_embeddings_distinguish_cities(self, pipeline):
        """After training, the SADAE embedding separates cities with very
        different demand scales (the group-behaviour differences)."""
        _, dataset, _, policy, _ = pipeline
        small_city = dataset.groups[0]
        big_city = dataset.groups[-1]
        emb_small = policy.sadae.embed(*small_city.state_action_set(0, 5))
        emb_small2 = policy.sadae.embed(*small_city.state_action_set(1, 5))
        emb_big = policy.sadae.embed(*big_city.state_action_set(0, 5))
        same = np.linalg.norm(emb_small - emb_small2)
        different = np.linalg.norm(emb_small - emb_big)
        assert different > same

"""End-to-end integration: the LTS transfer story at miniature scale.

Reproduces the core Fig. 6 mechanism inside the test suite: a Sim2Rec
policy trained only on gapped simulators must transfer to the unseen
target environment better than a DIRECT policy trained on one wrong
simulator.
"""

import numpy as np
import pytest

from repro.baselines import lts_single_sampler, make_direct_trainer
from repro.core import Sim2RecLTSTrainer, build_sim2rec_policy, lts_small_config
from repro.envs import make_lts_task, oracle_constant_policy_return
from repro.rl import evaluate


@pytest.fixture(scope="module")
def task():
    return make_lts_task(
        "LTS3",
        num_users=30,
        horizon=25,
        seed=0,
        observation_noise_std=6.0,
        sensitivity_range=(0.25, 0.4),
        memory_discount_range=(0.7, 0.8),
    )


@pytest.fixture(scope="module")
def trained(task):
    config = lts_small_config(seed=0)
    policy = build_sim2rec_policy(2, 1, config)
    trainer = Sim2RecLTSTrainer(policy, task, config)
    trainer.pretrain_sadae(epochs=15, users_per_set=30)
    trainer.train(20)

    direct = make_direct_trainer(2, 1, lts_single_sampler(task, 0), config)
    direct.train(30)
    return policy, direct.policy, trainer


def target_reward(task, policy, seed=0):
    env = task.make_target_env(seed_offset=500 + seed)
    act_fn = policy.as_act_fn(np.random.default_rng(seed), deterministic=True)
    return evaluate(act_fn, env, episodes=2)


class TestLTSPipeline:
    def test_sim2rec_beats_direct_on_transfer(self, task, trained):
        sim2rec_policy, direct_policy, _ = trained
        sim2rec_reward = target_reward(task, sim2rec_policy)
        direct_reward = target_reward(task, direct_policy)
        assert sim2rec_reward > direct_reward, (
            f"Sim2Rec ({sim2rec_reward:.1f}) must beat DIRECT ({direct_reward:.1f})"
        )

    def test_sim2rec_near_constant_oracle(self, task, trained):
        sim2rec_policy, _, _ = trained
        target = task.make_target_env(seed_offset=501)
        grid = np.linspace(0, 1, 21)
        oracle = max(oracle_constant_policy_return(target, a) for a in grid)
        reward = target_reward(task, sim2rec_policy, seed=1)
        assert reward > 0.8 * oracle

    def test_training_reward_reported(self, trained):
        _, _, trainer = trained
        rewards = trainer.logger.series("reward")
        assert len(rewards) == 20
        assert all(np.isfinite(r) for r in rewards)

    def test_direct_locked_to_wrong_group_action(self, task, trained):
        """DIRECT (trained on μ_c = 6) should act near that group's optimum,
        which is far below the target group's optimal clickbaitiness."""
        _, direct_policy, _ = trained
        env = task.make_target_env(seed_offset=502)
        states = env.reset()
        actions, _, _ = direct_policy.act(
            states, np.zeros((30, 1)), np.random.default_rng(0), deterministic=True
        )
        # target-group optimum is ~0.5; the μ_c=6 optimum is ~0.0
        assert actions.mean() < 0.4

"""Cross-module property-based invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import DPRConfig, DPRWorld, LTSConfig, LTSEnv
from repro.rl import compute_gae
from repro.sim import SimulatorLearnerConfig, train_user_simulator


class TestLTSClosedForm:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_npe_matches_closed_form(self, action, steps, seed):
        """Constant action a for t steps gives
        NPE_t = -2 (a - 1/2) (1 - γ^t) / (1 - γ)."""
        env = LTSEnv(LTSConfig(num_users=3, horizon=steps, seed=seed))
        env.reset()
        for _ in range(steps):
            _, _, _, info = env.step(np.full((3, 1), action))
        gamma = env.memory_discount
        expected = -2.0 * (action - 0.5) * (1 - gamma**steps) / (1 - gamma)
        np.testing.assert_allclose(info["npe"], expected, atol=1e-9)

    @given(st.floats(min_value=-8.0, max_value=7.0))
    @settings(max_examples=15, deadline=None)
    def test_sat_always_in_unit_interval(self, omega_g):
        env = LTSEnv(LTSConfig(num_users=5, horizon=10, omega_g=omega_g, seed=0))
        env.reset()
        rng = np.random.default_rng(0)
        for _ in range(10):
            states, _, _, info = env.step(rng.random((5, 1)))
            assert np.all((info["sat"] > 0) & (info["sat"] < 1))
            assert np.all((states[:, 0] > 0) & (states[:, 0] < 1))


class TestGAEProperties:
    @given(
        st.integers(min_value=1, max_value=10),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_zero_reward_perfect_value_zero_advantage(self, steps, lam, seed):
        """If rewards are zero and V ≡ 0 everywhere, advantages are zero."""
        rewards = np.zeros((steps, 2))
        values = np.zeros((steps, 2))
        dones = np.zeros((steps, 2))
        dones[-1] = 1.0
        adv, _ = compute_gae(rewards, values, dones, np.zeros(2), 0.9, lam)
        np.testing.assert_allclose(adv, 0.0, atol=1e-12)

    @given(st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=15, deadline=None)
    def test_advantage_linear_in_reward_scale(self, scale):
        rng = np.random.default_rng(0)
        rewards = rng.standard_normal((5, 2))
        values = np.zeros((5, 2))
        dones = np.zeros((5, 2))
        dones[-1] = 1.0
        adv1, _ = compute_gae(rewards, values, dones, np.zeros(2), 0.9, 0.9)
        adv2, _ = compute_gae(rewards * scale, values, dones, np.zeros(2), 0.9, 0.9)
        np.testing.assert_allclose(adv2, adv1 * scale, rtol=1e-10)


class TestSimulatorInvariants:
    @pytest.fixture(scope="class")
    def simulator(self):
        rng = np.random.default_rng(0)
        s = rng.standard_normal((600, 3))
        a = rng.uniform(0, 1, (600, 2))
        y = np.column_stack(
            [s[:, 0] + a[:, 0] + rng.normal(0, 0.1, 600), (a[:, 1] > 0.5).astype(float)]
        )
        config = SimulatorLearnerConfig(
            hidden_sizes=(24,), epochs=40, binary_dims=(1,), seed=0
        )
        return train_user_simulator((s, a, y), config)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_binary_probabilities_bounded(self, simulator, seed):
        rng = np.random.default_rng(seed)
        s = rng.standard_normal((10, 3)) * 3  # include off-support inputs
        a = rng.uniform(-1, 2, (10, 2))
        prediction = simulator.predict_mean(s, a)
        assert np.all((prediction[:, 1] >= 0) & (prediction[:, 1] <= 1))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_sample_mean_tracks_predicted_mean(self, simulator, seed):
        rng = np.random.default_rng(seed)
        s = rng.standard_normal((1, 3))
        a = rng.uniform(0, 1, (1, 2))
        predicted = simulator.predict_mean(s, a)[0, 0]
        draws = np.array(
            [
                simulator.sample(s, a, np.random.default_rng(seed * 1000 + k))[0, 0]
                for k in range(300)
            ]
        )
        assert abs(draws.mean() - predicted) < 5 * draws.std() / np.sqrt(300) + 0.05


class TestDPRWorldProperties:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_rewards_never_below_half_orders(self, seed):
        """reward = orders - cost with cost ≤ COST_RATE·orders, so reward ≥
        (1 - COST_RATE)·orders ≥ 0 for α₁ = 1."""
        world = DPRWorld(DPRConfig(num_cities=2, drivers_per_city=6, horizon=5, seed=seed))
        env = world.make_city_env(0)
        env.reset()
        rng = np.random.default_rng(seed)
        for _ in range(5):
            _, rewards, _, info = env.step(rng.random((6, 2)))
            assert np.all(rewards >= 0.5 * info["orders"] - 1e-9)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_state_dim_stable_across_steps(self, seed):
        world = DPRWorld(DPRConfig(num_cities=1, drivers_per_city=4, horizon=4, seed=seed))
        env = world.make_city_env(0)
        states = env.reset()
        for _ in range(4):
            next_states, _, _, _ = env.step(np.full((4, 2), 0.5))
            assert next_states.shape == states.shape
            assert np.all(np.isfinite(next_states))
            states = next_states

"""Tests for the PPO learner: mechanics plus convergence on simple tasks."""

import numpy as np
import pytest

from repro.envs import LTSConfig, LTSEnv
from repro.rl import evaluate
from repro.envs.base import MultiUserEnv
from repro.envs.spaces import Box
from repro.rl import (
    MLPActorCritic,
    PPO,
    PPOConfig,
    RecurrentActorCritic,
    RolloutBuffer,
    collect_segment,
)


class TargetActionEnv(MultiUserEnv):
    """Reward = -(a - target)², the simplest continuous-control testbed."""

    def __init__(self, num_users=16, horizon=8, target=0.7, seed=0):
        self.num_users = num_users
        self.horizon = horizon
        self.target = target
        self.observation_space = Box(low=np.zeros(2), high=np.ones(2))
        self.action_space = Box(low=np.zeros(1), high=np.ones(1))
        self._rng = np.random.default_rng(seed)
        self._t = 0
        self.group_id = 0

    def reset(self):
        self._t = 0
        return self._rng.random((self.num_users, 2))

    def step(self, actions):
        actions = self._validate_actions(actions)
        rewards = -((actions[:, 0] - self.target) ** 2)
        self._t += 1
        dones = np.full(self.num_users, self._t >= self.horizon)
        return self._rng.random((self.num_users, 2)), rewards, dones, {}


class TestPPOMechanics:
    def test_update_requires_finalized_buffer(self):
        rng = np.random.default_rng(0)
        env = TargetActionEnv()
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        ppo = PPO(policy, PPOConfig())
        buffer = RolloutBuffer()
        buffer.add(collect_segment(env, policy, rng))
        with pytest.raises(RuntimeError):
            ppo.update(buffer)

    def test_update_returns_stats(self):
        rng = np.random.default_rng(0)
        env = TargetActionEnv()
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        ppo = PPO(policy, PPOConfig(update_epochs=1))
        buffer = RolloutBuffer()
        buffer.add(collect_segment(env, policy, rng))
        buffer.finalize(0.99, 0.95)
        stats = ppo.update(buffer)
        for key in ("policy_loss", "value_loss", "entropy", "clip_frac", "learning_rate"):
            assert key in stats

    def test_update_is_reproducible_across_instances(self):
        """Identical buffer contents give identical updates, even through
        distinct segment objects: minibatch shuffles are seeded by buffer
        position, not object identity (the id()-seeded shuffle made every
        run's optimisation trajectory unique)."""

        def run():
            rng = np.random.default_rng(0)
            env = TargetActionEnv()
            policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
            ppo = PPO(policy, PPOConfig(update_epochs=2, minibatches_per_segment=2))
            buffer = RolloutBuffer()
            for _ in range(2):
                buffer.add(collect_segment(env, policy, rng))
            buffer.finalize(0.99, 0.95)
            ppo.update(buffer)
            return [param.data.copy() for param in policy.parameters()]

        for a, b in zip(run(), run()):
            np.testing.assert_array_equal(a, b)

    def test_update_changes_parameters(self):
        rng = np.random.default_rng(0)
        env = TargetActionEnv()
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        before = policy.actor.layers[0].weight.data.copy()
        ppo = PPO(policy, PPOConfig(update_epochs=2))
        buffer = RolloutBuffer()
        buffer.add(collect_segment(env, policy, rng))
        buffer.finalize(0.99, 0.95)
        ppo.update(buffer)
        assert not np.allclose(before, policy.actor.layers[0].weight.data)

    def test_lr_schedule_decays(self):
        rng = np.random.default_rng(0)
        env = TargetActionEnv()
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        config = PPOConfig(
            learning_rate=1e-3, final_learning_rate=1e-5, total_iterations=5, update_epochs=1
        )
        ppo = PPO(policy, config)
        for _ in range(5):
            buffer = RolloutBuffer()
            buffer.add(collect_segment(env, policy, rng))
            buffer.finalize(0.99, 0.95)
            stats = ppo.update(buffer)
        np.testing.assert_allclose(stats["learning_rate"], 1e-5)

    def test_extra_parameters_receive_updates(self):
        from repro import nn

        rng = np.random.default_rng(0)
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        extra = nn.Parameter(np.zeros(3))
        ppo = PPO(policy, PPOConfig(update_epochs=1), extra_parameters=[extra])
        assert extra in ppo._all_params

    def test_segments_of_different_sizes(self):
        rng = np.random.default_rng(0)
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        ppo = PPO(policy, PPOConfig(update_epochs=1))
        buffer = RolloutBuffer()
        buffer.add(collect_segment(TargetActionEnv(num_users=4, horizon=3), policy, rng))
        buffer.add(collect_segment(TargetActionEnv(num_users=9, horizon=6), policy, rng))
        buffer.finalize(0.99, 0.95)
        ppo.update(buffer)  # must not raise


class TestPPOConvergence:
    def train(self, policy, env, iterations, config=None, seed=0):
        rng = np.random.default_rng(seed)
        ppo = PPO(policy, config or PPOConfig(learning_rate=3e-3, update_epochs=4))
        for _ in range(iterations):
            buffer = RolloutBuffer()
            buffer.add(collect_segment(env, policy, rng))
            buffer.finalize(ppo.config.gamma, ppo.config.gae_lambda)
            ppo.update(buffer)
        return policy

    def test_mlp_learns_target_action(self):
        env = TargetActionEnv(num_users=32, horizon=8, target=0.7)
        policy = MLPActorCritic(2, 1, np.random.default_rng(1), hidden_sizes=(16,))
        self.train(policy, env, iterations=40)
        actions, _, _ = policy.act(
            env.reset(), np.zeros((32, 1)), np.random.default_rng(0), deterministic=True
        )
        np.testing.assert_allclose(actions.mean(), 0.7, atol=0.12)

    def test_mlp_improves_lts_reward(self):
        env = LTSEnv(LTSConfig(num_users=40, horizon=30, seed=0))
        policy = MLPActorCritic(
            env.observation_dim, env.action_dim, np.random.default_rng(2), hidden_sizes=(32, 32)
        )
        rng = np.random.default_rng(0)
        before = evaluate(policy.as_act_fn(rng), env, episodes=2)
        self.train(policy, env, iterations=30, config=PPOConfig(learning_rate=1e-3))
        after = evaluate(policy.as_act_fn(np.random.default_rng(0)), env, episodes=2)
        assert after > before

    def test_recurrent_learns_target_action(self):
        env = TargetActionEnv(num_users=16, horizon=6, target=0.3, seed=3)
        policy = RecurrentActorCritic(
            2, 1, np.random.default_rng(3), lstm_hidden=8, head_hidden=(16,)
        )
        self.train(
            policy,
            env,
            iterations=40,
            config=PPOConfig(learning_rate=3e-3, update_epochs=2, minibatches_per_segment=1),
        )
        policy.start_rollout(16)
        actions, _, _ = policy.act(
            env.reset(), np.zeros((16, 1)), np.random.default_rng(0), deterministic=True
        )
        np.testing.assert_allclose(actions.mean(), 0.3, atol=0.15)


class TestCollectSegment:
    def test_segment_shapes(self):
        rng = np.random.default_rng(0)
        env = TargetActionEnv(num_users=7, horizon=5)
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        segment = collect_segment(env, policy, rng)
        assert segment.states.shape == (5, 7, 2)
        assert segment.actions.shape == (5, 7, 1)
        assert segment.rewards.shape == (5, 7)
        assert segment.last_values.shape == (7,)

    def test_prev_actions_shifted(self):
        rng = np.random.default_rng(0)
        env = TargetActionEnv(num_users=4, horizon=5)
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        segment = collect_segment(env, policy, rng)
        np.testing.assert_array_equal(segment.prev_actions[0], np.zeros((4, 1)))
        np.testing.assert_array_equal(segment.prev_actions[1:], segment.actions[:-1])

    def test_max_steps_truncates(self):
        rng = np.random.default_rng(0)
        env = TargetActionEnv(num_users=4, horizon=10)
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        segment = collect_segment(env, policy, rng, max_steps=3)
        assert segment.horizon == 3

    def test_extras_from_info(self):
        rng = np.random.default_rng(0)
        env = LTSEnv(LTSConfig(num_users=4, horizon=5, seed=0))
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        segment = collect_segment(env, policy, rng, extras_from_info=("sat",))
        assert segment.extras["sat"].shape == (5, 4)

    def test_group_id_recorded(self):
        rng = np.random.default_rng(0)
        env = LTSEnv(LTSConfig(num_users=4, horizon=3, omega_g=5.0, seed=0))
        policy = MLPActorCritic(2, 1, rng, hidden_sizes=(8,))
        segment = collect_segment(env, policy, rng)
        assert segment.group_id == 5.0

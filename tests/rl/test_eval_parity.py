"""Cross-mode evaluation parity: replica-side eval equals solo eval.

The evaluation counterpart of ``test_rollout_parity.py``: every sweep
here goes through the one evaluation front door,
:func:`repro.rl.evaluate`, which routes through **policy replicas**
wherever a sharded pool is available
(:meth:`repro.rl.workers.ShardedVecEnvPool.evaluate_policy`). The kernel
draws each env's action noise from that env's own stream and computes
context per env block, so per-env returns must be **bit-identical**
across

- per-env solo evaluation (each env alone in its own pool),
- one in-process pool over all envs,
- sharded pools with {1, 2, 4} workers (replica acting in the workers),

for MLP / recurrent / Sim2Rec policies, deterministic and stochastic
action modes, multi-episode sweeps with discounting, and heterogeneous
horizons (the pool masks finished members' rewards to zero, so totals
are layout-invariant). The four retired entry points
(``evaluate_policy`` / ``evaluate_policy_vec`` /
``evaluate_policy_replica`` / ``evaluate_policy_replicas``) survive as
deprecated aliases; ``TestDeprecatedAliases`` pins that each one warns
and returns bits identical to the front door.

Caveat pinned here too: with heterogeneous horizons the *pool* keeps
drawing from a finished env's stream until the pool ends, so caller-owned
generator **end states** (and hence episode 2+ of a stochastic sweep)
are only layout-invariant for equal horizons — the same stream-continuity
caveat ``collect_rollouts`` documents.
"""

import numpy as np
import pytest

from repro.core import build_sim2rec_policy, dpr_small_config
from repro.envs import DPRConfig, DPRWorld, LTSConfig, LTSEnv
from repro.envs import evaluate_policy as legacy_evaluate_policy
from repro.rl import (
    MLPActorCritic,
    RecurrentActorCritic,
    ShardedVecEnvPool,
    evaluate,
    evaluate_policy_replica,
    evaluate_policy_replicas,
    evaluate_policy_vec,
    sharding_available,
)

needs_sharding = pytest.mark.skipif(
    not sharding_available(), reason="platform has no multiprocessing start method"
)

WORKER_COUNTS = (1, 2, 4)
EPISODES = 2
GAMMA = 0.97


def make_lts_envs(horizons=(5, 5, 5, 5, 5)):
    sizes = [3, 1, 4, 2, 5]
    return [
        LTSEnv(LTSConfig(num_users=k, horizon=h, omega_g=2.0 * i, seed=20 + i))
        for i, (k, h) in enumerate(zip(sizes, horizons))
    ]


def make_dpr_envs():
    world = DPRWorld(DPRConfig(num_cities=4, drivers_per_city=5, horizon=5, seed=3))
    return world.make_all_city_envs()


def make_policy(kind, state_dim, action_dim):
    if kind == "mlp":
        return MLPActorCritic(
            state_dim, action_dim, np.random.default_rng(1), hidden_sizes=(8,)
        )
    if kind == "recurrent":
        return RecurrentActorCritic(
            state_dim, action_dim, np.random.default_rng(0),
            lstm_hidden=8, head_hidden=(16,),
        )
    if kind == "sim2rec":
        return build_sim2rec_policy(state_dim, action_dim, dpr_small_config(seed=0))
    raise ValueError(kind)


def setup_case(kind):
    """(env_factory, policy) for a policy family on its native envs."""
    if kind == "sim2rec":
        return make_dpr_envs, make_policy(kind, 13, 2)
    return make_lts_envs, make_policy(kind, 2, 1)


def env_seeds(num_envs):
    return [5000 + 7 * i for i in range(num_envs)]


def solo_eval(env_factory, policy, deterministic, episodes=EPISODES):
    """The reference: every env evaluated alone with its own stream."""
    envs = env_factory()
    return np.array(
        [
            evaluate(
                policy,
                [env],
                rng=[np.random.default_rng(seed)],
                episodes=episodes,
                gamma=GAMMA,
                deterministic=deterministic,
            )[0]
            for env, seed in zip(envs, env_seeds(len(envs)))
        ]
    )


def pooled_eval(env_factory, policy, deterministic, workers=0, episodes=EPISODES):
    """One pool over all envs: in-process (workers=0) or sharded."""
    envs = env_factory()
    rngs = [np.random.default_rng(seed) for seed in env_seeds(len(envs))]
    if workers == 0:
        totals = evaluate(
            policy, envs, rng=rngs, episodes=episodes, gamma=GAMMA,
            deterministic=deterministic,
        )
    else:
        with ShardedVecEnvPool(envs, num_workers=workers) as pool:
            totals = evaluate(
                policy, pool, rng=rngs, episodes=episodes, gamma=GAMMA,
                deterministic=deterministic,
            )
    return totals, [rng.bit_generator.state for rng in rngs]


@pytest.mark.parametrize("kind", ["mlp", "recurrent", "sim2rec"])
class TestEvalParity:
    def test_in_process_pool_matches_solo_deterministic(self, kind):
        env_factory, policy = setup_case(kind)
        solo = solo_eval(env_factory, policy, deterministic=True)
        pooled, _ = pooled_eval(env_factory, policy, deterministic=True)
        assert np.array_equal(solo, pooled), f"{kind}: pooled eval != solo"

    def test_in_process_pool_matches_solo_stochastic(self, kind):
        env_factory, policy = setup_case(kind)
        solo = solo_eval(env_factory, policy, deterministic=False)
        pooled, _ = pooled_eval(env_factory, policy, deterministic=False)
        assert np.array_equal(solo, pooled), f"{kind}: stochastic pooled != solo"

    @needs_sharding
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sharded_matches_solo(self, kind, workers):
        """Replica acting inside the workers reproduces solo eval exactly."""
        env_factory, policy = setup_case(kind)
        solo = solo_eval(env_factory, policy, deterministic=False)
        sharded, _ = pooled_eval(
            env_factory, policy, deterministic=False, workers=workers
        )
        assert np.array_equal(solo, sharded), (
            f"{kind}: sharded eval (w={workers}) != solo"
        )

    @needs_sharding
    def test_owner_rng_continuity_across_modes(self, kind):
        """Equal horizons: caller streams end identically in every mode."""
        env_factory, policy = setup_case(kind)
        _, states_inproc = pooled_eval(env_factory, policy, deterministic=False)
        _, states_sharded = pooled_eval(
            env_factory, policy, deterministic=False, workers=2
        )
        assert states_inproc == states_sharded, (
            f"{kind}: per-env RNG streams diverged between modes"
        )


class TestHeteroHorizons:
    """Finished members read zero rewards: totals are layout-invariant."""

    def make_envs(self):
        return make_lts_envs(horizons=(3, 5, 2, 5, 4))

    def test_in_process_matches_solo_single_episode(self):
        policy = make_policy("mlp", 2, 1)
        solo = solo_eval(self.make_envs, policy, deterministic=False, episodes=1)
        pooled, _ = pooled_eval(
            self.make_envs, policy, deterministic=False, episodes=1
        )
        assert np.array_equal(solo, pooled)

    def test_multi_episode_deterministic_matches_solo(self):
        """No draws -> stream advance cannot matter even across episodes."""
        policy = make_policy("recurrent", 2, 1)
        solo = solo_eval(self.make_envs, policy, deterministic=True)
        pooled, _ = pooled_eval(self.make_envs, policy, deterministic=True)
        assert np.array_equal(solo, pooled)

    @needs_sharding
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sharded_matches_in_process(self, workers):
        policy = make_policy("mlp", 2, 1)
        pooled, _ = pooled_eval(
            self.make_envs, policy, deterministic=False, episodes=1
        )
        sharded, _ = pooled_eval(
            self.make_envs, policy, deterministic=False, workers=workers, episodes=1
        )
        assert np.array_equal(pooled, sharded)


class TestFrontDoor:
    """`repro.rl.evaluate` dispatch, routing and RNG-normalisation semantics."""

    @needs_sharding
    def test_single_generator_split_is_mode_invariant(self):
        """A lone generator splits into the same per-env children everywhere."""
        policy = make_policy("mlp", 2, 1)
        inproc = evaluate(
            policy, make_lts_envs(), rng=np.random.default_rng(11),
            episodes=EPISODES, gamma=GAMMA, deterministic=False,
        )
        with ShardedVecEnvPool(make_lts_envs(), num_workers=2) as pool:
            sharded = evaluate(
                policy, pool, rng=np.random.default_rng(11),
                episodes=EPISODES, gamma=GAMMA, deterministic=False,
            )
        assert np.array_equal(inproc, sharded)

    def test_deterministic_agrees_with_act_fn_path(self):
        """Replica path == the callable-protocol path under `as_act_fn`."""
        policy = make_policy("recurrent", 2, 1)
        replica = evaluate(
            policy, make_lts_envs(), rng=np.random.default_rng(13),
            episodes=EPISODES, gamma=GAMMA, deterministic=True,
        )
        act_fn = evaluate(
            policy.as_act_fn(np.random.default_rng(13), deterministic=True),
            make_lts_envs(),
            episodes=EPISODES,
            gamma=GAMMA,
        )
        assert np.array_equal(replica, act_fn)

    def test_single_env_returns_scalar(self):
        policy = make_policy("mlp", 2, 1)
        result = evaluate(policy, make_lts_envs()[0], episodes=1)
        assert isinstance(result, float)

    def test_act_fn_auto_dispatch(self):
        """Callable + single env -> solo; callable + sequence -> per-env."""
        policy = make_policy("mlp", 2, 1)
        solo = evaluate(
            policy.as_act_fn(np.random.default_rng(5)), make_lts_envs()[0]
        )
        assert isinstance(solo, float)
        per_env = evaluate(
            policy.as_act_fn(np.random.default_rng(5)), make_lts_envs()
        )
        assert per_env.shape == (5,)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            evaluate(make_policy("mlp", 2, 1), make_lts_envs(), mode="warp")

    def test_replica_mode_needs_a_policy(self):
        with pytest.raises(TypeError, match="ActorCriticBase"):
            evaluate(lambda s, t: s[:, :1], make_lts_envs(), mode="replica")

    def test_empty_env_sequence_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            evaluate(make_policy("mlp", 2, 1), [])

    @needs_sharding
    def test_eval_before_sync_raises(self):
        """Worker-side eval needs a replica: unsynced pools fail loudly."""
        with ShardedVecEnvPool(make_lts_envs(), num_workers=2) as pool:
            with pytest.raises(RuntimeError, match="sync_policy"):
                pool.evaluate_policy(np.random.default_rng(0))

    def test_rng_count_mismatch_raises(self):
        policy = make_policy("mlp", 2, 1)
        with pytest.raises(ValueError, match="generator"):
            evaluate(policy, make_lts_envs(), rng=[np.random.default_rng(0)])


class TestDeprecatedAliases:
    """The four retired names warn and return front-door-identical bits."""

    def test_evaluate_policy_alias(self):
        policy = make_policy("mlp", 2, 1)
        front = evaluate(
            policy.as_act_fn(np.random.default_rng(3)), make_lts_envs()[0],
            episodes=EPISODES, gamma=GAMMA,
        )
        with pytest.warns(DeprecationWarning, match="repro.rl.evaluate"):
            alias = legacy_evaluate_policy(
                make_lts_envs()[0],
                policy.as_act_fn(np.random.default_rng(3)),
                episodes=EPISODES,
                gamma=GAMMA,
            )
        assert front == alias

    def test_evaluate_policy_vec_alias(self):
        policy = make_policy("recurrent", 2, 1)
        front = evaluate(
            policy.as_act_fn(np.random.default_rng(4)), make_lts_envs(),
            mode="vec", episodes=EPISODES, gamma=GAMMA,
        )
        with pytest.warns(DeprecationWarning, match="repro.rl.evaluate"):
            alias = evaluate_policy_vec(
                make_lts_envs(),
                policy.as_act_fn(np.random.default_rng(4)),
                episodes=EPISODES,
                gamma=GAMMA,
            )
        assert np.array_equal(front, alias)

    def test_evaluate_policy_replica_alias(self):
        policy = make_policy("mlp", 2, 1)
        seeds = env_seeds(5)
        front = evaluate(
            policy, make_lts_envs(),
            rng=[np.random.default_rng(s) for s in seeds],
            episodes=EPISODES, gamma=GAMMA, deterministic=False,
        )
        with pytest.warns(DeprecationWarning, match="repro.rl.evaluate"):
            alias = evaluate_policy_replica(
                make_lts_envs(),
                policy,
                [np.random.default_rng(s) for s in seeds],
                episodes=EPISODES,
                gamma=GAMMA,
                deterministic=False,
            )
        assert np.array_equal(front, alias)

    def test_evaluate_policy_replicas_alias(self):
        policy = make_policy("mlp", 2, 1)
        front = evaluate(
            policy, make_lts_envs(), rng=np.random.default_rng(21),
            episodes=EPISODES, gamma=GAMMA, deterministic=False,
        )
        with pytest.warns(DeprecationWarning, match="repro.rl.evaluate"):
            alias = evaluate_policy_replicas(
                make_lts_envs(), policy, np.random.default_rng(21),
                episodes=EPISODES, gamma=GAMMA, deterministic=False,
            )
        assert np.array_equal(front, alias)

    def test_internal_repro_callers_escalate(self):
        """The pytest config turns repro-internal alias calls into errors."""
        import warnings

        with warnings.catch_warnings():
            warnings.filterwarnings(
                "error", category=DeprecationWarning, module=r"repro\."
            )
            # A call attributed to a test module only warns ...
            with pytest.warns(DeprecationWarning):
                evaluate_policy_vec(
                    make_lts_envs(),
                    make_policy("mlp", 2, 1).as_act_fn(np.random.default_rng(0)),
                )

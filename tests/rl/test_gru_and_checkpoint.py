"""Tests for the GRU extractor option and full-policy checkpointing."""

import numpy as np
import pytest

from repro import nn
from repro.core import SADAE, SADAEConfig, Sim2RecPolicy
from repro.envs import LTSConfig, LTSEnv
from repro.rl import (
    PPO,
    PPOConfig,
    RecurrentActorCritic,
    RolloutBuffer,
    collect_segment,
)

RNG = np.random.default_rng(13)


class TestGRUExtractor:
    def make_policy(self, cell, seed=0):
        return RecurrentActorCritic(
            2, 1, np.random.default_rng(seed), lstm_hidden=8, head_hidden=(16,), cell=cell
        )

    def test_unknown_cell_raises(self):
        with pytest.raises(ValueError):
            self.make_policy("rnn")

    def test_gru_act_shapes(self):
        policy = self.make_policy("gru")
        policy.start_rollout(4)
        actions, log_probs, values = policy.act(
            RNG.standard_normal((4, 2)), np.zeros((4, 1)), RNG
        )
        assert actions.shape == (4, 1)
        assert values.shape == (4,)

    def test_gru_state_is_single_tensor(self):
        policy = self.make_policy("gru")
        policy.start_rollout(3)
        policy.act(RNG.standard_normal((3, 2)), np.zeros((3, 1)), RNG)
        assert isinstance(policy._state, nn.Tensor)

    def test_gru_history_affects_actions(self):
        policy = self.make_policy("gru")
        state = np.ones((1, 2))
        policy.start_rollout(1)
        fresh, _, _ = policy.act(state, np.zeros((1, 1)), RNG, deterministic=True)
        policy.start_rollout(1)
        for _ in range(5):
            policy.act(RNG.standard_normal((1, 2)) * 3, np.ones((1, 1)), RNG)
        with_history, _, _ = policy.act(state, np.zeros((1, 1)), RNG, deterministic=True)
        assert not np.allclose(fresh, with_history)

    def test_gru_ppo_update_runs(self):
        env = LTSEnv(LTSConfig(num_users=6, horizon=5, seed=0))
        policy = self.make_policy("gru")
        ppo = PPO(policy, PPOConfig(update_epochs=1, minibatches_per_segment=1))
        rng = np.random.default_rng(0)
        buffer = RolloutBuffer()
        buffer.add(collect_segment(env, policy, rng))
        buffer.finalize(0.99, 0.95)
        before = policy.actor.layers[0].weight.data.copy()
        ppo.update(buffer)
        assert not np.allclose(before, policy.actor.layers[0].weight.data)

    def test_gru_evaluate_matches_column_independence(self):
        policy = self.make_policy("gru")
        env = LTSEnv(LTSConfig(num_users=5, horizon=4, seed=0))
        segment = collect_segment(env, policy, np.random.default_rng(0))
        segment.finalize(0.99, 0.95)
        lp_all, _, _ = policy.evaluate_segment(segment, np.arange(5))
        lp_sub, _, _ = policy.evaluate_segment(segment, np.array([1, 3]))
        np.testing.assert_allclose(lp_sub.data, lp_all.data[:, [1, 3]], atol=1e-12)

    def test_lstm_default_unchanged(self):
        policy = self.make_policy("lstm")
        assert policy.cell_type == "lstm"
        assert isinstance(policy.extractor, nn.LSTMCell)


class TestFullPolicyCheckpoint:
    def test_sim2rec_policy_roundtrip(self, tmp_path):
        """A trained Sim2Rec agent (SADAE + f + φ + heads) must survive a
        save/load cycle bit-exactly."""
        sadae = SADAE(
            2, 1, SADAEConfig(latent_dim=3, encoder_hidden=(8,), decoder_hidden=(8,), seed=0)
        )
        policy = Sim2RecPolicy(
            2, 1, sadae, np.random.default_rng(0), fc_sizes=(4, 2), lstm_hidden=8, head_hidden=(8,)
        )
        states = RNG.standard_normal((6, 2))
        policy.sadae.fit_normalizer([(states, np.zeros((6, 1)))])

        path = tmp_path / "policy.npz"
        nn.save_module(policy, path)

        clone_sadae = SADAE(
            2, 1, SADAEConfig(latent_dim=3, encoder_hidden=(8,), decoder_hidden=(8,), seed=9)
        )
        clone = Sim2RecPolicy(
            2, 1, clone_sadae, np.random.default_rng(9), fc_sizes=(4, 2), lstm_hidden=8, head_hidden=(8,)
        )
        clone.sadae.fit_normalizer([(states, np.zeros((6, 1)))])
        nn.load_module(clone, path)

        policy.start_rollout(6)
        clone.start_rollout(6)
        a1, _, v1 = policy.act(states, np.zeros((6, 1)), np.random.default_rng(5))
        a2, _, v2 = clone.act(states, np.zeros((6, 1)), np.random.default_rng(5))
        np.testing.assert_allclose(a1, a2, atol=1e-12)
        np.testing.assert_allclose(v1, v2, atol=1e-12)

    def test_normalizer_state_roundtrip(self):
        sadae = SADAE(
            2, 1, SADAEConfig(latent_dim=3, encoder_hidden=(8,), decoder_hidden=(8,), seed=0)
        )
        states = RNG.standard_normal((20, 2)) * 3 + 1
        sadae.fit_normalizer([(states, RNG.standard_normal((20, 1)))])
        saved = sadae.normalizer_state()

        clone = SADAE(
            2, 1, SADAEConfig(latent_dim=3, encoder_hidden=(8,), decoder_hidden=(8,), seed=0)
        )
        clone.load_normalizer_state(saved)
        np.testing.assert_array_equal(clone.input_mean, sadae.input_mean)
        np.testing.assert_array_equal(clone.state_std, sadae.state_std)

    def test_normalizer_shape_mismatch_raises(self):
        sadae = SADAE(
            2, 1, SADAEConfig(latent_dim=3, encoder_hidden=(8,), decoder_hidden=(8,), seed=0)
        )
        bad = sadae.normalizer_state()
        bad["input_mean"] = np.zeros(7)
        with pytest.raises(ValueError):
            sadae.load_normalizer_state(bad)

    def test_simulator_normalizer_roundtrip(self):
        from repro.sim import SimulatorLearnerConfig, train_user_simulator

        rng = np.random.default_rng(0)
        s, a = rng.standard_normal((50, 3)), rng.uniform(0, 1, (50, 2))
        y = np.column_stack([s[:, 0], (a[:, 0] > 0.5).astype(float)])
        config = SimulatorLearnerConfig(hidden_sizes=(8,), epochs=2, binary_dims=(1,), seed=0)
        simulator = train_user_simulator((s, a, y), config)
        saved = simulator.normalizer_state()
        clone = train_user_simulator(
            (s * 0 + 1, a * 0 + 1, y), SimulatorLearnerConfig(hidden_sizes=(8,), epochs=0, binary_dims=(1,), seed=0)
        )
        clone.load_normalizer_state(saved)
        np.testing.assert_array_equal(clone.input_mean, simulator.input_mean)

    def test_checkpoint_includes_sadae_parameters(self, tmp_path):
        sadae = SADAE(
            2, 1, SADAEConfig(latent_dim=3, encoder_hidden=(8,), decoder_hidden=(8,), seed=0)
        )
        policy = Sim2RecPolicy(
            2, 1, sadae, np.random.default_rng(0), fc_sizes=(4, 2), lstm_hidden=8, head_hidden=(8,)
        )
        state = policy.state_dict()
        assert any(key.startswith("sadae.encoder") for key in state)
        assert any(key.startswith("context_mlp") for key in state)
        assert any(key.startswith("extractor") for key in state)

"""Tests for RolloutSegment / RolloutBuffer."""

import numpy as np
import pytest

from repro.rl import RolloutBuffer, RolloutSegment


def make_segment(steps=5, n=3, ds=4, da=2, seed=0, rewards=None, dones=None):
    rng = np.random.default_rng(seed)
    if rewards is None:
        rewards = rng.standard_normal((steps, n))
    if dones is None:
        dones = np.zeros((steps, n))
        dones[-1] = 1.0
    return RolloutSegment(
        states=rng.standard_normal((steps, n, ds)),
        prev_actions=rng.standard_normal((steps, n, da)),
        actions=rng.standard_normal((steps, n, da)),
        rewards=rewards,
        dones=dones,
        values=rng.standard_normal((steps, n)),
        log_probs=rng.standard_normal((steps, n)),
        last_values=rng.standard_normal(n),
        group_id=7,
    )


class TestRolloutSegment:
    def test_properties(self):
        segment = make_segment()
        assert segment.horizon == 5
        assert segment.num_users == 3
        assert segment.group_id == 7

    def test_shape_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RolloutSegment(
                states=rng.standard_normal((5, 3, 4)),
                prev_actions=rng.standard_normal((5, 3, 2)),
                actions=rng.standard_normal((5, 3, 2)),
                rewards=rng.standard_normal((5, 3)),
                dones=np.zeros((4, 3)),  # wrong T
                values=rng.standard_normal((5, 3)),
                log_probs=rng.standard_normal((5, 3)),
                last_values=rng.standard_normal(3),
            )

    def test_finalize_populates_fields(self):
        segment = make_segment()
        segment.finalize(gamma=0.9, lam=0.9)
        assert segment.advantages is not None
        assert segment.returns is not None
        assert segment.valid_mask is not None
        np.testing.assert_allclose(segment.returns, segment.advantages + segment.values)

    def test_normalized_advantages_standardized(self):
        segment = make_segment(steps=20, n=10)
        segment.finalize(gamma=0.9, lam=0.9)
        normalized = segment.normalized_advantages()
        np.testing.assert_allclose(normalized.mean(), 0.0, atol=1e-8)
        np.testing.assert_allclose(normalized.std(), 1.0, atol=1e-6)

    def test_normalized_requires_finalize(self):
        segment = make_segment()
        with pytest.raises(RuntimeError):
            segment.normalized_advantages()

    def test_mean_episode_reward_respects_mask(self):
        rewards = np.ones((4, 2))
        dones = np.zeros((4, 2))
        dones[1, 0] = 1.0  # user 0 terminates at step 1
        dones[-1] = 1.0
        segment = make_segment(steps=4, n=2, rewards=rewards, dones=dones)
        segment.finalize(gamma=1.0, lam=1.0)
        # user 0 accumulates 2 valid rewards, user 1 accumulates 4.
        np.testing.assert_allclose(segment.mean_episode_reward(), 3.0)

    def test_finalize_after_reward_edit(self):
        """Reward post-processing before finalize must flow into returns."""
        segment = make_segment()
        segment.rewards = np.zeros_like(segment.rewards)
        segment.finalize(gamma=0.9, lam=1.0)
        np.testing.assert_allclose(
            segment.returns[-1], np.zeros(3) + 0.0 * segment.last_values, atol=1e-12
        )


class TestRolloutBuffer:
    def test_accumulates_segments(self):
        buffer = RolloutBuffer()
        buffer.add(make_segment(seed=0))
        buffer.add(make_segment(seed=1))
        assert len(buffer) == 2
        assert buffer.total_steps == 2 * 5 * 3

    def test_finalize_all(self):
        buffer = RolloutBuffer()
        buffer.add(make_segment(seed=0))
        buffer.add(make_segment(seed=1))
        buffer.finalize(0.9, 0.9)
        assert all(s.advantages is not None for s in buffer)

    def test_clear(self):
        buffer = RolloutBuffer()
        buffer.add(make_segment())
        buffer.clear()
        assert len(buffer) == 0

    def test_mean_reward_empty_raises(self):
        with pytest.raises(RuntimeError):
            RolloutBuffer().mean_reward()

    def test_mean_reward_averages_segments(self):
        buffer = RolloutBuffer()
        ones = np.ones((5, 3))
        threes = np.full((5, 3), 3.0)
        buffer.add(make_segment(rewards=ones))
        buffer.add(make_segment(rewards=threes))
        buffer.finalize(0.9, 0.9)
        np.testing.assert_allclose(buffer.mean_reward(), (5.0 + 15.0) / 2)

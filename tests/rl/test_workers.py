"""Sharded worker pools: protocol, param sync and failure paths.

The bitwise-equivalence contract (sharded and shard-parallel collection
reproduce the sequential ``collect_segment`` loop for any shard layout)
is enforced by the cross-mode parity suite in ``test_rollout_parity.py``.
This module keeps what is specific to the worker machinery: the pool
protocol (shm views, load/fetch, worker clamping), the policy-replica
mailbox (version stamps, oversized broadcasts, structure changes) and
the operational guarantees — a crashed worker raises instead of hanging,
stale replicas are refused, and shared memory never leaks.
"""

import os
import signal
import sys

import numpy as np
import pytest

from repro.envs import DPRConfig, DPRWorld, LTSConfig, LTSEnv
from repro.rl import (
    MLPActorCritic,
    RecurrentActorCritic,
    ShardedVecEnvPool,
    StaleReplicaError,
    VecEnvPool,
    WorkerCrashed,
    WorkerStepError,
    collect_segment,
    collect_segments_shard_parallel,
    collect_segments_vec,
    evaluate,
    sharding_available,
)
from repro.rl.parity import SEGMENT_FIELDS, assert_segments_identical
from repro.rl.workers import partition_contiguous

pytestmark = pytest.mark.skipif(
    not sharding_available(), reason="platform has no multiprocessing start method"
)


def make_world(**kwargs) -> DPRWorld:
    defaults = dict(num_cities=5, drivers_per_city=7, horizon=6, seed=3)
    defaults.update(kwargs)
    return DPRWorld(DPRConfig(**defaults))


def make_policy(**kwargs):
    defaults = dict(lstm_hidden=16, head_hidden=(32,))
    defaults.update(kwargs)
    return RecurrentActorCritic(13, 2, np.random.default_rng(0), **defaults)


class TestOverlapProtocol:
    def test_overlap_off_matches_overlap_on(self):
        """overlap=False (synchronous stepping) records the same numbers."""
        world = make_world(num_cities=4)
        policy = make_policy()
        rngs = lambda: [np.random.default_rng(200 + i) for i in range(4)]  # noqa: E731
        with ShardedVecEnvPool(world.make_all_city_envs(), num_workers=2) as pool:
            on = collect_segments_vec(pool, policy, rngs(), overlap=True)
        with ShardedVecEnvPool(world.make_all_city_envs(), num_workers=2) as pool:
            off = collect_segments_vec(pool, policy, rngs(), overlap=False)
        assert_segments_identical(on, off, label="overlap")

    def test_overlap_requires_async_pool(self):
        world = make_world(num_cities=2)
        policy = MLPActorCritic(13, 2, np.random.default_rng(4), hidden_sizes=(8,))
        pool = VecEnvPool(world.make_all_city_envs())
        with pytest.raises(ValueError, match="step_async"):
            collect_segments_vec(
                pool, policy, np.random.default_rng(0), overlap=True
            )


class TestPoolProtocol:
    def test_pool_is_a_multi_user_env(self):
        world = make_world(num_cities=4, drivers_per_city=10)
        with ShardedVecEnvPool(world.make_all_city_envs(), num_workers=2) as pool:
            assert pool.num_users == 40
            assert pool.observation_dim == 13
            assert pool.group_id == [0, 1, 2, 3]
            states = pool.reset()
            assert states.shape == (40, 13)
            next_states, rewards, dones, info = pool.step(np.full((40, 2), 0.5))
            assert rewards.shape == (40,)
            assert len(info["per_env"]) == 4
            assert next_states.base is None  # step() hands back copies

    def test_evaluate_policy_through_pool(self):
        """The pool satisfies the plain MultiUserEnv protocol end to end."""
        world = make_world(num_cities=3)
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(6), lstm_hidden=16, head_hidden=(32,)
        )
        sequential = evaluate(
            policy.as_act_fn(np.random.default_rng(0)),
            world.make_all_city_envs(),
            episodes=1,
        )
        with ShardedVecEnvPool(world.make_all_city_envs(), num_workers=2) as pool:
            pooled = evaluate(
                policy.as_act_fn(np.random.default_rng(0)), pool, mode="solo", episodes=1
            )
        weights = np.array([env.num_users for env in world.make_all_city_envs()])
        assert pooled == pytest.approx(
            float(np.sum(sequential * weights) / weights.sum())
        )

    def test_workers_clamped_to_env_count(self):
        world = make_world(num_cities=3)
        with ShardedVecEnvPool(world.make_all_city_envs(), num_workers=8) as pool:
            assert pool.num_workers == 3
            pool.reset()
            pool.step(np.zeros((pool.num_users, 2)))

    def test_rejects_duplicates_and_dim_mismatch(self):
        world = make_world(num_cities=2)
        env = world.make_city_env(0)
        with pytest.raises(ValueError, match="distinct"):
            ShardedVecEnvPool([env, env], num_workers=2)
        lts = LTSEnv(LTSConfig(num_users=5, horizon=4, seed=0))
        with pytest.raises(ValueError, match="observation dimension"):
            ShardedVecEnvPool([world.make_city_env(0), lts], num_workers=2)

    def test_partition_contiguous_balances_users(self):
        shards = partition_contiguous([3, 9, 5, 7, 4], 2)
        assert shards == [slice(0, 3), slice(3, 5)]  # 17 vs 11 users
        shards = partition_contiguous([10, 1, 1, 1, 1], 3)
        assert shards[0] == slice(0, 1)  # the heavy env gets its own shard
        assert [s.stop for s in shards][-1] == 5
        # every worker keeps at least one env even under extreme skew
        assert all(s.stop > s.start for s in partition_contiguous([100, 1, 1], 3))

    def test_load_envs_reuses_workers(self):
        world_a, world_b = make_world(seed=3), make_world(seed=99)
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(7), lstm_hidden=16, head_hidden=(32,)
        )
        rngs = lambda: [np.random.default_rng(60 + i) for i in range(5)]  # noqa: E731
        seq = [
            collect_segment(env, policy, rng)
            for env, rng in zip(world_b.make_all_city_envs(), rngs())
        ]
        with ShardedVecEnvPool(world_a.make_all_city_envs(), num_workers=2) as pool:
            collect_segments_vec(pool, policy, [np.random.default_rng(i) for i in range(5)])
            pids = [proc.pid for proc in pool._procs]
            pool.load_envs(world_b.make_all_city_envs())
            assert [proc.pid for proc in pool._procs] == pids  # same processes
            vec = collect_segments_vec(pool, policy, rngs())
        assert_segments_identical(seq, vec)

    def test_load_envs_rejects_layout_mismatch(self):
        with ShardedVecEnvPool(make_world().make_all_city_envs(), num_workers=2) as pool:
            with pytest.raises(ValueError, match="user counts"):
                pool.load_envs(make_world(drivers_per_city=9).make_all_city_envs())

    def test_fetch_member_envs_returns_advanced_state(self):
        """Worker-side env state (RNG streams) round-trips to the parent."""
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(8), lstm_hidden=16, head_hidden=(32,)
        )
        reference = make_world().make_all_city_envs()
        for i, env in enumerate(reference):
            collect_segment(env, policy, np.random.default_rng(80 + i))
        parents = make_world().make_all_city_envs()
        with ShardedVecEnvPool(parents, num_workers=2) as pool:
            collect_segments_vec(
                pool, policy, [np.random.default_rng(80 + i) for i in range(5)]
            )
            fetched = pool.fetch_member_envs()
        for mine, theirs in zip(parents, fetched):
            vars(mine).update(vars(theirs))
        # a further sequential episode matches envs that never left process
        for i, (ref, mine) in enumerate(zip(reference, parents)):
            a = collect_segment(ref, policy, np.random.default_rng(90 + i))
            b = collect_segment(mine, policy, np.random.default_rng(90 + i))
            np.testing.assert_array_equal(a.states, b.states)
            np.testing.assert_array_equal(a.rewards, b.rewards)


def shm_segment_exists(name: str):
    """Whether the named POSIX shm segment exists; None when the platform
    doesn't expose segments as files (macOS) — callers skip the assert."""
    if not sys.platform.startswith("linux"):
        return None
    return os.path.exists(f"/dev/shm/{name.lstrip('/')}")


class _ExplodingEnv(LTSEnv):
    """Raises from step() on command — exercises error forwarding."""

    def __init__(self, *args, explode_at=2, **kwargs):
        super().__init__(*args, **kwargs)
        self.explode_at = explode_at
        self._step_calls = 0

    def step(self, actions):
        self._step_calls += 1
        if self._step_calls >= self.explode_at:
            raise RuntimeError("boom from the worker side")
        return super().step(actions)


class TestParamSyncFailures:
    """Failure injection for the policy-replica broadcast protocol."""

    def test_crash_mid_broadcast_raises_and_unlinks(self):
        """A worker SIGKILLed before answering sync_policy: the broadcast
        raises WorkerCrashed instead of hanging, the pool closes, shm
        is released."""
        pool = ShardedVecEnvPool(make_world().make_all_city_envs(), num_workers=2)
        try:
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashed, match="worker 1"):
                pool.sync_policy(make_policy())
            assert pool.closed
            assert shm_segment_exists(pool.shared_memory_name) is not True
        finally:
            pool.close()  # idempotent

    def test_stale_version_stamp_raises_cleanly(self):
        """A collect whose stamp disagrees with the workers' replica
        version must refuse to roll out old weights: StaleReplicaError,
        no hang, pool closed, shared memory unlinked."""
        pool = ShardedVecEnvPool(make_world().make_all_city_envs(), num_workers=2)
        try:
            pool.sync_policy(make_policy())
            pool._replica_version += 1  # desync the stamp
            with pytest.raises(StaleReplicaError, match="version 1"):
                pool.collect_rollouts([np.random.default_rng(i) for i in range(5)])
            assert pool.closed
            assert shm_segment_exists(pool.shared_memory_name) is not True
        finally:
            pool.close()

    def test_collect_before_sync_raises_and_pool_survives(self):
        with ShardedVecEnvPool(make_world().make_all_city_envs(), num_workers=2) as pool:
            with pytest.raises(RuntimeError, match="sync_policy"):
                pool.collect_rollouts([np.random.default_rng(i) for i in range(5)])
            # parent-side validation only: the pool is still fully usable
            assert not pool.closed
            pool.sync_policy(make_policy())
            segments = pool.collect_rollouts(
                [np.random.default_rng(i) for i in range(5)]
            )
            assert len(segments) == 5

    def test_oversized_state_dict_raises_before_sending(self):
        """An over-limit replica_state raises ValueError without touching
        the workers; the pool stays open, and close() leaves no segment."""
        pool = ShardedVecEnvPool(
            make_world().make_all_city_envs(), num_workers=2, max_param_bytes=1024
        )
        try:
            with pytest.raises(ValueError, match="max_param_bytes"):
                pool.sync_policy(make_policy())
            assert not pool.closed
            assert pool.replica_version == 0  # nothing was broadcast
            # still usable as a step server despite the refused broadcast
            pool.reset()
            pool.step(np.zeros((pool.num_users, 2)))
        finally:
            pool.close()
        assert shm_segment_exists(pool.shared_memory_name) is not True

    def test_structure_change_ships_fresh_replica(self):
        """Re-syncing a differently-shaped policy falls back to the full
        object broadcast (state-only archives cannot change structure)."""
        small = make_policy()
        large = make_policy(lstm_hidden=32)
        rngs = lambda: [np.random.default_rng(500 + i) for i in range(5)]  # noqa: E731
        reference = [
            collect_segment(env, large, rng)
            for env, rng in zip(make_world().make_all_city_envs(), rngs())
        ]
        with ShardedVecEnvPool(make_world().make_all_city_envs(), num_workers=2) as pool:
            assert pool.sync_policy(small) == 1
            assert pool.sync_policy(large) == 2  # structure change: version 2
            collected = pool.collect_rollouts(rngs())
        assert_segments_identical(reference, collected, label="structure_change")

    def test_one_shot_convenience_builds_and_closes_pool(self):
        policy = make_policy()
        rngs = lambda: [np.random.default_rng(600 + i) for i in range(5)]  # noqa: E731
        reference = [
            collect_segment(env, policy, rng)
            for env, rng in zip(make_world().make_all_city_envs(), rngs())
        ]
        collected = collect_segments_shard_parallel(
            make_world().make_all_city_envs(), policy, rngs(), num_workers=2
        )
        assert_segments_identical(reference, collected, label="one_shot")


class TestReplicaResendSkip:
    """Unchanged policies are not re-broadcast (no pipe traffic at all)."""

    def test_unchanged_policy_skips_the_broadcast(self):
        policy = make_policy()
        with ShardedVecEnvPool(make_world().make_all_city_envs(), num_workers=2) as pool:
            assert pool.sync_policy(policy) == 1
            assert pool.replica_broadcasts == 1
            # Same structure, byte-identical state: nothing is sent and
            # the version stamp does not move.
            assert pool.sync_policy(policy) == 1
            assert pool.sync_policy(policy) == 1
            assert pool.replica_broadcasts == 1
            # The workers' stamp still matches, so collection proceeds.
            segments = pool.collect_rollouts(
                [np.random.default_rng(700 + i) for i in range(5)]
            )
            assert len(segments) == 5

    def test_skipped_sync_collections_stay_bit_identical(self):
        """Collecting after a skipped re-sync uses the replicas already in
        the workers — and those are exact, so segments still match the
        sequential reference."""
        policy = make_policy()
        rngs = lambda: [np.random.default_rng(710 + i) for i in range(5)]  # noqa: E731
        reference = [
            collect_segment(env, policy, rng)
            for env, rng in zip(make_world().make_all_city_envs(), rngs())
        ]
        with ShardedVecEnvPool(make_world().make_all_city_envs(), num_workers=2) as pool:
            pool.sync_policy(policy)
            pool.sync_policy(policy)  # skipped
            collected = pool.collect_rollouts(rngs())
        assert_segments_identical(reference, collected, label="skip_resend")

    def test_changed_parameters_do_resend(self):
        policy = make_policy()
        with ShardedVecEnvPool(make_world().make_all_city_envs(), num_workers=2) as pool:
            assert pool.sync_policy(policy) == 1
            policy.parameters()[0].data += 1e-6  # a real update
            assert pool.sync_policy(policy) == 2
            assert pool.replica_broadcasts == 2
            # ... and a revert is also a change relative to the cache.
            policy.parameters()[0].data -= 1e-6
            assert pool.sync_policy(policy) == 3
            assert pool.replica_broadcasts == 3

    def test_trainer_iterations_only_broadcast_on_updates(self):
        """The training loop's per-iteration sync_policy only ships bytes
        when PPO actually moved the parameters: back-to-back collect()
        calls (no update in between) reuse the workers' replica."""
        from repro.core import PolicyTrainer, lts_small_config
        from repro.envs import make_lts_task

        config = lts_small_config(seed=0)
        config.rollout_mode = "shard_parallel"
        config.rollout_workers = 2
        config.segments_per_iteration = 3
        task = make_lts_task("LTS3", num_users=6, horizon=5, seed=0)
        envs = task.make_train_envs()[:3]
        draws = iter(range(10_000))

        def round_robin(rng):  # deterministic layout: the pool is reused
            return envs[next(draws) % len(envs)]

        policy = MLPActorCritic(2, 1, np.random.default_rng(0), hidden_sizes=(8,))
        with PolicyTrainer(policy, round_robin, config) as trainer:
            trainer.collect()
            pool = trainer._worker_pool
            first = pool.replica_broadcasts
            trainer.collect()  # same parameters: no re-send
            assert trainer._worker_pool is pool
            assert pool.replica_broadcasts == first
            trainer.train_iteration()  # collect (no re-send yet) + PPO update
            trainer.collect()          # params moved: this collect re-sends
            assert trainer._worker_pool is pool
            assert pool.replica_broadcasts > first


class TestFailurePaths:
    def test_worker_crash_raises_instead_of_hanging(self):
        world = make_world(num_cities=4)
        pool = ShardedVecEnvPool(world.make_all_city_envs(), num_workers=2)
        try:
            pool.reset()
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashed, match="worker 1"):
                pool.step(np.zeros((pool.num_users, 2)))
            assert pool.closed  # crash tears the pool down
            # shared memory is gone even though close() ran via the crash path
            assert shm_segment_exists(pool.shared_memory_name) is not True
        finally:
            pool.close()  # idempotent

    def test_env_exception_forwarded_with_traceback(self):
        envs = [
            _ExplodingEnv(LTSConfig(num_users=3, horizon=6, seed=i), explode_at=2)
            for i in range(2)
        ]
        # only meaningful under fork (local classes don't survive spawn pickling)
        if not sharding_available("fork"):
            pytest.skip("needs fork start method")
        with ShardedVecEnvPool(envs, num_workers=2, start_method="fork") as pool:
            pool.reset()
            actions = np.zeros((pool.num_users, 1))
            pool.step(actions)
            with pytest.raises(WorkerStepError, match="boom from the worker side"):
                pool.step(actions)
            # the step protocol is desynchronised after an env error, so
            # the pool refuses further use rather than stepping half-blind
            assert pool.closed

    def test_close_unlinks_shared_memory(self):
        world = make_world(num_cities=2)
        pool = ShardedVecEnvPool(world.make_all_city_envs(), num_workers=2)
        name = pool.shared_memory_name
        assert shm_segment_exists(name) is not False
        pool.close()
        assert shm_segment_exists(name) is not True
        pool.close()  # double close is a no-op
        with pytest.raises(RuntimeError, match="closed"):
            pool.reset()

    def test_terminated_workers_still_clean_up(self):
        """SIGTERM'd workers (the Ctrl-C path) leave no segment behind."""
        world = make_world(num_cities=2)
        pool = ShardedVecEnvPool(world.make_all_city_envs(), num_workers=2)
        name = pool.shared_memory_name
        for proc in pool._procs:
            proc.terminate()
        pool.close()
        assert shm_segment_exists(name) is not True


class TestTrainerIntegration:
    def _make_trainer(self, workers: int):
        from repro.core import Sim2RecLTSTrainer, build_sim2rec_policy, lts_small_config
        from repro.envs import make_lts_task

        config = lts_small_config(seed=0)
        config.rollout_workers = workers
        config.segments_per_iteration = 3
        task = make_lts_task("LTS3", num_users=8, horizon=6, seed=0)
        policy = build_sim2rec_policy(2, 1, config)
        return Sim2RecLTSTrainer(policy, task, config)

    def test_trainer_collect_bitwise_matches_in_process(self):
        """rollout_workers=2 reproduces the in-process run across multiple
        iterations — the fetch/sync path keeps the shared task envs'
        state continuity intact."""
        base = self._make_trainer(workers=1)
        sharded = self._make_trainer(workers=2)
        try:
            for _ in range(2):
                buffer_a, rewards_a = base.collect()
                buffer_b, rewards_b = sharded.collect()
                assert rewards_a == rewards_b
                for seg_a, seg_b in zip(buffer_a.segments, buffer_b.segments):
                    for name in SEGMENT_FIELDS:
                        np.testing.assert_array_equal(
                            getattr(seg_a, name), getattr(seg_b, name), err_msg=name
                        )
            assert sharded._worker_pool is not None  # pool reused, not rebuilt
        finally:
            base.close()
            sharded.close()
        assert sharded._worker_pool is None

    def test_unpicklable_policy_degrades_to_step_server(self):
        """A policy that cannot cross the process boundary (externally
        attached lambdas etc.) must not break the *derived* default for
        rollout_workers > 1: the trainer warns once and falls back to
        step-server sharding, which never ships the policy."""
        trainer = self._make_trainer(workers=2)
        trainer.policy._attached_hook = lambda x: x  # unpicklable member
        try:
            with pytest.warns(RuntimeWarning, match="step-server"):
                buffer, _ = trainer.collect()
            assert len(buffer) == 3
            buffer, _ = trainer.collect()  # second collect: no new warning path
            assert trainer._replica_unpicklable
            assert trainer._worker_pool is not None  # still sharded, as step server
        finally:
            trainer.close()

    def test_unpicklable_policy_fails_loudly_when_mode_explicit(self):
        """An *explicitly requested* shard_parallel mode is honoured or
        fails — never silently downgraded."""
        trainer = self._make_trainer(workers=2)
        trainer.config.rollout_mode = "shard_parallel"
        trainer.policy._attached_hook = lambda x: x
        try:
            with pytest.raises((TypeError, AttributeError)):
                trainer.collect()
        finally:
            trainer.close()

    def test_rollout_workers_degrade_on_single_env_batches(self):
        trainer = self._make_trainer(workers=4)
        trainer.config.segments_per_iteration = 1
        try:
            buffer, _ = trainer.collect()
            assert len(buffer) == 1
            assert trainer._worker_pool is None  # single-env batch stays in-process
        finally:
            trainer.close()


class TestAsyncCollect:
    """The collect_rollouts_async()/collect_rollouts_wait() split."""

    def _pool_and_policy(self, **pool_kwargs):
        policy = make_policy()
        pool = ShardedVecEnvPool(
            make_world().make_all_city_envs(), num_workers=2, **pool_kwargs
        )
        pool.sync_policy(policy)
        return pool, policy

    def test_async_then_wait_matches_synchronous_collect(self):
        """Splitting dispatch from gather changes no bytes."""
        policy = make_policy()
        rngs = lambda: [np.random.default_rng(900 + i) for i in range(5)]  # noqa: E731
        with ShardedVecEnvPool(
            make_world().make_all_city_envs(), num_workers=2
        ) as pool:
            pool.sync_policy(policy)
            reference = pool.collect_rollouts(rngs())
        with ShardedVecEnvPool(
            make_world().make_all_city_envs(), num_workers=2
        ) as pool:
            pool.sync_policy(policy)
            assert not pool.collect_pending
            pool.collect_rollouts_async(rngs())
            assert pool.collect_pending
            collected = pool.collect_rollouts_wait()
            assert not pool.collect_pending
        assert_segments_identical(reference, collected, label="async_split")

    def test_wait_without_async_raises(self):
        pool, _ = self._pool_and_policy()
        with pool:
            with pytest.raises(RuntimeError, match="without a collect_rollouts_async"):
                pool.collect_rollouts_wait()

    def test_conflicting_commands_are_fenced_until_wait(self):
        """Every command that would interleave with the in-flight rollout
        replies raises; the wait still gathers clean segments after."""
        pool, policy = self._pool_and_policy()
        rngs = [np.random.default_rng(910 + i) for i in range(5)]
        with pool:
            pool.collect_rollouts_async(rngs)
            for call in (
                lambda: pool.collect_rollouts_async(rngs),
                lambda: pool.collect_rollouts(rngs),
                pool.reset,
                lambda: pool.step_async(np.zeros((pool.num_users, 2))),
                lambda: pool.sync_policy(policy),
                lambda: pool.evaluate_policy(np.random.default_rng(0)),
                lambda: pool.load_envs(make_world().make_all_city_envs()),
                pool.fetch_member_envs,
            ):
                with pytest.raises(RuntimeError, match="in-flight collect"):
                    call()
            segments = pool.collect_rollouts_wait()
            assert len(segments) == 5

    def test_close_discards_inflight_collect(self):
        """close() during an async collect tears down cleanly (no hang,
        shm unlinked) and the pool reports no pending collect."""
        pool, _ = self._pool_and_policy()
        name = pool.shared_memory_name
        pool.collect_rollouts_async(
            [np.random.default_rng(920 + i) for i in range(5)]
        )
        pool.close()
        assert not pool.collect_pending
        assert shm_segment_exists(name) is not True

    def test_owner_rng_commit_happens_at_wait(self):
        """Caller-owned generators advance only when the wait lands —
        dispatching alone must not mutate them."""
        pool, _ = self._pool_and_policy()
        rngs = [np.random.default_rng(930 + i) for i in range(5)]
        states_before = [rng.bit_generator.state for rng in rngs]
        with pool:
            pool.collect_rollouts_async(rngs)
            assert [rng.bit_generator.state for rng in rngs] == states_before
            pool.collect_rollouts_wait()
            assert [rng.bit_generator.state for rng in rngs] != states_before

    def test_worker_killed_mid_async_collect_recovers_bit_identically(self):
        """A SIGKILL while the prefetch is in flight is recovered by the
        wait under a FaultPolicy, with byte-identical segments."""
        from repro.rl.workers import FaultPolicy

        policy = make_policy()
        rngs = lambda: [np.random.default_rng(940 + i) for i in range(5)]  # noqa: E731
        with ShardedVecEnvPool(
            make_world().make_all_city_envs(), num_workers=2
        ) as pool:
            pool.sync_policy(policy)
            reference = pool.collect_rollouts(rngs())
        fault = FaultPolicy(
            max_restarts=2, backoff=0.0, collect_deadline=30.0, graceful_join=0.5
        )
        with ShardedVecEnvPool(
            make_world().make_all_city_envs(), num_workers=2, fault_policy=fault
        ) as pool:
            pool.sync_policy(policy)
            pool.collect_rollouts_async(rngs())
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            collected = pool.collect_rollouts_wait()
            assert pool.restart_counts[0] >= 1
        assert_segments_identical(reference, collected, label="async_recovery")

    def test_degraded_pool_defers_collect_to_wait(self):
        """On a degraded pool the async dispatch records inputs and the
        wait runs the in-process collect — same bits as synchronous."""
        from repro.rl.workers import FaultPolicy

        policy = make_policy()
        rngs = lambda: [np.random.default_rng(950 + i) for i in range(5)]  # noqa: E731
        fault = FaultPolicy(max_restarts=0, backoff=0.0, graceful_join=0.5)

        def degraded_pool():
            pool = ShardedVecEnvPool(
                make_world().make_all_city_envs(), num_workers=2, fault_policy=fault
            )
            pool.sync_policy(policy)
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            with pytest.warns(RuntimeWarning, match="degrading"):
                pool.reset()
            assert pool.degraded
            return pool

        with degraded_pool() as pool:
            reference = pool.collect_rollouts(rngs())
        with degraded_pool() as pool:
            pool.collect_rollouts_async(rngs())
            assert pool.collect_pending
            collected = pool.collect_rollouts_wait()
        assert_segments_identical(reference, collected, label="async_degraded")

"""Stacked-segment PPO evaluation: equivalence with the sequential path.

The contract under test (see :mod:`repro.rl.policies`):
``evaluate_segments_batched`` over same-length segments returns log-probs
/ values / entropies *bit-identical* to calling ``evaluate_segment``
segment by segment — the learning-side mirror of the rollout engine's
determinism contract in :mod:`repro.rl.vec` — and the PPO length-bucketed
update (``PPOConfig.batch_segments``) degrades gracefully on ragged
buffers (lengths 1, T and anything between land in separate buckets).
"""

import numpy as np
import pytest

from repro.core import build_sim2rec_policy, dpr_small_config
from repro.envs import DPRConfig, DPRWorld
from repro.rl import (
    MLPActorCritic,
    PPO,
    PPOConfig,
    RecurrentActorCritic,
    RolloutBuffer,
    collect_segment,
)
from tests.rl.test_ppo import TargetActionEnv


def make_world(**kwargs) -> DPRWorld:
    defaults = dict(num_cities=4, drivers_per_city=7, horizon=6, seed=3)
    defaults.update(kwargs)
    return DPRWorld(DPRConfig(**defaults))


def collect_world_segments(world, policy, seed=50, max_steps=None):
    return [
        collect_segment(env, policy, np.random.default_rng(seed + i), max_steps=max_steps)
        for i, env in enumerate(world.make_all_city_envs())
    ]


def assert_batched_eval_identical(policy, segments, user_idxs):
    """Both evaluation paths, same embedding-noise stream, bitwise compare."""
    if hasattr(policy, "_eval_rng"):
        policy._eval_rng = np.random.default_rng(7)
    sequential = [
        policy.evaluate_segment(segment, idx)
        for segment, idx in zip(segments, user_idxs)
    ]
    if hasattr(policy, "_eval_rng"):
        policy._eval_rng = np.random.default_rng(7)
    log_probs, values, entropy = policy.evaluate_segments_batched(segments, user_idxs)
    offset = 0
    for (seq_lp, seq_v, seq_e), idx in zip(sequential, user_idxs):
        block = slice(offset, offset + len(idx))
        np.testing.assert_array_equal(seq_lp.data, log_probs.data[:, block])
        np.testing.assert_array_equal(seq_v.data, values.data[:, block])
        np.testing.assert_array_equal(seq_e.data, entropy.data[:, block])
        offset += len(idx)
    assert offset == log_probs.shape[1]


class TestBatchedEvaluationEquivalence:
    def test_mlp_policy(self):
        world = make_world()
        policy = MLPActorCritic(13, 2, np.random.default_rng(1), hidden_sizes=(16,))
        segments = collect_world_segments(world, policy)
        idxs = [np.arange(s.num_users) for s in segments]
        assert_batched_eval_identical(policy, segments, idxs)

    def test_recurrent_policy(self):
        world = make_world()
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(0), lstm_hidden=16, head_hidden=(32,)
        )
        segments = collect_world_segments(world, policy)
        idxs = [np.arange(s.num_users) for s in segments]
        assert_batched_eval_identical(policy, segments, idxs)

    def test_sim2rec_policy_with_minibatch_subsets(self):
        """The acceptance case: SADAE-context policy, uneven user subsets
        (the shape the PPO minibatch loop produces)."""
        world = make_world()
        policy = build_sim2rec_policy(13, 2, dpr_small_config(seed=0))
        segments = collect_world_segments(world, policy)
        idxs = [
            np.array([0, 3, 5]),
            np.arange(segments[1].num_users),
            np.array([6]),
            np.array([1, 2]),
        ]
        assert_batched_eval_identical(policy, segments, idxs)

    def test_gru_policy(self):
        world = make_world(num_cities=3, drivers_per_city=5, horizon=4, seed=11)
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(2), lstm_hidden=16, head_hidden=(32,), cell="gru"
        )
        segments = collect_world_segments(world, policy)
        idxs = [np.arange(s.num_users)[::2] for s in segments]
        assert_batched_eval_identical(policy, segments, idxs)

    def test_horizon_one_segments(self):
        """Length-1 segments: the shortest possible bucket still batches."""
        world = make_world()
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(4), lstm_hidden=16, head_hidden=(32,)
        )
        segments = collect_world_segments(world, policy, max_steps=1)
        assert all(s.horizon == 1 for s in segments)
        idxs = [np.arange(s.num_users) for s in segments]
        assert_batched_eval_identical(policy, segments, idxs)

    def test_base_class_fallback_matches(self):
        """A policy without an override gets the correct looped fallback."""
        from repro.rl.policies import ActorCriticBase

        class PlainPolicy(MLPActorCritic):
            evaluate_segments_batched = ActorCriticBase.evaluate_segments_batched

        world = make_world(num_cities=2)
        policy = PlainPolicy(13, 2, np.random.default_rng(5), hidden_sizes=(8,))
        segments = collect_world_segments(world, policy)
        idxs = [np.arange(s.num_users) for s in segments]
        assert_batched_eval_identical(policy, segments, idxs)

    def test_mixed_horizons_rejected(self):
        world = make_world()
        policy = MLPActorCritic(13, 2, np.random.default_rng(1), hidden_sizes=(8,))
        long = collect_world_segments(world, policy)
        short = collect_world_segments(world, policy, max_steps=2)
        with pytest.raises(ValueError, match="equal-length"):
            policy.evaluate_segments_batched(
                [long[0], short[0]],
                [np.arange(long[0].num_users), np.arange(short[0].num_users)],
            )


def fresh_policy_and_segments(batch_segments, num_segments=3, horizon=5, seed=9):
    policy = MLPActorCritic(2, 1, np.random.default_rng(seed), hidden_sizes=(8,))
    rng = np.random.default_rng(seed + 1)
    buffer = RolloutBuffer()
    for i in range(num_segments):
        env = TargetActionEnv(num_users=6, horizon=horizon, seed=100 + i)
        buffer.add(collect_segment(env, policy, rng))
    buffer.finalize(0.99, 0.95)
    ppo = PPO(policy, PPOConfig(update_epochs=2, batch_segments=batch_segments))
    return policy, ppo, buffer


class TestBatchedPPOUpdate:
    def test_ragged_buffer_buckets_by_length(self):
        """Lengths 1, T and mixed in one buffer: every bucket updates."""
        policy = MLPActorCritic(2, 1, np.random.default_rng(0), hidden_sizes=(8,))
        rng = np.random.default_rng(1)
        buffer = RolloutBuffer()
        for horizon in (1, 5, 1, 3, 5):
            env = TargetActionEnv(num_users=5, horizon=horizon, seed=horizon)
            buffer.add(collect_segment(env, policy, rng))
        buffer.finalize(0.99, 0.95)
        ppo = PPO(policy, PPOConfig(update_epochs=1, batch_segments=True))
        stats = ppo.update(buffer)
        assert np.isfinite(stats["policy_loss"])

    def test_single_segment_buffer_identical_to_sequential(self):
        """A one-segment buffer must update bit-identically either way.

        The minibatch split is seeded by the segment object, so both runs
        share one buffer and the policy parameters are restored between
        them.
        """
        policy, _, buffer = fresh_policy_and_segments(False, num_segments=1)
        initial = [p.data.copy() for p in policy.parameters()]
        results = {}
        for flag in (False, True):
            for param, data in zip(policy.parameters(), initial):
                param.data = data.copy()
            ppo = PPO(policy, PPOConfig(update_epochs=2, batch_segments=flag))
            ppo.update(buffer)
            results[flag] = [p.data.copy() for p in policy.parameters()]
        for a, b in zip(results[False], results[True]):
            np.testing.assert_array_equal(a, b)

    def test_multi_segment_buffer_takes_fewer_bigger_steps(self):
        """Same-length segments share one optimizer step per round."""
        policy, ppo, buffer = fresh_policy_and_segments(True, num_segments=3)
        steps = []
        original = ppo.optimizer.step

        def counting_step():
            steps.append(1)
            return original()

        ppo.optimizer.step = counting_step
        ppo.update(buffer)
        # 2 epochs x minibatches_per_segment(=2) rounds, segments stacked
        assert len(steps) == 2 * 2

    def test_recurrent_batched_update_changes_parameters(self):
        policy = RecurrentActorCritic(
            2, 1, np.random.default_rng(2), lstm_hidden=8, head_hidden=(16,)
        )
        rng = np.random.default_rng(3)
        buffer = RolloutBuffer()
        for i in range(2):
            env = TargetActionEnv(num_users=6, horizon=4, seed=i)
            buffer.add(collect_segment(env, policy, rng))
        buffer.finalize(0.99, 0.95)
        before = policy.actor.layers[0].weight.data.copy()
        ppo = PPO(policy, PPOConfig(update_epochs=1, batch_segments=True))
        ppo.update(buffer)
        assert not np.allclose(before, policy.actor.layers[0].weight.data)

"""Tests for GAE against brute-force reference computations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl import compute_gae, valid_step_mask


def brute_force_gae(rewards, values, dones, last_values, gamma, lam, bootstrap_last=False):
    """O(T²) reference implementation."""
    steps, n = rewards.shape
    advantages = np.zeros_like(rewards)
    for user in range(n):
        for t in range(steps):
            advantage = 0.0
            weight = 1.0
            for k in range(t, steps):
                non_terminal = 1.0 - dones[k, user]
                if k == steps - 1 and bootstrap_last:
                    non_terminal = 1.0
                next_value = values[k + 1, user] if k + 1 < steps else last_values[user]
                delta = rewards[k, user] + gamma * next_value * non_terminal - values[k, user]
                advantage += weight * delta
                if non_terminal == 0.0:
                    break
                weight *= gamma * lam
            advantages[t, user] = advantage
    return advantages


class TestComputeGAE:
    def random_inputs(self, steps=6, n=3, seed=0, with_dones=False):
        rng = np.random.default_rng(seed)
        rewards = rng.standard_normal((steps, n))
        values = rng.standard_normal((steps, n))
        dones = np.zeros((steps, n))
        if with_dones:
            dones[2, 0] = 1.0
            dones[4, 2] = 1.0
        dones[-1] = 1.0
        last_values = rng.standard_normal(n)
        return rewards, values, dones, last_values

    def test_matches_brute_force(self):
        rewards, values, dones, last = self.random_inputs()
        adv, _ = compute_gae(rewards, values, dones, last, gamma=0.9, lam=0.8)
        expected = brute_force_gae(rewards, values, dones, last, 0.9, 0.8)
        np.testing.assert_allclose(adv, expected, atol=1e-10)

    def test_matches_brute_force_with_mid_dones(self):
        rewards, values, dones, last = self.random_inputs(with_dones=True)
        adv, _ = compute_gae(rewards, values, dones, last, gamma=0.95, lam=0.9)
        expected = brute_force_gae(rewards, values, dones, last, 0.95, 0.9)
        np.testing.assert_allclose(adv, expected, atol=1e-10)

    def test_bootstrap_last_matches_brute_force(self):
        rewards, values, dones, last = self.random_inputs()
        adv, _ = compute_gae(rewards, values, dones, last, 0.9, 0.8, bootstrap_last=True)
        expected = brute_force_gae(rewards, values, dones, last, 0.9, 0.8, bootstrap_last=True)
        np.testing.assert_allclose(adv, expected, atol=1e-10)

    def test_returns_are_advantages_plus_values(self):
        rewards, values, dones, last = self.random_inputs()
        adv, returns = compute_gae(rewards, values, dones, last, 0.9, 0.8)
        np.testing.assert_allclose(returns, adv + values, atol=1e-12)

    def test_lambda_one_equals_monte_carlo(self):
        """With λ=1 and terminal at T, advantage = discounted return - value."""
        rewards, values, dones, last = self.random_inputs()
        adv, _ = compute_gae(rewards, values, dones, last, gamma=0.9, lam=1.0)
        steps = rewards.shape[0]
        discounted = np.zeros_like(rewards[0])
        for t in reversed(range(steps)):
            discounted = rewards[t] + 0.9 * discounted * (1.0 - dones[t])
        np.testing.assert_allclose(adv[0], discounted - values[0], atol=1e-10)

    def test_lambda_zero_is_one_step_td(self):
        rewards, values, dones, last = self.random_inputs()
        adv, _ = compute_gae(rewards, values, dones, last, gamma=0.9, lam=0.0)
        expected_t0 = rewards[0] + 0.9 * values[1] * (1 - dones[0]) - values[0]
        np.testing.assert_allclose(adv[0], expected_t0, atol=1e-12)

    def test_terminal_blocks_bootstrap(self):
        rewards = np.array([[1.0], [1.0]])
        values = np.zeros((2, 1))
        dones = np.array([[1.0], [1.0]])
        last = np.array([100.0])
        adv, _ = compute_gae(rewards, values, dones, last, gamma=0.9, lam=0.9)
        np.testing.assert_allclose(adv, [[1.0], [1.0]])

    def test_bootstrap_last_uses_last_value(self):
        rewards = np.array([[0.0]])
        values = np.array([[0.0]])
        dones = np.array([[1.0]])
        last = np.array([10.0])
        adv, _ = compute_gae(rewards, values, dones, last, 0.5, 1.0, bootstrap_last=True)
        np.testing.assert_allclose(adv, [[5.0]])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            compute_gae(
                np.zeros((3, 2)), np.zeros((4, 2)), np.zeros((3, 2)), np.zeros(2), 0.9, 0.9
            )

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_brute_force(self, steps, n, seed):
        rng = np.random.default_rng(seed)
        rewards = rng.standard_normal((steps, n))
        values = rng.standard_normal((steps, n))
        dones = (rng.random((steps, n)) < 0.2).astype(float)
        dones[-1] = 1.0
        last = rng.standard_normal(n)
        adv, _ = compute_gae(rewards, values, dones, last, 0.93, 0.85)
        expected = brute_force_gae(rewards, values, dones, last, 0.93, 0.85)
        np.testing.assert_allclose(adv, expected, atol=1e-9)


class TestValidStepMask:
    def test_all_valid_without_dones(self):
        dones = np.zeros((4, 2))
        np.testing.assert_array_equal(valid_step_mask(dones), np.ones((4, 2)))

    def test_invalid_after_first_done(self):
        dones = np.array([[0.0], [1.0], [0.0], [0.0]])
        np.testing.assert_array_equal(valid_step_mask(dones)[:, 0], [1.0, 1.0, 0.0, 0.0])

    def test_done_step_itself_is_valid(self):
        dones = np.array([[1.0], [0.0]])
        np.testing.assert_array_equal(valid_step_mask(dones)[:, 0], [1.0, 0.0])

    def test_per_user_independent(self):
        dones = np.array([[0.0, 1.0], [0.0, 0.0], [1.0, 0.0]])
        mask = valid_step_mask(dones)
        np.testing.assert_array_equal(mask[:, 0], [1.0, 1.0, 1.0])
        np.testing.assert_array_equal(mask[:, 1], [1.0, 0.0, 0.0])

"""VecEnvPool protocol, BlockRNG streams and trainer pooling behaviour.

The sequential-equivalence contract itself (vectorized collection is
bit-identical to looping ``collect_segment``) is enforced by the
cross-mode parity suite in ``test_rollout_parity.py`` — this module
keeps the pool-protocol, stream-isolation and trainer-integration tests
that are specific to the in-process :class:`VecEnvPool`.
"""

import numpy as np
import pytest

from repro.core import build_sim2rec_policy, dpr_small_config
from repro.envs import DPRConfig, DPRWorld
from repro.rl import (
    BlockRNG,
    RecurrentActorCritic,
    VecEnvPool,
    collect_segment,
    collect_segments_vec,
    evaluate,
)
from repro.rl.parity import assert_segments_identical


def make_world(**kwargs) -> DPRWorld:
    defaults = dict(num_cities=4, drivers_per_city=10, horizon=6, seed=3)
    defaults.update(kwargs)
    return DPRWorld(DPRConfig(**defaults))


class TestCollectEdgeCases:
    def test_many_city_batch(self):
        # Large stacked batch (200 users): exercises the BLAS kernel
        # regimes where narrow-head matmuls were batch-size dependent —
        # bigger than the parity suite's layouts, so it stays here.
        world = make_world(num_cities=20, drivers_per_city=10, horizon=5, seed=21)
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(6), lstm_hidden=32, head_hidden=(64,)
        )
        rngs_seq = [np.random.default_rng(400 + i) for i in range(20)]
        rngs_vec = [np.random.default_rng(400 + i) for i in range(20)]
        seq = [
            collect_segment(env, policy, rng)
            for env, rng in zip(world.make_all_city_envs(), rngs_seq)
        ]
        vec = collect_segments_vec(world.make_all_city_envs(), policy, rngs_vec)
        assert_segments_identical(seq, vec, label="many_city_batch")


class TestVecEnvPool:
    def test_pool_is_a_multi_user_env(self):
        world = make_world()
        pool = VecEnvPool(world.make_all_city_envs())
        assert pool.num_users == 4 * 10
        assert pool.observation_dim == 13
        assert pool.group_id == [0, 1, 2, 3]
        states = pool.reset()
        assert states.shape == (40, 13)
        next_states, rewards, dones, info = pool.step(np.full((40, 2), 0.5))
        assert rewards.shape == (40,)
        assert len(info["per_env"]) == 4

    def test_rejects_duplicate_env_objects(self):
        world = make_world()
        env = world.make_city_env(0)
        with pytest.raises(ValueError, match="distinct"):
            VecEnvPool([env, env])

    def test_rejects_dim_mismatch(self):
        from repro.envs import LTSConfig, LTSEnv

        world = make_world()
        lts = LTSEnv(LTSConfig(num_users=5, horizon=4, seed=0))
        with pytest.raises(ValueError, match="observation dimension"):
            VecEnvPool([world.make_city_env(0), lts])

    def test_block_rng_draws_match_per_env_streams(self):
        slices = [slice(0, 3), slice(3, 8)]
        block = BlockRNG([np.random.default_rng(0), np.random.default_rng(1)], slices)
        direct = [np.random.default_rng(0), np.random.default_rng(1)]
        draws = block.standard_normal((8, 2))
        np.testing.assert_array_equal(draws[0:3], direct[0].standard_normal((3, 2)))
        np.testing.assert_array_equal(draws[3:8], direct[1].standard_normal((5, 2)))
        with pytest.raises(ValueError):
            block.standard_normal((4, 2))


class TestEvaluatePolicyVec:
    def test_matches_sequential_evaluate(self):
        world = make_world()
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(5), lstm_hidden=16, head_hidden=(32,)
        )
        seq_returns = np.array(
            [
                evaluate(policy.as_act_fn(np.random.default_rng(0)), env, episodes=1)
                for env in world.make_all_city_envs()
            ]
        )
        vec_returns = evaluate(
            policy.as_act_fn(np.random.default_rng(0)),
            world.make_all_city_envs(),
            episodes=1,
        )
        # Deterministic act_fn + identical env streams: identical numbers.
        np.testing.assert_array_equal(seq_returns, vec_returns)

    def test_pool_works_through_plain_evaluate_policy(self):
        world = make_world()
        policy = build_sim2rec_policy(13, 2, dpr_small_config(seed=1))
        pool = VecEnvPool(world.make_all_city_envs())
        pooled = evaluate(
            policy.as_act_fn(np.random.default_rng(0)), pool, mode="solo", episodes=1
        )
        per_env = evaluate(
            policy.as_act_fn(np.random.default_rng(0)),
            VecEnvPool(world.make_all_city_envs()),
            episodes=1,
        )
        # The pool's aggregate mean weights every user equally.
        assert pooled == pytest.approx(float(np.mean(per_env)))


class TestTrainerVectorizedCollect:
    def test_vectorized_collect_produces_full_buffer(self):
        from repro.core import Sim2RecLTSTrainer, lts_small_config
        from repro.envs import make_lts_task

        config = lts_small_config(seed=0)
        assert config.vectorized_rollouts  # batched by default
        task = make_lts_task("LTS3", num_users=8, horizon=6, seed=0)
        policy = build_sim2rec_policy(2, 1, config)
        trainer = Sim2RecLTSTrainer(policy, task, config)
        buffer, raw_rewards = trainer.collect()
        assert len(buffer) == config.segments_per_iteration
        assert len(raw_rewards) == config.segments_per_iteration
        metrics = trainer.train_iteration()
        assert "reward" in metrics

    def test_duplicate_env_samples_fall_back_to_extra_rounds(self):
        from repro.core.trainer import _poolable_batches

        world = make_world()
        env_a, env_b = world.make_city_env(0), world.make_city_env(1)
        batches = _poolable_batches([env_a, env_b, env_a])
        assert [[index for index, _ in batch] for batch in batches] == [[0, 1], [2]]

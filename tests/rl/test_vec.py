"""Vectorized rollout engine: seeded equivalence with the sequential path.

The contract under test (see :mod:`repro.rl.vec`): collecting all cities
through a :class:`VecEnvPool` with one ``policy.act`` per timestep yields
per-city :class:`RolloutSegment` objects *bit-identical* to looping
``collect_segment`` city by city, provided each city keeps its own
policy-noise stream and the same policy instance (same weight buffers)
drives both paths.
"""

import numpy as np
import pytest

from repro.core import build_sim2rec_policy, dpr_small_config
from repro.envs import DPRConfig, DPRWorld, evaluate_policy
from repro.rl import (
    BlockRNG,
    MLPActorCritic,
    RecurrentActorCritic,
    VecEnvPool,
    collect_segment,
    collect_segments_vec,
    evaluate_policy_vec,
)

SEGMENT_FIELDS = (
    "states",
    "prev_actions",
    "actions",
    "rewards",
    "dones",
    "values",
    "log_probs",
    "last_values",
)


def make_world(**kwargs) -> DPRWorld:
    defaults = dict(num_cities=4, drivers_per_city=10, horizon=6, seed=3)
    defaults.update(kwargs)
    return DPRWorld(DPRConfig(**defaults))


def assert_segments_identical(seq, vec):
    assert len(seq) == len(vec)
    for s, v in zip(seq, vec):
        assert s.group_id == v.group_id
        for name in SEGMENT_FIELDS:
            a, b = getattr(s, name), getattr(v, name)
            assert a.shape == b.shape, (name, a.shape, b.shape)
            np.testing.assert_array_equal(a, b, err_msg=name)
        assert set(s.extras) == set(v.extras)
        for key in s.extras:
            np.testing.assert_array_equal(s.extras[key], v.extras[key], err_msg=key)


def collect_both(world, policy, max_steps=None, extras=(), seed=100):
    n = world.num_cities
    rngs_seq = [np.random.default_rng(seed + i) for i in range(n)]
    rngs_vec = [np.random.default_rng(seed + i) for i in range(n)]
    seq = [
        collect_segment(env, policy, rng, max_steps=max_steps, extras_from_info=extras)
        for env, rng in zip(world.make_all_city_envs(), rngs_seq)
    ]
    vec = collect_segments_vec(
        world.make_all_city_envs(),
        policy,
        rngs_vec,
        max_steps=max_steps,
        extras_from_info=extras,
    )
    return seq, vec


class TestCollectEquivalence:
    def test_recurrent_policy_full_horizon(self):
        world = make_world()
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(0), lstm_hidden=16, head_hidden=(32,)
        )
        assert_segments_identical(*collect_both(world, policy))

    def test_sim2rec_policy_with_truncation_and_extras(self):
        """The acceptance case: SADAE context policy over DPRWorld city
        envs, truncated (so last_values bootstraps mid-episode), with
        extras stacked from the env info dicts."""
        world = make_world()
        policy = build_sim2rec_policy(13, 2, dpr_small_config(seed=0))
        seq, vec = collect_both(
            world, policy, max_steps=4, extras=("orders", "cost")
        )
        assert_segments_identical(seq, vec)
        assert seq[0].horizon == 4  # truncated below env horizon
        assert set(seq[0].extras) == {"orders", "cost"}

    def test_mlp_policy(self):
        world = make_world()
        policy = MLPActorCritic(13, 2, np.random.default_rng(1), hidden_sizes=(16,))
        assert_segments_identical(*collect_both(world, policy, max_steps=3))

    def test_gru_policy_odd_block_sizes(self):
        # 7 drivers/city: blocks that do not align with BLAS kernel
        # chunking — the regression case for the value-head gemv fix.
        world = make_world(num_cities=5, drivers_per_city=7, horizon=5, seed=11)
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(2), lstm_hidden=16, head_hidden=(32,), cell="gru"
        )
        assert_segments_identical(*collect_both(world, policy))

    def test_many_city_batch(self):
        # Large stacked batch (200 users): exercises the BLAS kernel
        # regimes where narrow-head matmuls were batch-size dependent.
        world = make_world(num_cities=20, drivers_per_city=10, horizon=5, seed=21)
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(6), lstm_hidden=32, head_hidden=(64,)
        )
        assert_segments_identical(*collect_both(world, policy, seed=400))

    def test_multi_episode_rng_continuity(self):
        """Back-to-back episodes on the same envs keep every stream aligned."""
        world = make_world()
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(3), lstm_hidden=16, head_hidden=(32,)
        )
        envs_seq = world.make_all_city_envs()
        envs_vec = world.make_all_city_envs()
        rngs_seq = [np.random.default_rng(50 + i) for i in range(4)]
        rngs_vec = [np.random.default_rng(50 + i) for i in range(4)]
        pool = VecEnvPool(envs_vec)
        for _ in range(2):
            seq = [collect_segment(e, policy, r) for e, r in zip(envs_seq, rngs_seq)]
            vec = collect_segments_vec(pool, policy, rngs_vec)
            assert_segments_identical(seq, vec)

    def test_heterogeneous_horizons_truncate_per_env(self):
        """Per-env done masking: members leave the pool at their own
        horizon; each segment is cut and bootstrapped at its own end."""
        config = DPRConfig(num_cities=3, drivers_per_city=6, horizon=8, seed=9)
        world = DPRWorld(config)
        envs_seq = world.make_all_city_envs()
        envs_vec = world.make_all_city_envs()
        for envs in (envs_seq, envs_vec):
            envs[0].horizon = 3
            envs[2].horizon = 6
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(4), lstm_hidden=16, head_hidden=(32,)
        )
        rngs_seq = [np.random.default_rng(70 + i) for i in range(3)]
        rngs_vec = [np.random.default_rng(70 + i) for i in range(3)]
        seq = [collect_segment(e, policy, r) for e, r in zip(envs_seq, rngs_seq)]
        vec = collect_segments_vec(envs_vec, policy, rngs_vec)
        assert [s.horizon for s in vec] == [3, 8, 6]
        assert_segments_identical(seq, vec)


class TestVecEnvPool:
    def test_pool_is_a_multi_user_env(self):
        world = make_world()
        pool = VecEnvPool(world.make_all_city_envs())
        assert pool.num_users == 4 * 10
        assert pool.observation_dim == 13
        assert pool.group_id == [0, 1, 2, 3]
        states = pool.reset()
        assert states.shape == (40, 13)
        next_states, rewards, dones, info = pool.step(np.full((40, 2), 0.5))
        assert rewards.shape == (40,)
        assert len(info["per_env"]) == 4

    def test_rejects_duplicate_env_objects(self):
        world = make_world()
        env = world.make_city_env(0)
        with pytest.raises(ValueError, match="distinct"):
            VecEnvPool([env, env])

    def test_rejects_dim_mismatch(self):
        from repro.envs import LTSConfig, LTSEnv

        world = make_world()
        lts = LTSEnv(LTSConfig(num_users=5, horizon=4, seed=0))
        with pytest.raises(ValueError, match="observation dimension"):
            VecEnvPool([world.make_city_env(0), lts])

    def test_block_rng_draws_match_per_env_streams(self):
        slices = [slice(0, 3), slice(3, 8)]
        block = BlockRNG([np.random.default_rng(0), np.random.default_rng(1)], slices)
        direct = [np.random.default_rng(0), np.random.default_rng(1)]
        draws = block.standard_normal((8, 2))
        np.testing.assert_array_equal(draws[0:3], direct[0].standard_normal((3, 2)))
        np.testing.assert_array_equal(draws[3:8], direct[1].standard_normal((5, 2)))
        with pytest.raises(ValueError):
            block.standard_normal((4, 2))


class TestEvaluatePolicyVec:
    def test_matches_sequential_evaluate(self):
        world = make_world()
        policy = RecurrentActorCritic(
            13, 2, np.random.default_rng(5), lstm_hidden=16, head_hidden=(32,)
        )
        seq_returns = np.array(
            [
                evaluate_policy(env, policy.as_act_fn(np.random.default_rng(0)), episodes=1)
                for env in world.make_all_city_envs()
            ]
        )
        vec_returns = evaluate_policy_vec(
            world.make_all_city_envs(),
            policy.as_act_fn(np.random.default_rng(0)),
            episodes=1,
        )
        # Deterministic act_fn + identical env streams: identical numbers.
        np.testing.assert_array_equal(seq_returns, vec_returns)

    def test_pool_works_through_plain_evaluate_policy(self):
        world = make_world()
        policy = build_sim2rec_policy(13, 2, dpr_small_config(seed=1))
        pool = VecEnvPool(world.make_all_city_envs())
        pooled = evaluate_policy(pool, policy.as_act_fn(np.random.default_rng(0)), episodes=1)
        per_env = evaluate_policy_vec(
            VecEnvPool(world.make_all_city_envs()),
            policy.as_act_fn(np.random.default_rng(0)),
            episodes=1,
        )
        # The pool's aggregate mean weights every user equally.
        assert pooled == pytest.approx(float(np.mean(per_env)))


class TestTrainerVectorizedCollect:
    def test_vectorized_collect_produces_full_buffer(self):
        from repro.core import Sim2RecLTSTrainer, lts_small_config
        from repro.envs import make_lts_task

        config = lts_small_config(seed=0)
        assert config.vectorized_rollouts  # batched by default
        task = make_lts_task("LTS3", num_users=8, horizon=6, seed=0)
        policy = build_sim2rec_policy(2, 1, config)
        trainer = Sim2RecLTSTrainer(policy, task, config)
        buffer, raw_rewards = trainer.collect()
        assert len(buffer) == config.segments_per_iteration
        assert len(raw_rewards) == config.segments_per_iteration
        metrics = trainer.train_iteration()
        assert "reward" in metrics

    def test_duplicate_env_samples_fall_back_to_extra_rounds(self):
        from repro.core.trainer import _poolable_batches

        world = make_world()
        env_a, env_b = world.make_city_env(0), world.make_city_env(1)
        batches = _poolable_batches([env_a, env_b, env_a])
        assert [[index for index, _ in batch] for batch in batches] == [[0, 1], [2]]

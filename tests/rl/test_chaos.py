"""Fault injection against the supervised rollout stack.

The contract under test (see ``repro.rl.workers``, *Failure handling*):
with a :class:`FaultPolicy`, any worker crash / hang / dropped reply /
stale replica recovers **bit-identically** — the recovered collection
equals the sequential reference to the byte (the same parity harness
that certifies the fault-free paths). When the restart budget runs out,
the pool degrades gracefully to in-process collection — still
bit-identical — and never leaks worker processes or shared memory.
Faults come from the deterministic schedules in ``repro.rl.chaos``.
"""

import multiprocessing as mp
import os
import signal
import time
import warnings

import numpy as np
import pytest

from repro.envs import DPRConfig, DPRWorld
from repro.rl import (
    ChaosSchedule,
    FaultPolicy,
    FaultSpec,
    RecurrentActorCritic,
    ShardedVecEnvPool,
    VecEnvPool,
    WorkerCrashed,
    WorkerTimeout,
    collect_segments_vec,
    sharding_available,
)
from repro.rl.chaos import apply_fault
from repro.rl.parity import assert_segments_identical, verify_rollout_parity

pytestmark = pytest.mark.skipif(
    not sharding_available(), reason="platform has no multiprocessing start method"
)

#: Short deadlines so injected hangs resolve in test time, zero backoff.
FAST_POLICY = FaultPolicy(
    max_restarts=2,
    backoff=0.0,
    step_deadline=15.0,
    broadcast_deadline=15.0,
    collect_deadline=30.0,
    graceful_join=0.5,
)

#: The protocol op each grid column injects into, and the rollout mode
#: that exercises it ("broadcast" = the replica sync, "collect" = the
#: worker-side full rollout, "step" = the step server).
OP_MODES = {
    "step": ("step", "sharded"),
    "broadcast": ("replica", "shard_parallel"),
    "collect": ("rollout", "shard_parallel"),
}


def make_envs(num=5):
    world = DPRWorld(DPRConfig(num_cities=num, drivers_per_city=4, horizon=5, seed=3))
    return world.make_all_city_envs()


def make_policy():
    return RecurrentActorCritic(
        13, 2, np.random.default_rng(0), lstm_hidden=12, head_hidden=(16,)
    )


def shm_segments():
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: rely on the process check only
        return set()


@pytest.fixture(autouse=True)
def no_leaks():
    """Every test must reap its workers and unlink its shared memory."""
    before_shm = shm_segments()
    yield
    deadline = time.monotonic() + 5.0
    while mp.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not mp.active_children(), "leaked worker processes"
    leaked = shm_segments() - before_shm
    assert not leaked, f"leaked shared memory segments: {leaked}"


def spec_for(kind, op, workers, phase="receive"):
    """One fault aimed at the last worker of the pool (worker 0 if solo)."""
    return FaultSpec(kind, worker=max(workers - 1, 0), op=op, at=0, phase=phase)


class TestRecoveryParityGrid:
    """kill / hang / corrupt × step / broadcast / collect × 1, 2, 4 shards."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("target", ["step", "broadcast", "collect"])
    @pytest.mark.parametrize("kind", ["kill", "hang", "corrupt"])
    def test_recovered_rollouts_are_bit_identical(self, kind, target, shards):
        op, mode = OP_MODES[target]
        if kind == "corrupt":
            if target != "broadcast":
                pytest.skip("corrupt_stamp faults target the replica broadcast")
            # The corrupted stamp only surfaces at the next rollout.
            chaos = ChaosSchedule([spec_for("corrupt_stamp", op, shards)])
        elif kind == "hang":
            chaos = ChaosSchedule(
                [
                    FaultSpec(
                        "hang",
                        worker=max(shards - 1, 0),
                        op=op,
                        at=0,
                        hang_seconds=120.0,
                    )
                ]
            )
        else:
            chaos = ChaosSchedule([spec_for("kill", op, shards)])
        policy = FaultPolicy(
            max_restarts=2,
            backoff=0.0,
            step_deadline=1.5 if kind == "hang" else 15.0,
            broadcast_deadline=1.5 if kind == "hang" else 15.0,
            collect_deadline=3.0 if kind == "hang" else 30.0,
            graceful_join=0.5,
        )
        verify_rollout_parity(
            make_envs,
            make_policy(),
            seed=500 + shards,
            modes=(mode,),
            num_workers=shards,
            label=f"chaos/{kind}/{target}/{shards}",
            pool_kwargs=dict(fault_policy=policy, chaos=chaos),
        )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_kill_after_envs_advanced_replays_exactly(self, shards):
        """phase='reply' kills a worker whose envs already stepped — the
        respawn must discard that progress and replay from the journal."""
        chaos = ChaosSchedule(
            [FaultSpec("kill", worker=0, op="step", at=2, phase="reply")]
        )
        verify_rollout_parity(
            make_envs,
            make_policy(),
            seed=600 + shards,
            modes=("sharded",),
            num_workers=shards,
            label=f"chaos/reply-kill/{shards}",
            pool_kwargs=dict(fault_policy=FAST_POLICY, chaos=chaos),
        )

    def test_dropped_reply_recovers(self):
        """A lost IPC reply looks like a hang; the deadline catches it."""
        chaos = ChaosSchedule([FaultSpec("drop_reply", worker=1, op="rollout", at=0)])
        policy = FaultPolicy(
            max_restarts=2, backoff=0.0, collect_deadline=2.0, graceful_join=0.5
        )
        verify_rollout_parity(
            make_envs,
            make_policy(),
            seed=700,
            modes=("shard_parallel",),
            num_workers=2,
            label="chaos/drop_reply",
            pool_kwargs=dict(fault_policy=policy, chaos=chaos),
        )

    def test_externally_killed_worker_recovers(self):
        """SIGKILL from outside (the OOM-killer case), not via the schedule.

        Two back-to-back collects with a kill in between: the respawn
        restores the *advanced* env state the first collect produced (the
        recovery snapshots refresh from the workers after every rollout),
        so episode 2 matches a fault-free pool's episode 2 exactly.
        """
        policy = make_policy()
        rngs = lambda s: [np.random.default_rng(s + i) for i in range(5)]  # noqa: E731
        reference_pool = VecEnvPool(make_envs())
        ref1 = collect_segments_vec(reference_pool, policy, rngs(40), overlap=False)
        ref2 = collect_segments_vec(reference_pool, policy, rngs(90), overlap=False)
        with ShardedVecEnvPool(
            make_envs(), num_workers=2, fault_policy=FAST_POLICY
        ) as pool:
            pool.sync_policy(policy)
            first = pool.collect_rollouts(rngs(40))
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            second = pool.collect_rollouts(rngs(90))
            assert pool.restart_counts[1] == 1
        assert_segments_identical(ref1, first, label="external-kill/1")
        assert_segments_identical(ref2, second, label="external-kill/2")


class TestGracefulDegradation:
    def test_budget_exhaustion_degrades_bit_identically(self):
        """A persistent fault burns the restart budget; the pool swaps in
        an in-process VecEnvPool rebuilt from snapshots and the rollout
        still matches the reference to the byte."""
        chaos = ChaosSchedule(
            [FaultSpec("kill", worker=0, op="rollout", at=0)], persistent=True
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            verify_rollout_parity(
                make_envs,
                make_policy(),
                seed=800,
                modes=("shard_parallel",),
                num_workers=2,
                label="chaos/degrade",
                pool_kwargs=dict(fault_policy=FAST_POLICY, chaos=chaos),
            )
        assert any(
            issubclass(w.category, RuntimeWarning)
            and "restart budget" in str(w.message)
            for w in caught
        )

    def test_degraded_pool_keeps_serving(self):
        """After degradation every subsequent op (collect, sync, fetch,
        load) runs in-process and multi-episode streams stay continuous."""
        policy = make_policy()
        rngs = lambda s: [np.random.default_rng(s + i) for i in range(5)]  # noqa: E731
        reference_pool = VecEnvPool(make_envs())
        ref1 = collect_segments_vec(reference_pool, policy, rngs(50), overlap=False)
        ref2 = collect_segments_vec(reference_pool, policy, rngs(60), overlap=False)
        chaos = ChaosSchedule([FaultSpec("kill", worker=0, op="rollout", at=0)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ShardedVecEnvPool(
                make_envs(),
                num_workers=2,
                fault_policy=FaultPolicy(max_restarts=0, backoff=0.0),
                chaos=chaos,
            ) as pool:
                pool.sync_policy(policy)
                got1 = pool.collect_rollouts(rngs(50))
                assert pool.degraded
                got2 = pool.collect_rollouts(rngs(60))
                fetched = pool.fetch_member_envs()
                assert len(fetched) == 5
        assert_segments_identical(ref1, got1, label="degraded/ep1")
        assert_segments_identical(ref2, got2, label="degraded/ep2")

    def test_degradation_mid_step_finishes_the_step(self):
        """step_wait() falls through to the in-process pool when the
        budget dies mid-step: the step-server collection still matches."""
        policy = make_policy()
        rngs = lambda: [np.random.default_rng(70 + i) for i in range(5)]  # noqa: E731
        reference = collect_segments_vec(
            VecEnvPool(make_envs()), policy, rngs(), overlap=False
        )
        chaos = ChaosSchedule(
            [FaultSpec("kill", worker=1, op="step", at=1, phase="reply")]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ShardedVecEnvPool(
                make_envs(),
                num_workers=2,
                fault_policy=FaultPolicy(max_restarts=0, backoff=0.0),
                chaos=chaos,
            ) as pool:
                got = collect_segments_vec(pool, policy, rngs(), overlap=False)
                assert pool.degraded
        assert_segments_identical(reference, got, label="degraded/step")


class TestLegacyContract:
    def test_without_fault_policy_crash_closes_and_raises(self):
        """No FaultPolicy = the pre-supervision contract: fail fast."""
        chaos = ChaosSchedule([FaultSpec("kill", worker=0, op="rollout", at=0)])
        pool = ShardedVecEnvPool(make_envs(), num_workers=2, chaos=chaos)
        policy = make_policy()
        pool.sync_policy(policy)
        with pytest.raises(WorkerCrashed):
            pool.collect_rollouts([np.random.default_rng(i) for i in range(5)])
        assert pool.closed

    def test_timeout_is_a_crash_subclass(self):
        assert issubclass(WorkerTimeout, WorkerCrashed)


class TestProcessHygiene:
    def test_sigterm_ignoring_worker_is_killed_and_shm_unlinked(self):
        """The zombie case: workers that ignore SIGTERM and hang on close
        must still die (SIGKILL escalation) and leak no shared memory."""
        chaos = ChaosSchedule(
            [FaultSpec("hang", worker=w, op="close", hang_seconds=300.0) for w in range(2)],
            ignore_sigterm=True,
        )
        pool = ShardedVecEnvPool(make_envs(), num_workers=2, chaos=chaos)
        segment_name = pool.shared_memory_name
        pids = [proc.pid for proc in pool._procs]
        pool.close()
        assert not os.path.exists(f"/dev/shm/{segment_name}")
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_workers_ignore_sigint(self):
        """Ctrl-C goes to the parent; workers must survive a SIGINT and
        keep serving so shutdown stays coordinated."""
        policy = make_policy()
        with ShardedVecEnvPool(make_envs(), num_workers=2) as pool:
            for proc in pool._procs:
                os.kill(proc.pid, signal.SIGINT)
            time.sleep(0.2)
            assert all(proc.is_alive() for proc in pool._procs)
            pool.sync_policy(policy)
            segments = pool.collect_rollouts(
                [np.random.default_rng(i) for i in range(5)]
            )
            assert len(segments) == 5

    def test_respawned_workers_are_fault_free_by_default(self):
        """A one-shot schedule fires once per original worker; the
        respawn runs clean, so restart_counts stays at one."""
        chaos = ChaosSchedule([FaultSpec("kill", worker=0, op="rollout", at=0)])
        policy = make_policy()
        with ShardedVecEnvPool(
            make_envs(), num_workers=2, fault_policy=FAST_POLICY, chaos=chaos
        ) as pool:
            pool.sync_policy(policy)
            for round_index in range(3):
                pool.collect_rollouts(
                    [np.random.default_rng(round_index * 10 + i) for i in range(5)]
                )
            assert pool.restart_counts == [1, 0]
            assert not pool.degraded


class TestFaultPrimitives:
    def test_fault_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("explode")
        with pytest.raises(ValueError, match="op"):
            FaultSpec("kill", op="dance")
        with pytest.raises(ValueError, match="phase"):
            FaultSpec("kill", phase="later")
        with pytest.raises(ValueError, match="replica"):
            FaultSpec("corrupt_stamp", op="step")

    def test_schedule_counts_per_op_and_fires_once(self):
        schedule = ChaosSchedule([FaultSpec("drop_reply", op="step", at=1)])
        assert schedule.match("step", "receive") is None      # occurrence 0
        spec = schedule.match("step", "receive")               # occurrence 1
        assert spec is not None and spec.kind == "drop_reply"
        assert schedule.match("step", "receive") is None       # already fired

    def test_schedule_pickle_resets_counters(self):
        import pickle

        schedule = ChaosSchedule([FaultSpec("drop_reply", op="step", at=0)])
        assert schedule.match("step", "receive") is not None
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone.match("step", "receive") is not None  # counters reset

    def test_for_worker_filters_and_none_means_clean(self):
        schedule = ChaosSchedule([FaultSpec("kill", worker=3, op="step")])
        assert schedule.for_worker(0) is None
        sub = schedule.for_worker(3)
        assert sub is not None and len(sub.specs) == 1
        sigterm_only = ChaosSchedule([], ignore_sigterm=True)
        assert sigterm_only.for_worker(0) is not None

    def test_apply_fault_hang_returns_continue(self):
        spec = FaultSpec("hang", hang_seconds=0.0)
        assert apply_fault(spec) == "continue"

    def test_fault_policy_knobs(self):
        policy = FaultPolicy(max_restarts=3, backoff=0.1, max_backoff=0.3)
        assert policy.deadline_for("step") == policy.step_deadline
        assert policy.deadline_for("reset") == policy.step_deadline
        assert policy.deadline_for("rollout") == policy.collect_deadline
        assert policy.deadline_for("replica") == policy.broadcast_deadline
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(5) == pytest.approx(0.3)  # capped
        with pytest.raises(ValueError):
            FaultPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            FaultPolicy(backoff=-0.5)


class TestTrainerSurvivesFaults:
    def test_training_run_survives_worker_death_bit_identically(self):
        """End to end: a trainer with a FaultPolicy keeps the exact
        no-fault trajectory when a rollout worker is SIGKILLed between
        iterations."""
        from repro.core import Sim2RecConfig  # noqa: PLC0415
        from repro.core.config import scenario_small_config
        from repro.scenarios import trainer_from_config

        spec = {"family": "slate", "num_envs": 4, "num_users": 5, "horizon": 5}

        def build(fault_policy):
            config = scenario_small_config(seed=11)
            config.scenario = dict(spec)
            config.rollout_workers = 2
            config.fault_policy = fault_policy
            return trainer_from_config(config, dict(spec))

        with build(None) as trainer:
            trainer.pretrain_sadae(epochs=1)
            reference = [trainer.train_iteration() for _ in range(3)]
        with build(FAST_POLICY) as trainer:
            trainer.pretrain_sadae(epochs=1)
            metrics = [trainer.train_iteration()]
            os.kill(trainer._worker_pool._procs[0].pid, signal.SIGKILL)
            metrics += [trainer.train_iteration() for _ in range(2)]
            assert trainer._worker_pool.restart_counts[0] >= 1
        for expected, got in zip(reference, metrics):
            assert expected == got

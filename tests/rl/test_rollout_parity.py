"""Cross-mode rollout parity: one harness, every collection path.

The single source of truth for rollout equivalence (replacing the
per-mode equivalence tests that used to be duplicated across
``test_vec.py`` and ``test_workers.py``): every collection mode —
``vectorized``, ``sharded`` (step server) and ``shard_parallel`` (policy
replicas in the workers) — must produce **bitwise-identical** segments
to the sequential per-env ``collect_segment`` loop, across shard counts
{1, 2, 4}, ragged env sizes, heterogeneous horizons, truncation, extras,
and MLP / Recurrent / Sim2Rec policies. The harness itself lives in
:mod:`repro.rl.parity` so ``benchmarks/perf_rollout.py`` runs the exact
same check before timing anything.
"""

import numpy as np
import pytest

from repro.core import (
    Sim2RecLTSTrainer,
    build_sim2rec_policy,
    dpr_small_config,
    lts_small_config,
)
from repro.envs import (
    DPRConfig,
    DPRWorld,
    LTSConfig,
    LTSEnv,
    SlateConfig,
    SlateRecEnv,
    make_lts_task,
)
from repro.rl import (
    ROLLOUT_MODES,
    MLPActorCritic,
    RecurrentActorCritic,
    ShardedVecEnvPool,
    VecEnvPool,
    assert_segments_identical,
    collect_rollout_mode,
    collect_segments_sequential,
    sharding_available,
)
from repro.rl.parity import SEGMENT_FIELDS, SHARDED_MODES

needs_sharding = pytest.mark.skipif(
    not sharding_available(), reason="platform has no multiprocessing start method"
)

# (mode, worker count): the full grid the acceptance criteria name.
MODE_GRID = [("vectorized", 0)] + [
    (mode, workers) for mode in SHARDED_MODES for workers in (1, 2, 4)
]


def _grid_id(case):
    mode, workers = case
    return mode if not workers else f"{mode}-w{workers}"


# ----------------------------------------------------------------------
# Env-set factories: fresh envs per call, same seeds -> same initial state.
# ----------------------------------------------------------------------
def make_dpr_envs():
    world = DPRWorld(DPRConfig(num_cities=5, drivers_per_city=7, horizon=6, seed=3))
    return world.make_all_city_envs()


def make_ragged_lts_envs():
    """Envs with *different* user counts (ragged shard blocks)."""
    sizes = [(3, 0.0), (9, 2.0), (5, 4.0), (7, 6.0), (4, 8.0)]
    return [
        LTSEnv(LTSConfig(num_users=k, horizon=6, omega_g=g, seed=10 + i))
        for i, (k, g) in enumerate(sizes)
    ]


def make_hetero_horizon_envs():
    """Members that leave the pool at their own horizon (3 / 8 / 6)."""
    world = DPRWorld(DPRConfig(num_cities=3, drivers_per_city=6, horizon=8, seed=9))
    envs = world.make_all_city_envs()
    envs[0].horizon = 3
    envs[2].horizon = 6
    return envs


def make_ragged_slate_envs():
    """SlateRec members with ragged user counts and per-env choice models."""
    sizes = [(4, -4.0), (8, 2.0), (3, 5.0), (6, -2.0)]
    return [
        SlateRecEnv(
            SlateConfig(
                num_users=k,
                horizon=6,
                slate_size=3,
                omega_g=g,
                omega_u_range=2.0,
                temperature=0.4 + 0.1 * i,
                churn_base=0.15,
                seed=20 + i,
            )
        )
        for i, (k, g) in enumerate(sizes)
    ]


ENV_SETS = {
    "dpr": (make_dpr_envs, 13, 2),
    "ragged_lts": (make_ragged_lts_envs, 2, 1),
    "hetero_horizons": (make_hetero_horizon_envs, 13, 2),
    "ragged_slate": (make_ragged_slate_envs, 4, 3),
}


def make_policy(kind: str, state_dim: int, action_dim: int):
    if kind == "mlp":
        return MLPActorCritic(
            state_dim, action_dim, np.random.default_rng(1), hidden_sizes=(16,)
        )
    if kind == "recurrent":
        return RecurrentActorCritic(
            state_dim, action_dim, np.random.default_rng(0),
            lstm_hidden=16, head_hidden=(32,),
        )
    if kind == "gru":
        return RecurrentActorCritic(
            state_dim, action_dim, np.random.default_rng(2),
            lstm_hidden=16, head_hidden=(32,), cell="gru",
        )
    if kind == "sim2rec":
        return build_sim2rec_policy(state_dim, action_dim, dpr_small_config(seed=0))
    raise ValueError(kind)


def rngs_for(count: int, seed: int):
    return [np.random.default_rng(seed + i) for i in range(count)]


def collect_reference(make_envs, policy, seed, **kwargs):
    envs = make_envs()
    return collect_segments_sequential(envs, policy, rngs_for(len(envs), seed), **kwargs)


# ----------------------------------------------------------------------
# The acceptance grid: mode x shard count x env layout x policy family.
# ----------------------------------------------------------------------
@needs_sharding
@pytest.mark.parametrize("policy_kind", ["mlp", "recurrent"])
@pytest.mark.parametrize("env_set", sorted(ENV_SETS))
@pytest.mark.parametrize("case", MODE_GRID, ids=_grid_id)
class TestModeParity:
    def test_bitwise_matches_sequential(self, case, env_set, policy_kind):
        mode, workers = case
        make_envs, state_dim, action_dim = ENV_SETS[env_set]
        policy = make_policy(policy_kind, state_dim, action_dim)
        reference = collect_reference(make_envs, policy, seed=100)
        envs = make_envs()
        collected = collect_rollout_mode(
            mode, envs, policy, rngs_for(len(envs), 100), num_workers=workers or 2
        )
        assert_segments_identical(
            reference, collected, label=f"{env_set}/{policy_kind}/{_grid_id(case)}"
        )


@needs_sharding
@pytest.mark.parametrize("mode", ROLLOUT_MODES[1:])
class TestFeatureParity:
    def test_truncation_and_extras(self, mode):
        """max_steps truncation + info-dict extras survive every mode."""
        policy = make_policy("mlp", 13, 2)
        kwargs = dict(max_steps=4, extras_from_info=("orders", "cost"))
        reference = collect_reference(make_dpr_envs, policy, seed=70, **kwargs)
        envs = make_dpr_envs()
        collected = collect_rollout_mode(
            mode, envs, policy, rngs_for(len(envs), 70), num_workers=2, **kwargs
        )
        assert_segments_identical(reference, collected, label=f"extras/{mode}")
        assert collected[0].horizon == 4
        assert set(collected[0].extras) == {"orders", "cost"}

    def test_slate_truncation_and_extras(self, mode):
        """The slate family's info-dict extras (sat/active: the churn
        signal) and max_steps truncation survive every mode."""
        policy = make_policy("mlp", 4, 3)
        kwargs = dict(max_steps=4, extras_from_info=("sat", "active"))
        reference = collect_reference(make_ragged_slate_envs, policy, seed=75, **kwargs)
        envs = make_ragged_slate_envs()
        collected = collect_rollout_mode(
            mode, envs, policy, rngs_for(len(envs), 75), num_workers=2, **kwargs
        )
        assert_segments_identical(reference, collected, label=f"slate-extras/{mode}")
        assert collected[0].horizon == 4
        assert set(collected[0].extras) == {"sat", "active"}

    def test_sim2rec_policy_with_fitted_normalizer(self, mode):
        """SADAE context policies: υ per block + normaliser buffers in sync.

        The normaliser statistics are plain arrays outside state_dict —
        exactly what the shard-parallel ``extra_state`` broadcast must
        carry; a replica embedding with default statistics would diverge
        in the first act call.
        """
        policy = make_policy("sim2rec", 13, 2)
        rng = np.random.default_rng(5)
        sets = [(rng.normal(size=(20, 13)), rng.random((20, 2))) for _ in range(4)]
        policy.sadae.fit_normalizer(sets)
        reference = collect_reference(make_dpr_envs, policy, seed=200, max_steps=4)
        envs = make_dpr_envs()
        collected = collect_rollout_mode(
            mode, envs, policy, rngs_for(len(envs), 200), num_workers=2, max_steps=4
        )
        assert_segments_identical(reference, collected, label=f"sim2rec/{mode}")


@needs_sharding
class TestContinuityParity:
    @pytest.mark.parametrize("mode", ("vectorized",) + SHARDED_MODES)
    def test_multi_episode_rng_continuity(self, mode):
        """Back-to-back episodes on one persistent pool keep every env
        stream and every env's internal RNG aligned with the sequential
        loop — for shard_parallel this exercises the advanced-generator
        write-back and the repeat (state-bytes) policy broadcast."""
        policy = make_policy("recurrent", 13, 2)
        envs_seq = make_dpr_envs()
        rngs_seq = rngs_for(5, 50)
        rngs_par = rngs_for(5, 50)
        if mode == "vectorized":
            pool = VecEnvPool(make_dpr_envs())
        else:
            pool = ShardedVecEnvPool(make_dpr_envs(), num_workers=2)
        try:
            for episode in range(2):
                reference = collect_segments_sequential(envs_seq, policy, rngs_seq)
                collected = collect_rollout_mode(
                    mode, [], policy, rngs_par, pool=pool
                )
                assert_segments_identical(
                    reference, collected, label=f"continuity/{mode}/ep{episode}"
                )
        finally:
            if mode != "vectorized":
                pool.close()

    def test_gru_policy_odd_block_sizes(self):
        """7 drivers/city blocks that do not align with BLAS kernel
        chunking — the regression case for the value-head gemv fix, now
        swept across every mode at once."""
        policy = make_policy("gru", 13, 2)
        reference = collect_reference(make_dpr_envs, policy, seed=300)
        for mode in ROLLOUT_MODES[1:]:
            envs = make_dpr_envs()
            collected = collect_rollout_mode(
                mode, envs, policy, rngs_for(len(envs), 300), num_workers=2
            )
            assert_segments_identical(reference, collected, label=f"gru/{mode}")


@needs_sharding
class TestTrainerModeParity:
    """config.rollout_mode end to end: pooled modes reproduce each other."""

    def _make_trainer(self, mode):
        config = lts_small_config(seed=0)
        config.rollout_mode = mode
        config.rollout_workers = 2
        config.segments_per_iteration = 3
        task = make_lts_task("LTS3", num_users=8, horizon=6, seed=0)
        policy = build_sim2rec_policy(2, 1, config)
        return Sim2RecLTSTrainer(policy, task, config)

    @pytest.mark.parametrize("mode", ["sharded", "shard_parallel"])
    def test_trainer_collect_matches_vectorized(self, mode):
        with self._make_trainer("vectorized") as base, self._make_trainer(mode) as other:
            for _ in range(2):
                buffer_a, rewards_a = base.collect()
                buffer_b, rewards_b = other.collect()
                assert rewards_a == rewards_b
                for seg_a, seg_b in zip(buffer_a.segments, buffer_b.segments):
                    for name in SEGMENT_FIELDS:
                        np.testing.assert_array_equal(
                            getattr(seg_a, name), getattr(seg_b, name), err_msg=name
                        )
            assert other._worker_pool is not None  # pool reused, not rebuilt

    def test_sequential_mode_uses_no_pool(self):
        with self._make_trainer("sequential") as trainer:
            buffer, rewards = trainer.collect()
            assert len(buffer) == 3
            assert trainer._worker_pool is None

"""Property-based fuzz tests for pool construction and collection.

Seeded random env counts, user counts, horizons, step budgets and
resampled user gaps drive pool construction + collection; the invariants
below catch the layout edge cases fixed-shape tests miss:

- **partitioning** — contiguous, covering, non-empty, user-balanced
  shards for any layout / worker count;
- **done-mask monotonicity** — a member env that leaves the pool never
  re-enters, and the pool ends exactly when the last member does;
- **segment length budgets** — every collected segment is cut at its own
  env's budget (``min(horizon, max_steps)`` for LTS members) and agrees
  with the pool's step counters;
- **RNG-stream isolation** — an env's segment depends only on its own
  env state and noise stream, never on which other envs share the pool
  (the property that makes every collection mode bit-identical);
- **shard-parallel layouts** — random ragged layouts × worker counts
  reproduce the sequential loop through worker-side policy replicas.

Runs derandomized (fixed example database seed) so CI is reproducible.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.envs import LTSConfig, LTSEnv, SlateConfig, SlateRecEnv  # noqa: E402
from repro.rl import (  # noqa: E402
    BlockRNG,
    MLPActorCritic,
    VecEnvPool,
    collect_segments_sequential,
    collect_segments_shard_parallel,
    collect_segments_vec,
    sharding_available,
)
from repro.rl.parity import assert_segments_identical  # noqa: E402
from repro.rl.workers import partition_contiguous  # noqa: E402

COMMON = dict(deadline=None, derandomize=True, print_blob=True)

# Layout strategies: ragged pools, deliberately including 1-user and
# 1-env degenerate shapes.
user_counts_st = st.lists(st.integers(1, 9), min_size=1, max_size=6)
horizons_st = st.lists(st.integers(1, 7), min_size=1, max_size=6)


def make_envs(user_counts, horizons, seed=0, resample=False):
    envs = []
    for index, users in enumerate(user_counts):
        horizon = horizons[index % len(horizons)]
        env = LTSEnv(
            LTSConfig(
                num_users=users,
                horizon=horizon,
                omega_g=float(2 * index),
                seed=seed + index,
            )
        )
        if resample:
            env.resample_user_gaps()
        envs.append(env)
    return envs


def make_policy(seed=1):
    return MLPActorCritic(2, 1, np.random.default_rng(seed), hidden_sizes=(8,))


def make_slate_envs(user_counts, horizon, slate_size, seed=0):
    return [
        SlateRecEnv(
            SlateConfig(
                num_users=users,
                horizon=horizon,
                slate_size=slate_size,
                omega_g=float(2 * index - 3),
                omega_u_range=1.5,
                churn_base=0.2,
                seed=seed + index,
            )
        )
        for index, users in enumerate(user_counts)
    ]


class TestPartitionProperties:
    @settings(max_examples=200, **COMMON)
    @given(
        user_counts=st.lists(st.integers(1, 20), min_size=1, max_size=12),
        workers=st.integers(1, 12),
    )
    def test_shards_are_contiguous_nonempty_and_covering(self, user_counts, workers):
        shards = partition_contiguous(user_counts, workers)
        assert len(shards) == max(1, min(workers, len(user_counts)))
        assert shards[0].start == 0
        assert shards[-1].stop == len(user_counts)
        for before, after in zip(shards[:-1], shards[1:]):
            assert before.stop == after.start  # contiguous, no gaps
        assert all(shard.stop > shard.start for shard in shards)  # non-empty

    @settings(max_examples=100, **COMMON)
    @given(
        user_counts=st.lists(st.integers(1, 20), min_size=2, max_size=12),
        workers=st.integers(2, 6),
    )
    def test_balance_never_worse_than_one_env(self, user_counts, workers):
        """A shard never exceeds the ideal share by more than its own
        largest member — the quantile cut property."""
        shards = partition_contiguous(user_counts, workers)
        total = sum(user_counts)
        ideal = total / len(shards)
        for shard in shards:
            load = sum(user_counts[shard.start : shard.stop])
            largest = max(user_counts[shard.start : shard.stop])
            assert load <= ideal + largest


class TestBlockRNGProperties:
    @settings(max_examples=100, **COMMON)
    @given(
        block_sizes=st.lists(st.integers(1, 8), min_size=1, max_size=5),
        trailing=st.integers(0, 3),
        seed=st.integers(0, 2**16),
    )
    def test_draws_match_isolated_streams(self, block_sizes, trailing, seed):
        """Each block's rows come from that block's own stream, regardless
        of which other blocks exist — stream isolation by construction."""
        offsets = np.cumsum([0] + block_sizes)
        slices = [slice(int(a), int(b)) for a, b in zip(offsets[:-1], offsets[1:])]
        shape = (int(offsets[-1]),) + (2,) * trailing
        block = BlockRNG(
            [np.random.default_rng(seed + i) for i in range(len(slices))], slices
        )
        draws = block.standard_normal(shape)
        for index, sl in enumerate(slices):
            direct = np.random.default_rng(seed + index).standard_normal(
                (block_sizes[index],) + shape[1:]
            )
            np.testing.assert_array_equal(draws[sl], direct)


class TestPoolInvariants:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], **COMMON)
    @given(
        user_counts=user_counts_st,
        horizons=horizons_st,
        seed=st.integers(0, 2**16),
        max_steps=st.one_of(st.none(), st.integers(1, 8)),
    )
    def test_done_mask_monotone_and_steps_bounded(
        self, user_counts, horizons, seed, max_steps
    ):
        """Once a member leaves the active mask it never returns; its step
        counter freezes at its own budget; the pool is done exactly when
        the last member is."""
        pool = VecEnvPool(make_envs(user_counts, horizons, seed), max_steps=max_steps)
        budgets = np.array(
            [max_steps or env.horizon for env in pool.envs], dtype=np.int64
        )
        pool.reset()
        rng = np.random.default_rng(seed)
        previous = pool.active_mask
        assert previous.all()
        while not pool.all_done:
            pool.step(rng.random((pool.num_users, 1)))
            current = pool.active_mask
            assert not (current & ~previous).any()  # monotone: no resurrections
            assert (pool.env_steps <= budgets).all()
            assert (pool.env_steps[~current] <= budgets[~current]).all()
            previous = current
        assert not pool.active_mask.any()

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], **COMMON)
    @given(
        user_counts=user_counts_st,
        horizons=horizons_st,
        seed=st.integers(0, 2**16),
        max_steps=st.one_of(st.none(), st.integers(1, 8)),
        resample=st.booleans(),
    )
    def test_segment_lengths_respect_budgets(
        self, user_counts, horizons, seed, max_steps, resample
    ):
        """Every collected segment is truncated at its own env's budget,
        for ragged layouts, resampled user gaps and any step cap."""
        envs = make_envs(user_counts, horizons, seed, resample=resample)
        policy = make_policy()
        rngs = [np.random.default_rng(seed + 100 + i) for i in range(len(envs))]
        segments = collect_segments_vec(envs, policy, rngs, max_steps=max_steps)
        assert len(segments) == len(envs)
        for env, segment in zip(envs, segments):
            budget = min(env.horizon, max_steps) if max_steps else env.horizon
            assert segment.horizon == budget  # LTS members run to their budget
            assert segment.num_users == env.num_users
            assert segment.last_values.shape == (env.num_users,)
            # the final recorded step carries the env's own done signal
            assert segment.dones[-1].all() == (budget >= env.horizon)

    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], **COMMON)
    @given(
        user_counts=user_counts_st,
        horizons=horizons_st,
        seed=st.integers(0, 2**16),
        keep=st.integers(0, 5),
    )
    def test_rng_stream_isolation_across_pool_membership(
        self, user_counts, horizons, seed, keep
    ):
        """An env's segment is identical whether it shares the pool with
        every other env or rolls alone — streams and env state never leak
        across blocks, whatever the layout."""
        policy = make_policy()
        envs = make_envs(user_counts, horizons, seed)
        rngs = [np.random.default_rng(seed + 100 + i) for i in range(len(envs))]
        pooled = collect_segments_vec(envs, policy, rngs)
        index = keep % len(envs)
        alone_env = make_envs(user_counts, horizons, seed)[index]
        alone_rng = np.random.default_rng(seed + 100 + index)
        alone = collect_segments_vec([alone_env], policy, [alone_rng])
        assert_segments_identical([pooled[index]], alone, label="isolation")


@pytest.mark.skipif(
    not sharding_available(), reason="platform has no multiprocessing start method"
)
class TestShardParallelLayoutFuzz:
    @settings(max_examples=6, suppress_health_check=[HealthCheck.too_slow], **COMMON)
    @given(
        user_counts=st.lists(st.integers(1, 7), min_size=2, max_size=5),
        horizon=st.integers(2, 5),
        workers=st.integers(1, 4),
        seed=st.integers(0, 2**10),
    )
    def test_random_layouts_match_sequential(
        self, user_counts, horizon, workers, seed
    ):
        """Worker-side policy replicas reproduce the sequential loop for
        random ragged layouts and shard counts — the fuzzed counterpart
        of the fixed parity grid."""
        policy = make_policy()
        horizons = [horizon] * len(user_counts)
        reference = collect_segments_sequential(
            make_envs(user_counts, horizons, seed),
            policy,
            [np.random.default_rng(seed + 100 + i) for i in range(len(user_counts))],
        )
        collected = collect_segments_shard_parallel(
            make_envs(user_counts, horizons, seed),
            policy,
            [np.random.default_rng(seed + 100 + i) for i in range(len(user_counts))],
            num_workers=workers,
        )
        assert_segments_identical(reference, collected, label="fuzz")

    @settings(max_examples=6, suppress_health_check=[HealthCheck.too_slow], **COMMON)
    @given(
        user_counts=st.lists(st.integers(1, 7), min_size=2, max_size=5),
        horizon=st.integers(2, 5),
        slate_size=st.integers(1, 4),
        workers=st.integers(1, 4),
        seed=st.integers(0, 2**10),
    )
    def test_random_slate_layouts_match_sequential(
        self, user_counts, horizon, slate_size, workers, seed
    ):
        """The slate family under the same fuzz: random ragged layouts,
        slate widths and shard counts reproduce the sequential loop
        through worker-side policy replicas (MNL choice draws, churn
        draws and observation noise all riding per-env streams)."""
        policy = MLPActorCritic(
            SlateRecEnv.STATE_DIM, slate_size, np.random.default_rng(3), hidden_sizes=(8,)
        )
        reference = collect_segments_sequential(
            make_slate_envs(user_counts, horizon, slate_size, seed),
            policy,
            [np.random.default_rng(seed + 100 + i) for i in range(len(user_counts))],
        )
        collected = collect_segments_shard_parallel(
            make_slate_envs(user_counts, horizon, slate_size, seed),
            policy,
            [np.random.default_rng(seed + 100 + i) for i in range(len(user_counts))],
            num_workers=workers,
        )
        assert_segments_identical(reference, collected, label="slate-fuzz")

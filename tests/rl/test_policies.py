"""Tests for MLP and recurrent actor-critic policies."""

import numpy as np

from repro import nn
from repro.rl import MLPActorCritic, RecurrentActorCritic, RolloutSegment

RNG = np.random.default_rng(6)


def make_segment(policy, steps=4, n=5, ds=3, seed=0):
    rng = np.random.default_rng(seed)
    states = rng.standard_normal((steps, n, ds))
    prev_actions = np.zeros((steps, n, policy.action_dim))
    actions = rng.uniform(0, 1, (steps, n, policy.action_dim))
    dones = np.zeros((steps, n))
    dones[-1] = 1.0
    segment = RolloutSegment(
        states=states,
        prev_actions=prev_actions,
        actions=actions,
        rewards=rng.standard_normal((steps, n)),
        dones=dones,
        values=rng.standard_normal((steps, n)),
        log_probs=rng.standard_normal((steps, n)),
        last_values=rng.standard_normal(n),
    )
    segment.finalize(0.9, 0.9)
    return segment


class TestMLPActorCritic:
    def test_act_shapes(self):
        policy = MLPActorCritic(3, 2, RNG, hidden_sizes=(8,))
        actions, log_probs, values = policy.act(
            RNG.standard_normal((5, 3)), np.zeros((5, 2)), RNG
        )
        assert actions.shape == (5, 2)
        assert log_probs.shape == (5,)
        assert values.shape == (5,)

    def test_deterministic_act_is_mean(self):
        policy = MLPActorCritic(3, 2, RNG, hidden_sizes=(8,))
        states = RNG.standard_normal((4, 3))
        a1, _, _ = policy.act(states, np.zeros((4, 2)), RNG, deterministic=True)
        a2, _, _ = policy.act(states, np.zeros((4, 2)), RNG, deterministic=True)
        np.testing.assert_array_equal(a1, a2)

    def test_mean_in_unit_interval(self):
        policy = MLPActorCritic(3, 1, RNG, hidden_sizes=(8,))
        actions, _, _ = policy.act(
            RNG.standard_normal((100, 3)) * 10, np.zeros((100, 1)), RNG, deterministic=True
        )
        assert np.all((actions >= 0) & (actions <= 1))

    def test_evaluate_matches_act_log_probs(self):
        policy = MLPActorCritic(3, 2, np.random.default_rng(0), hidden_sizes=(8,))
        segment = make_segment(policy)
        # Recompute log-probs for the stored actions; for a feed-forward
        # policy they depend only on (s, a), so evaluating twice must agree.
        lp1, v1, _ = policy.evaluate_segment(segment, np.arange(5))
        lp2, v2, _ = policy.evaluate_segment(segment, np.arange(5))
        np.testing.assert_allclose(lp1.data, lp2.data)
        np.testing.assert_allclose(v1.data, v2.data)

    def test_evaluate_user_subset(self):
        policy = MLPActorCritic(3, 2, np.random.default_rng(0), hidden_sizes=(8,))
        segment = make_segment(policy)
        lp_all, _, _ = policy.evaluate_segment(segment, np.arange(5))
        lp_sub, _, _ = policy.evaluate_segment(segment, np.array([1, 3]))
        np.testing.assert_allclose(lp_sub.data, lp_all.data[:, [1, 3]])

    def test_evaluate_gradients_reach_all_params(self):
        policy = MLPActorCritic(3, 2, np.random.default_rng(0), hidden_sizes=(8,))
        segment = make_segment(policy)
        log_probs, values, entropy = policy.evaluate_segment(segment, np.arange(5))
        (log_probs.sum() + values.sum() + entropy.sum()).backward()
        for param in policy.parameters():
            assert param.grad is not None

    def test_act_log_prob_consistent_with_evaluate(self):
        policy = MLPActorCritic(3, 1, np.random.default_rng(0), hidden_sizes=(8,))
        states = RNG.standard_normal((4, 3))
        actions, log_probs, _ = policy.act(states, np.zeros((4, 1)), np.random.default_rng(1))
        dist = nn.DiagGaussian(
            policy.actor(nn.Tensor(states)).sigmoid(), policy.log_std
        )
        np.testing.assert_allclose(dist.log_prob(actions).data, log_probs, atol=1e-10)


class TestRecurrentActorCritic:
    def make_policy(self, seed=0, **kwargs):
        defaults = dict(lstm_hidden=8, head_hidden=(16,))
        defaults.update(kwargs)
        return RecurrentActorCritic(3, 2, np.random.default_rng(seed), **defaults)

    def test_act_shapes(self):
        policy = self.make_policy()
        policy.start_rollout(5)
        actions, log_probs, values = policy.act(
            RNG.standard_normal((5, 3)), np.zeros((5, 2)), RNG
        )
        assert actions.shape == (5, 2)
        assert log_probs.shape == (5,)
        assert values.shape == (5,)

    def test_internal_state_evolves(self):
        policy = self.make_policy()
        policy.start_rollout(2)
        states = RNG.standard_normal((2, 3))
        policy.act(states, np.zeros((2, 2)), np.random.default_rng(0))
        h_after_one = policy._state[0].data.copy()
        policy.act(states, np.zeros((2, 2)), np.random.default_rng(0))
        assert not np.allclose(policy._state[0].data, h_after_one)

    def test_start_rollout_resets_state(self):
        policy = self.make_policy()
        policy.start_rollout(2)
        policy.act(RNG.standard_normal((2, 3)), np.zeros((2, 2)), RNG)
        policy.start_rollout(2)
        np.testing.assert_array_equal(policy._state[0].data, np.zeros((2, 8)))

    def test_history_affects_actions(self):
        """Same state, different history → different deterministic action
        (the whole point of the extractor)."""
        policy = self.make_policy()
        state = np.ones((1, 3))
        policy.start_rollout(1)
        a_fresh, _, _ = policy.act(state, np.zeros((1, 2)), RNG, deterministic=True)
        policy.start_rollout(1)
        for _ in range(5):
            policy.act(RNG.standard_normal((1, 3)) * 3, np.ones((1, 2)), RNG)
        a_history, _, _ = policy.act(state, np.zeros((1, 2)), RNG, deterministic=True)
        assert not np.allclose(a_fresh, a_history)

    def test_evaluate_segment_shapes(self):
        policy = self.make_policy()
        segment = make_segment(policy)
        log_probs, values, entropy = policy.evaluate_segment(segment, np.arange(5))
        assert log_probs.shape == (4, 5)
        assert values.shape == (4, 5)
        assert entropy.shape == (4, 5)

    def test_evaluate_gradients_reach_lstm(self):
        policy = self.make_policy()
        segment = make_segment(policy)
        log_probs, values, _ = policy.evaluate_segment(segment, np.arange(5))
        (log_probs.sum() + values.sum()).backward()
        assert policy.extractor.weight_ih.grad is not None
        assert np.any(policy.extractor.weight_ih.grad != 0)

    def test_evaluate_user_subset_independent_columns(self):
        """Each user's LSTM column is independent, so evaluating a subset
        must equal the corresponding columns of a full evaluation."""
        policy = self.make_policy()
        segment = make_segment(policy)
        lp_all, _, _ = policy.evaluate_segment(segment, np.arange(5))
        lp_sub, _, _ = policy.evaluate_segment(segment, np.array([0, 4]))
        np.testing.assert_allclose(lp_sub.data, lp_all.data[:, [0, 4]], atol=1e-12)

    def test_context_dim_zero_by_default(self):
        policy = self.make_policy()
        assert policy.context_dim == 0

    def test_as_act_fn_protocol(self):
        policy = self.make_policy()
        act_fn = policy.as_act_fn(np.random.default_rng(0))
        act_fn.reset(3)
        actions = act_fn(RNG.standard_normal((3, 3)), 0)
        assert actions.shape == (3, 2)

"""SessionStore semantics: LRU capacity, TTL idling, counters, callbacks.

The store is pure bookkeeping (the gateway wires ``on_evict`` to real
session teardown), so everything here runs with an injected fake clock —
no sleeps, no wall-time flakiness.
"""

import pytest

from repro.serve import SessionStore


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture()
def clock():
    return FakeClock()


class TestValidation:
    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_sessions"):
            SessionStore(max_sessions=0)

    def test_bad_ttl_rejected(self):
        with pytest.raises(ValueError, match="ttl_s"):
            SessionStore(ttl_s=0.0)
        with pytest.raises(ValueError, match="ttl_s"):
            SessionStore(ttl_s=-1.0)


class TestBasics:
    def test_put_get_pop(self):
        store = SessionStore()
        store.put("a", 1)
        assert store.get("a") == 1
        assert "a" in store
        assert len(store) == 1
        assert store.pop("a") == 1
        assert store.get("a") is None
        assert store.pop("a") is None

    def test_put_refreshes_value(self):
        store = SessionStore()
        store.put("a", 1)
        store.put("a", 2)
        assert store.get("a") == 2
        assert len(store) == 1

    def test_clear_returns_entries_without_callback(self):
        fired = []
        store = SessionStore(on_evict=lambda *args: fired.append(args))
        store.put("a", 1)
        store.put("b", 2)
        assert store.clear() == [("a", 1), ("b", 2)]
        assert len(store) == 0
        assert fired == []


class TestLRU:
    def test_capacity_evicts_least_recently_used(self):
        evicted = []
        store = SessionStore(
            max_sessions=2, on_evict=lambda key, value, why: evicted.append((key, why))
        )
        store.put("a", 1)
        store.put("b", 2)
        store.get("a")  # touch: b is now the LRU entry
        store.put("c", 3)
        assert evicted == [("b", "lru")]
        assert store.keys() == ["a", "c"]
        assert store.stats()["evicted_lru"] == 1

    def test_pop_does_not_count_as_eviction(self):
        store = SessionStore(max_sessions=2)
        store.put("a", 1)
        store.pop("a")
        assert store.stats() == {"sessions": 0, "evicted_lru": 0, "evicted_ttl": 0}

    def test_refresh_at_exact_capacity_does_not_evict(self):
        """Re-putting an existing key while the store is full is a
        refresh, not an insert: nothing may be evicted for it."""
        evicted = []
        store = SessionStore(
            max_sessions=2, on_evict=lambda key, value, why: evicted.append((key, why))
        )
        store.put("a", 1)
        store.put("b", 2)  # exactly at capacity
        store.put("a", 10)  # refresh, not insert
        assert evicted == []
        assert store.stats() == {"sessions": 2, "evicted_lru": 0, "evicted_ttl": 0}
        # The refresh also touched "a": "b" is now the LRU entry.
        assert store.keys() == ["b", "a"]
        assert store.get("a") == 10

    def test_eviction_cascade_bounded(self):
        """Thousands of inserts through a small store stay at capacity."""
        store = SessionStore(max_sessions=16)
        for index in range(5000):
            store.put(f"s{index}", index)
        stats = store.stats()
        assert stats["sessions"] == 16
        assert stats["evicted_lru"] == 5000 - 16
        # survivors are exactly the 16 most recent inserts
        assert store.keys() == [f"s{index}" for index in range(5000 - 16, 5000)]


class TestTTL:
    def test_idle_entries_expire(self, clock):
        evicted = []
        store = SessionStore(
            ttl_s=10.0,
            on_evict=lambda key, value, why: evicted.append((key, why)),
            clock=clock,
        )
        store.put("a", 1)
        clock.advance(11.0)
        assert store.evict_expired() == 1
        assert evicted == [("a", "ttl")]
        assert store.stats()["evicted_ttl"] == 1

    def test_touch_resets_the_clock(self, clock):
        store = SessionStore(ttl_s=10.0, clock=clock)
        store.put("a", 1)
        clock.advance(8.0)
        assert store.get("a") == 1  # touch at t=8
        clock.advance(8.0)
        assert store.evict_expired() == 0  # idle 8s < 10s
        clock.advance(11.0)
        assert store.evict_expired() == 1

    def test_expiry_is_lazy_on_access(self, clock):
        """get/put sweep expired entries without an explicit evict call."""
        store = SessionStore(ttl_s=5.0, clock=clock)
        store.put("old", 1)
        clock.advance(6.0)
        assert store.get("old") is None
        assert store.stats()["evicted_ttl"] == 1
        store.put("older", 2)
        clock.advance(6.0)
        store.put("fresh", 3)
        assert store.keys() == ["fresh"]

    def test_get_of_just_expired_key_is_none_and_fires_ttl_once(self, clock):
        """A get that sweeps the key it asked for returns None and fires
        on_evict(reason="ttl") exactly once — not zero times (the sweep
        is real) and not twice (swept entries are gone, not re-swept)."""
        evicted = []
        store = SessionStore(
            ttl_s=5.0,
            on_evict=lambda key, value, why: evicted.append((key, why)),
            clock=clock,
        )
        store.put("a", 1)
        clock.advance(5.1)
        assert store.get("a") is None
        assert evicted == [("a", "ttl")]
        assert store.get("a") is None  # still gone, no second callback
        assert evicted == [("a", "ttl")]
        assert store.stats() == {"sessions": 0, "evicted_lru": 0, "evicted_ttl": 1}

    def test_only_idle_entries_expire(self, clock):
        store = SessionStore(ttl_s=10.0, clock=clock)
        store.put("a", 1)
        clock.advance(6.0)
        store.put("b", 2)
        clock.advance(6.0)  # a idle 12s, b idle 6s
        assert store.evict_expired() == 1
        assert store.keys() == ["b"]


class TestCallbackReentrancy:
    def test_callback_may_reenter_the_store(self):
        """on_evict runs outside the lock: re-entrant calls must not deadlock."""
        store = SessionStore(max_sessions=1, on_evict=lambda key, value, why: store.pop("x"))
        store.put("a", 1)
        store.put("b", 2)  # evicts a -> callback pops (absent) "x"
        assert store.keys() == ["b"]

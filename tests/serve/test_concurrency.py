"""Concurrency: threaded clients, background dispatcher, swap atomicity.

The parity suites drive the server single-threaded with explicit
``flush()`` calls, making batch composition deterministic. Here the
composition is left to the scheduler: real client threads race into the
background dispatcher's windows, and hot swaps race the batches. The
contracts under test:

- per-session bit-identity to solo serving holds for **every** batch
  composition the scheduler produces (the parity argument is composition
  -independent, so thread timing cannot matter);
- under a mid-stream swap, every response carries the version that
  produced it, versions are monotone per session, and each session's
  stream equals a solo replay that switches weights at the step where
  that session first observed the new version;
- swap atomicity: a swap that arrives while a batch is **in flight**
  waits for it — the in-flight batch completes on the old weights and
  stamps the old version.
"""

import threading

import numpy as np

from repro.rl import MLPActorCritic
from repro.serve import PolicyServer, ServeConfig, snapshot_policy

from .helpers import (
    ACTION_DIM,
    STATE_DIM,
    assert_result_matches,
    make_obs_streams,
    make_policy,
    solo_serve,
)


def drive_session(server, sid, obs_stream, out, errors):
    """Client thread body: one blocking ``act`` per step of the stream."""
    try:
        for obs in obs_stream:
            out.append(server.act(sid, obs, timeout=30.0))
    except BaseException as error:  # surfaced by the main thread
        errors.append(error)


def run_threaded(kind, user_counts, obs_streams, session_seeds, server=None,
                 swap_after=None, swap_payload=None):
    """Drive one client thread per session against the background dispatcher.

    If ``swap_after`` is set, the main thread swaps ``swap_payload`` in as
    soon as any session has received that many responses (so the swap
    genuinely races the serving threads). Returns per-session results.
    """
    if server is None:
        server = PolicyServer(
            make_policy(kind),
            ServeConfig(max_batch_size=len(user_counts), max_wait_ms=0.5),
        )
    sids = [
        server.create_session(num_users=n, seed=session_seeds[i])
        for i, n in enumerate(user_counts)
    ]
    server.start()
    results = [[] for _ in user_counts]
    errors = []
    threads = [
        threading.Thread(
            target=drive_session, args=(server, sid, obs_streams[i], results[i], errors)
        )
        for i, sid in enumerate(sids)
    ]
    for thread in threads:
        thread.start()
    if swap_after is not None:
        while all(len(r) < swap_after for r in results) and any(
            t.is_alive() for t in threads
        ):
            pass  # spin until some session reaches the swap point
        server.swap_policy(swap_payload)
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads), "client thread hung"
    server.stop()
    server.close()
    assert not errors, f"client threads raised: {errors!r}"
    return results


def test_threaded_clients_match_solo():
    """Scheduler-chosen batch compositions still serve solo streams."""
    user_counts = [1, 3, 2, 1, 2]
    steps = 8
    obs_streams = make_obs_streams(user_counts, steps, seed=53)
    seeds = [1000 + i for i in range(len(user_counts))]
    served = run_threaded("lstm", user_counts, obs_streams, seeds)
    for i, n in enumerate(user_counts):
        assert len(served[i]) == steps
        solo = solo_serve("lstm", n, seeds[i], obs_streams[i])
        for t, (result, expected) in enumerate(zip(served[i], solo)):
            assert_result_matches(result, expected, f"session{i}/step{t}")


def test_threaded_sim2rec_group_context_isolated():
    """υ-context stays per-session under scheduler-chosen windows."""
    user_counts = [2, 3]
    steps = 5
    obs_streams = make_obs_streams(user_counts, steps, seed=59)
    seeds = [2000, 2001]
    served = run_threaded("sim2rec", user_counts, obs_streams, seeds)
    for i, n in enumerate(user_counts):
        solo = solo_serve("sim2rec", n, seeds[i], obs_streams[i])
        for t, (result, expected) in enumerate(zip(served[i], solo)):
            assert_result_matches(result, expected, f"session{i}/step{t}")


def test_hot_swap_under_concurrency():
    """A swap racing live client threads is atomic and version-stamped."""
    kind = "lstm"
    user_counts = [2, 1, 3]
    steps = 10
    obs_streams = make_obs_streams(user_counts, steps, seed=61)
    seeds = [3000 + i for i in range(len(user_counts))]
    donor = make_policy(kind)
    for param in donor.parameters():
        param.data = param.data + 0.04
    served = run_threaded(
        kind, user_counts, obs_streams, seeds,
        swap_after=3, swap_payload=snapshot_policy(donor),
    )
    for i, n in enumerate(user_counts):
        versions = [result.version for result in served[i]]
        assert set(versions) <= {1, 2}, f"session{i}: unknown version in {versions}"
        assert versions == sorted(versions), f"session{i}: versions not monotone"
        # Replay solo, switching weights exactly where this session first
        # saw version 2 (recurrent state carried across the swap).
        switch = versions.index(2) if 2 in versions else steps
        policy = make_policy(kind)
        rng = np.random.default_rng(seeds[i])
        policy.start_rollout(n)
        prev = np.zeros((n, ACTION_DIM))
        for t in range(steps):
            if t == switch:
                state = policy.recurrent_state()
                policy.load_replica_state(donor.replica_state())
                policy.set_recurrent_state(state)
            actions, log_probs, values = policy.act(obs_streams[i][t], prev, rng)
            prev = actions
            assert_result_matches(
                served[i][t], (actions, log_probs, values), f"session{i}/step{t}"
            )


class GatedMLP(MLPActorCritic):
    """MLP whose forward blocks until released — freezes a batch in flight."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.entered = threading.Event()
        self.release = threading.Event()

    def act(self, states, prev_actions, rng, deterministic=False):
        self.entered.set()
        assert self.release.wait(timeout=30.0), "gate never released"
        return super().act(states, prev_actions, rng, deterministic=deterministic)


def test_inflight_batch_completes_on_old_version():
    """A swap arriving mid-batch waits; the batch lands on the old weights."""
    policy = GatedMLP(
        STATE_DIM, ACTION_DIM, np.random.default_rng(1), hidden_sizes=(16,)
    )
    server = PolicyServer(policy, ServeConfig(max_batch_size=4))
    sid = server.create_session(num_users=2, seed=4000)
    obs = make_obs_streams([2], 2, seed=67)[0]

    ticket = server.submit(sid, obs[0])
    flusher = threading.Thread(target=server.flush)
    flusher.start()
    assert policy.entered.wait(timeout=30.0), "batch never reached the policy"

    # The batch now holds the lock inside policy.act. A swap must block
    # until it completes rather than mutating weights under it.
    donor = MLPActorCritic(
        STATE_DIM, ACTION_DIM, np.random.default_rng(1), hidden_sizes=(16,)
    )
    for param in donor.parameters():
        param.data = param.data + 0.05
    payload = snapshot_policy(donor)
    swapped = threading.Event()

    def do_swap():
        server.swap_policy(payload)
        swapped.set()

    swapper = threading.Thread(target=do_swap)
    swapper.start()
    assert not swapped.wait(timeout=0.2), "swap landed while a batch was in flight"

    policy.release.set()
    flusher.join(timeout=30.0)
    swapper.join(timeout=30.0)
    assert swapped.is_set(), "swap never completed after the batch finished"

    # The frozen batch was served by the old weights and says so.
    first = ticket.result(timeout=5.0)
    assert first.version == 1
    # The very next request is served by the swapped weights.
    second = server.act(sid, obs[1], timeout=30.0)
    assert second.version == 2 and server.version == 2
    server.close()

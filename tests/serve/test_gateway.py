"""Gateway wire protocol + failure semantics + many-client parity.

Three layers:

- **framing** — pure codec tests: fragmentation-proof incremental
  decoding, bit-exact ndarray transport (including NaN payloads),
  oversized-frame rejection;
- **protocol** — one live loopback gateway per test: typed ``TIMEOUT``
  on deadline expiry (with deferred session cleanup), ``BUSY`` under
  admission overflow, disconnect/idle cleanup, LRU/TTL session bounds,
  ``BAD_REQUEST`` resilience;
- **parity** — the contract the transport must not break: actions served
  through TCP by many concurrent clients are bit-identical to direct
  in-process ``PolicyServer`` serving.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    DeadlineExceeded,
    FrameError,
    FrameReader,
    Gateway,
    GatewayBusy,
    GatewayClient,
    GatewayConfig,
    PolicyServer,
    ReplicaSet,
    ServeConfig,
    SessionError,
)
from repro.serve.protocol import pack_frame

from .helpers import STATE_DIM, make_obs_streams, make_policy, solo_serve


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def make_gateway(kind="mlp", serve_overrides=None, **gateway_overrides):
    server = PolicyServer(
        make_policy(kind),
        ServeConfig(**{"max_batch_size": 8, "max_wait_ms": 1.0, "seed": 0,
                       **(serve_overrides or {})}),
    )
    gateway = Gateway(server, GatewayConfig(**gateway_overrides))
    gateway.start()
    return gateway, server


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip_preserves_structure(self):
        message = {"op": "act", "nested": [1, 2.5, None, "x", {"y": True}]}
        reader = FrameReader()
        (decoded,) = reader.feed(pack_frame(message))
        assert decoded == message
        assert reader.pending_bytes == 0

    def test_ndarray_transport_is_bit_exact(self):
        array = np.array([[0.1 + 0.2, -0.0, np.nan, np.inf, 1e-308]])
        (decoded,) = FrameReader().feed(pack_frame({"obs": array}))
        out = decoded["obs"]
        assert out.dtype == array.dtype
        assert out.tobytes() == array.tobytes()  # bitwise, NaN included
        out[0, 0] = 7.0  # decoded arrays are writable copies

    def test_one_byte_at_a_time_fragmentation(self):
        frame = pack_frame({"op": "ping", "obs": np.arange(6.0).reshape(2, 3)})
        reader = FrameReader()
        messages = []
        for index in range(len(frame)):
            messages.extend(reader.feed(frame[index:index + 1]))
        assert len(messages) == 1
        assert np.array_equal(messages[0]["obs"], np.arange(6.0).reshape(2, 3))

    def test_many_frames_in_one_chunk_and_a_tail(self):
        frames = pack_frame({"i": 0}) + pack_frame({"i": 1}) + pack_frame({"i": 2})
        split = len(frames) - 3  # last frame arrives incomplete
        reader = FrameReader()
        first = reader.feed(frames[:split])
        assert [m["i"] for m in first] == [0, 1]
        assert reader.pending_bytes > 0
        second = reader.feed(frames[split:])
        assert [m["i"] for m in second] == [2]

    def test_oversized_length_prefix_rejected(self):
        reader = FrameReader()
        with pytest.raises(FrameError, match="exceeds"):
            reader.feed((2**31).to_bytes(4, "big") + b"x")

    def test_bad_ndarray_tag_rejected(self):
        from repro.serve.protocol import decode_payload

        with pytest.raises(FrameError, match="ndarray"):
            decode_payload({"__ndarray__": [2], "dtype": "not-a-dtype", "b64": "AA=="})
        with pytest.raises(FrameError, match="ndarray"):
            decode_payload({"__ndarray__": [4], "dtype": "<f8", "b64": "AA=="})


# ----------------------------------------------------------------------
# protocol semantics over a live socket
# ----------------------------------------------------------------------
class TestProtocol:
    def test_open_act_end_happy_path(self):
        gateway, server = make_gateway()
        with gateway, GatewayClient(gateway.address) as client:
            assert client.ping()
            session = client.open_session(num_users=2, seed=5)
            assert session.replica == "default"
            result = session.act(np.zeros((2, STATE_DIM)))
            assert result.actions.shape == (2, 1)
            assert result.step == 1
            assert session.steps == 1
            session.end()
            assert server.num_sessions == 0

    def test_act_on_unknown_session_is_typed_session_error(self):
        gateway, _ = make_gateway()
        with gateway, GatewayClient(gateway.address) as client:
            session = client.open_session()
            session.end()
            session._ended = False  # force the dead id onto the wire
            with pytest.raises(SessionError, match="unknown session"):
                session.act(np.zeros((1, STATE_DIM)))

    def test_shape_mismatch_reports_server_message(self):
        gateway, _ = make_gateway()
        with gateway, GatewayClient(gateway.address) as client:
            session = client.open_session(num_users=1)
            with pytest.raises(SessionError, match="shape"):
                session.act(np.zeros((3, STATE_DIM)))
            # the connection survives a typed error
            assert client.ping()

    def test_bad_requests_keep_the_connection_alive(self):
        gateway, _ = make_gateway()
        with gateway:
            with socket.create_connection(gateway.address, timeout=5.0) as sock:
                reader = FrameReader()

                def roundtrip(message):
                    sock.sendall(pack_frame(message))
                    while True:
                        chunk = sock.recv(65536)
                        assert chunk, "gateway closed the connection"
                        messages = reader.feed(chunk)
                        if messages:
                            return messages[0]

                for bad in (
                    {"op": "warp"},
                    {"no_op": 1},
                    {"op": "act"},
                    {"op": "act", "session": "s", "obs": None},
                    {"op": "end"},
                    "just a string",
                ):
                    reply = roundtrip(bad)
                    assert reply["ok"] is False
                    assert reply["error"] in ("BAD_REQUEST", "SESSION")
                assert roundtrip({"op": "ping"})["ok"] is True

    def test_deadline_expiry_returns_typed_timeout(self):
        # A wide-open batching window (huge max_wait, huge batch) parks
        # the lone request: its 50 ms deadline must expire, typed.
        gateway, server = make_gateway(
            serve_overrides={"max_wait_ms": 60_000.0, "max_batch_size": 64}
        )
        with gateway, GatewayClient(gateway.address) as client:
            session = client.open_session(num_users=1)
            begin = time.monotonic()
            with pytest.raises(DeadlineExceeded, match="deadline"):
                session.act(np.zeros((1, STATE_DIM)), deadline_ms=50)
            assert time.monotonic() - begin < 5.0
            assert gateway.stats()["deadline_timeouts"] == 1
            # The session is quarantined: dead to the client, ended
            # server-side once its in-flight batch resolves (the reaper
            # runs on any later request or stats call).
            server.flush()
            assert wait_until(
                lambda: gateway.stats() is not None and server.num_sessions == 0
            )

    def test_busy_under_admission_overflow(self):
        gateway, _ = make_gateway(
            serve_overrides={"max_wait_ms": 60_000.0, "max_batch_size": 64},
            max_pending=1,
        )
        with gateway:
            blocked_error = []

            def occupant():
                with GatewayClient(gateway.address) as client:
                    session = client.open_session(num_users=1)
                    try:
                        session.act(np.zeros((1, STATE_DIM)), deadline_ms=2000)
                    except DeadlineExceeded as error:
                        blocked_error.append(error)

            thread = threading.Thread(target=occupant)
            thread.start()
            try:
                assert wait_until(lambda: gateway.stats()["pending"] == 1)
                with GatewayClient(gateway.address) as client:
                    session = client.open_session(num_users=1)
                    with pytest.raises(GatewayBusy, match="retry"):
                        session.act(np.zeros((1, STATE_DIM)))
                assert gateway.stats()["busy_rejections"] == 1
            finally:
                thread.join()

    def test_disconnect_mid_session_cleans_up(self):
        gateway, server = make_gateway()
        with gateway:
            client = GatewayClient(gateway.address)
            session = client.open_session(num_users=1)
            session.act(np.zeros((1, STATE_DIM)))
            assert server.num_sessions == 1
            client.close()  # vanish without an `end`
            assert wait_until(lambda: server.num_sessions == 0)
            assert gateway.stats()["connections_cleaned"] >= 1

    def test_disconnect_with_request_in_flight_cleans_up(self):
        """Closing the socket while a batch is pending must not leak."""
        gateway, server = make_gateway(
            serve_overrides={"max_wait_ms": 200.0, "max_batch_size": 64}
        )
        with gateway:
            client = GatewayClient(gateway.address)
            session = client.open_session(num_users=1)
            worker = threading.Thread(
                target=lambda: self._swallow(
                    lambda: session.act(np.zeros((1, STATE_DIM)), deadline_ms=50)
                )
            )
            worker.start()
            worker.join()
            client.close()
            assert wait_until(
                lambda: gateway.stats() is not None and server.num_sessions == 0
            )

    @staticmethod
    def _swallow(fn):
        try:
            fn()
        except Exception:
            pass

    def test_lru_session_cap_is_enforced(self):
        gateway, server = make_gateway(max_sessions=4)
        with gateway, GatewayClient(gateway.address) as client:
            for _ in range(10):
                client.open_session(num_users=1)
            stats = gateway.stats()
            assert stats["store"]["sessions"] <= 4
            assert stats["store"]["evicted_lru"] >= 6
            assert wait_until(lambda: server.num_sessions <= 4)

    def test_ttl_evicts_idle_sessions(self):
        gateway, server = make_gateway(session_ttl_s=0.1)
        with gateway, GatewayClient(gateway.address) as client:
            idle = client.open_session(num_users=1)
            time.sleep(0.25)
            client.open_session(num_users=1)  # mutation sweeps expired entries
            stats = gateway.stats()
            assert stats["store"]["evicted_ttl"] >= 1
            with pytest.raises(SessionError, match="unknown session"):
                idle._ended = False
                idle.act(np.zeros((1, STATE_DIM)))

    def test_idle_connection_is_closed(self):
        gateway, _ = make_gateway(idle_timeout_s=0.15)
        with gateway:
            client = GatewayClient(gateway.address)
            assert client.ping()
            time.sleep(0.4)
            with pytest.raises(Exception):
                client.ping()
            client.close()

    def test_config_validation(self):
        for knobs in (
            {"max_pending": 0},
            {"max_pending": 1.5},
            {"default_deadline_ms": 0.0},
            {"default_deadline_ms": float("nan")},
            {"idle_timeout_s": -1.0},
            {"max_sessions": 0},
            {"session_ttl_s": 0.0},
        ):
            with pytest.raises(ValueError):
                GatewayConfig(**knobs)


# ----------------------------------------------------------------------
# parity: TCP serving must not perturb a single bit
# ----------------------------------------------------------------------
class TestGatewayParity:
    @pytest.mark.parametrize("kind", ["mlp", "lstm", "sim2rec"])
    def test_threaded_many_client_parity(self, kind):
        """N concurrent TCP clients == N solo in-process sessions, bitwise."""
        num_sessions, steps = 6, 5
        user_counts = [1 + (i % 3) for i in range(num_sessions)]
        obs_streams = make_obs_streams(user_counts, steps, seed=23)
        session_seeds = [500 + i for i in range(num_sessions)]

        gateway, _ = make_gateway(kind=kind)
        served = [None] * num_sessions
        errors = []

        def run(index):
            try:
                with GatewayClient(gateway.address) as client:
                    session = client.open_session(
                        num_users=user_counts[index], seed=session_seeds[index]
                    )
                    served[index] = [
                        session.act(obs) for obs in obs_streams[index]
                    ]
                    session.end()
            except Exception as error:
                errors.append((index, error))

        with gateway:
            threads = [
                threading.Thread(target=run, args=(index,))
                for index in range(num_sessions)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors

        for index in range(num_sessions):
            reference = solo_serve(
                kind, user_counts[index], session_seeds[index], obs_streams[index]
            )
            for step, (result, expected) in enumerate(zip(served[index], reference)):
                actions, log_probs, values = expected
                assert np.array_equal(result.actions, actions), (index, step)
                assert np.array_equal(result.log_probs, log_probs), (index, step)
                assert np.array_equal(result.values, values), (index, step)

    def test_two_replica_ab_split_serves_both_arms(self):
        """A/B routing: sessions land per the seeded split, both arms serve."""
        replica_set = ReplicaSet(config=ServeConfig(max_wait_ms=1.0, seed=0), seed=11)
        replica_set.add("control", make_policy("mlp"), weight=0.5)
        treatment = make_policy("mlp")
        for param in treatment.parameters():
            param.data = param.data + 0.05
        replica_set.add("treatment", treatment, weight=0.5)

        with Gateway(replica_set) as gateway:
            gateway.start()
            arms = {}
            with GatewayClient(gateway.address) as client:
                for index in range(16):
                    session = client.open_session(num_users=1, key=f"user{index}")
                    result = session.act(np.zeros((1, STATE_DIM)))
                    arms.setdefault(session.replica, []).append(result.actions)
                    session.end()
            assert set(arms) == {"control", "treatment"}
            # the two arms really serve different weights
            assert not np.array_equal(arms["control"][0], arms["treatment"][0])

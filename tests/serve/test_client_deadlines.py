"""Regression tests for the serve-client deadline/desync bugfixes.

Three bugs, each with the test that failed before its fix:

- **connection poisoning** — a transport fault mid-exchange used to
  leave the client reusable, so the next request read the *previous*
  request's late reply (off-by-one desync). The client now closes
  itself on any ``OSError``/``ValueError`` during a roundtrip.
- **socket timeout vs. per-request deadline** — a ``deadline_ms``
  larger than the client's fixed socket timeout used to surface as a
  generic transport failure (the socket gave up before the gateway's
  typed ``TIMEOUT`` reply could arrive). The client now raises the
  socket timeout to ``deadline_s + DEADLINE_MARGIN_S`` for that
  exchange only.
- **deadline clock zero** — the gateway used to start the deadline
  clock at ``ticket.result(...)``, granting decode/dispatch/admission
  free time on top of ``deadline_ms``. The clock now starts when the
  request frame arrives off the socket, and only the *remaining*
  budget reaches the batch wait.
"""

import numpy as np
import pytest

from repro.serve import (
    DeadlineExceeded,
    Gateway,
    GatewayClient,
    GatewayConfig,
    GatewayError,
    PolicyServer,
    ServeConfig,
)

from .helpers import STATE_DIM, make_policy
from .test_gateway import make_gateway, wait_until


# ----------------------------------------------------------------------
# bug 1: transport faults must poison the connection
# ----------------------------------------------------------------------
class TestConnectionPoisoning:
    def test_mid_frame_timeout_poisons_the_client(self):
        """A socket timeout mid-reply closes the client; every later call
        raises instead of reading the stale reply off the wire."""
        # Wide-open batching parks the act server-side; the client's own
        # 0.2 s socket timeout fires first, mid-exchange.
        gateway, _ = make_gateway(
            serve_overrides={"max_wait_ms": 60_000.0, "max_batch_size": 64}
        )
        with gateway:
            client = GatewayClient(gateway.address, timeout_s=0.2)
            session = client.open_session(num_users=1)
            with pytest.raises(GatewayError, match="transport failure"):
                session.act(np.zeros((1, STATE_DIM)))
            # Poisoned: reuse must raise, not desynchronise the stream.
            with pytest.raises(GatewayError, match="client is closed"):
                client.ping()
            with pytest.raises(GatewayError, match="client is closed"):
                session.act(np.zeros((1, STATE_DIM)))
            client.close()  # idempotent


# ----------------------------------------------------------------------
# bug 3: deadline_ms larger than the socket timeout stays typed
# ----------------------------------------------------------------------
class TestDeadlineOverSocketTimeout:
    def test_large_deadline_yields_typed_timeout_not_transport_failure(self):
        """deadline_ms > timeout_s * 1000: the socket timeout is raised
        for the exchange, so the gateway's typed TIMEOUT reply arrives
        and the connection survives."""
        gateway, server = make_gateway(
            serve_overrides={"max_wait_ms": 60_000.0, "max_batch_size": 64}
        )
        with gateway:
            client = GatewayClient(gateway.address, timeout_s=0.2)
            session = client.open_session(num_users=1)
            with pytest.raises(DeadlineExceeded, match="deadline"):
                session.act(np.zeros((1, STATE_DIM)), deadline_ms=1000)
            # The typed reply came through: the connection is healthy and
            # the per-exchange timeout raise was restored afterwards.
            assert client.ping() is True
            assert client._sock.gettimeout() == pytest.approx(0.2)
            assert gateway.stats()["deadline_timeouts"] == 1
            server.flush()
            # stats() drives the reaper that ends the quarantined session.
            assert wait_until(
                lambda: gateway.stats() is not None and server.num_sessions == 0
            )
            client.close()


# ----------------------------------------------------------------------
# bug 2: the deadline clock starts at frame arrival
# ----------------------------------------------------------------------
class SteppingClock:
    """Monotonic fake that jumps ``step`` seconds on every read: the gap
    between the arrival stamp and the act handler's read models a decode
    and dispatch slower than any plausible deadline."""

    def __init__(self, step: float):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestDeadlineClockStartsAtArrival:
    def test_slow_decode_spends_the_deadline_budget(self):
        """With 10 s elapsing between frame arrival and dispatch, a 5 s
        deadline must expire *before* the request reaches the server —
        pre-fix, the wait got the full 5 s regardless and the act
        succeeded."""
        server = PolicyServer(
            make_policy("mlp"),
            ServeConfig(max_batch_size=8, max_wait_ms=1.0, seed=0),
        )
        gateway = Gateway(server, GatewayConfig(), clock=SteppingClock(10.0))
        gateway.start()
        with gateway:
            client = GatewayClient(gateway.address)
            session = client.open_session(num_users=1)
            with pytest.raises(DeadlineExceeded, match="before dispatch"):
                session.act(np.zeros((1, STATE_DIM)), deadline_ms=5000)
            stats = gateway.stats()
            assert stats["deadline_timeouts"] == 1
            # The request never reached the server: nothing to
            # quarantine, the session was ended directly.
            assert stats["quarantined"] == 0
            assert wait_until(lambda: server.num_sessions == 0)
            client.close()

    def test_wait_receives_only_the_remaining_budget(self):
        """Time already spent since arrival comes out of the budget the
        batch wait gets: 2 s gone from a 5 s deadline leaves a 3 s wait."""

        class FakeTicket:
            def __init__(self):
                self.timeout = None

            def result(self, timeout=None):
                self.timeout = timeout
                raise TimeoutError

            def done(self):
                return True

        class FakeServer:
            running = True

        class FakeHandle:
            def __init__(self):
                self.ticket = FakeTicket()
                self.server = FakeServer()
                self.alive = False

            def submit(self, obs, trace=None):
                return self.ticket

        now = [100.0]
        server = PolicyServer(
            make_policy("mlp"),
            ServeConfig(max_batch_size=8, max_wait_ms=1.0, seed=0),
        )
        gateway = Gateway(server, GatewayConfig(), clock=lambda: now[0])
        gateway.start()
        with gateway:
            handle = FakeHandle()
            gateway._sessions.put("s", handle)
            reply = gateway._op_act(
                {"session": "s", "obs": np.zeros((1, STATE_DIM)),
                 "deadline_ms": 5000.0},
                arrival=now[0] - 2.0,
            )
            assert reply["ok"] is False and reply["error"] == "TIMEOUT"
            assert handle.ticket.timeout == pytest.approx(3.0)

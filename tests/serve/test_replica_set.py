"""ReplicaSet semantics: deterministic routing, per-replica swap, retirement.

Routing must be a pure function of (seed, weights, key) — reproducible
A/B assignment — and every replica is a full PolicyServer, so sessions
on a replica keep the bit-identity contract of direct serving.
"""

import numpy as np
import pytest

from repro.serve import (
    PolicyServer,
    ReplicaSet,
    ServeConfig,
    SessionError,
    snapshot_policy,
)

from .helpers import STATE_DIM, make_obs_streams, make_policy


def make_set(seed=7, kinds=("mlp", "mlp"), weights=None, **config_overrides):
    config = ServeConfig(**{"max_batch_size": 8, "seed": 0, **config_overrides})
    replica_set = ReplicaSet(config=config, seed=seed)
    for index, kind in enumerate(kinds):
        weight = 1.0 if weights is None else weights[index]
        replica_set.add(f"r{index}", make_policy(kind), weight=weight)
    return replica_set


class TestMembership:
    def test_duplicate_name_rejected(self):
        replica_set = make_set()
        with pytest.raises(ValueError, match="already registered"):
            replica_set.add("r0", make_policy("mlp"))

    def test_empty_name_and_bad_weight_rejected(self):
        replica_set = ReplicaSet()
        with pytest.raises(ValueError, match="name"):
            replica_set.add("", make_policy("mlp"))
        with pytest.raises(ValueError, match="weight"):
            replica_set.add("r", make_policy("mlp"), weight=0.0)

    def test_set_weight_validates(self):
        replica_set = make_set()
        with pytest.raises(ValueError, match="weight"):
            replica_set.set_weight("r0", -1.0)
        replica_set.set_weight("r0", 3.0)
        assert replica_set.stats()["weights"]["r0"] == 3.0

    def test_unknown_replica_rejected(self):
        replica_set = make_set()
        with pytest.raises(KeyError, match="unknown replica"):
            replica_set.replica("ghost")
        with pytest.raises(KeyError, match="unknown replica"):
            replica_set.set_weight("ghost", 2.0)

    def test_route_on_empty_set_rejected(self):
        with pytest.raises(SessionError, match="empty"):
            ReplicaSet().route("key")


class TestRouting:
    def test_routing_is_deterministic(self):
        a = make_set(seed=3)
        b = make_set(seed=3)
        keys = [f"user{i}" for i in range(64)]
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_seed_changes_the_split(self):
        keys = [f"user{i}" for i in range(64)]
        split_a = [make_set(seed=1).route(k) for k in keys]
        split_b = [make_set(seed=2).route(k) for k in keys]
        assert split_a != split_b

    def test_weights_shape_the_split(self):
        replica_set = make_set(weights=(9.0, 1.0))
        keys = [f"user{i}" for i in range(400)]
        routed = [replica_set.route(k) for k in keys]
        heavy = routed.count("r0") / len(routed)
        assert 0.8 < heavy < 1.0  # ~90% to the weight-9 arm

    def test_route_unaffected_by_open_sessions(self):
        """Load never reshuffles assignments: routing ignores session state."""
        replica_set = make_set()
        before = [replica_set.route(f"k{i}") for i in range(32)]
        for _ in range(10):
            replica_set.open_session()
        assert [replica_set.route(f"k{i}") for i in range(32)] == before


class TestSessions:
    def test_set_generated_ids_unique_across_replicas(self):
        replica_set = make_set()
        handles = [replica_set.open_session()[0] for _ in range(20)]
        assert len({handle.id for handle in handles}) == 20
        assert replica_set.num_sessions == 20

    def test_duplicate_explicit_id_rejected_set_wide(self):
        replica_set = make_set()
        replica_set.open_session(session_id="alice")
        with pytest.raises(SessionError, match="already exists"):
            replica_set.open_session(session_id="alice")

    def test_key_pins_routing(self):
        replica_set = make_set()
        expected = replica_set.route("sticky-user")
        for _ in range(5):
            _, name = replica_set.open_session(key="sticky-user")
            assert name == expected

    def test_get_and_end_session(self):
        replica_set = make_set()
        handle, name = replica_set.open_session(num_users=2, seed=5)
        fetched, fetched_name = replica_set.get_session(handle.id)
        assert fetched_name == name
        assert fetched.num_users == 2
        replica_set.end_session(handle.id)
        assert replica_set.num_sessions == 0
        with pytest.raises(SessionError, match="unknown session"):
            replica_set.get_session(handle.id)

    def test_replica_session_matches_direct_server(self):
        """A routed session serves bit-identically to a direct PolicyServer."""
        obs_stream = make_obs_streams([2], 4, seed=11)[0]
        replica_set = make_set(kinds=("lstm", "lstm"))
        handle, name = replica_set.open_session(num_users=2, seed=42)
        direct = PolicyServer(make_policy("lstm"), ServeConfig(max_batch_size=8, seed=0))
        reference = direct.session(num_users=2, seed=42)
        for obs in obs_stream:
            routed_result = handle.act(obs, timeout=5.0)
            direct_result = reference.act(obs, timeout=5.0)
            assert np.array_equal(routed_result.actions, direct_result.actions)
        replica_set.close()
        direct.close()


class TestSwapAndRetire:
    def test_swap_is_per_replica(self):
        replica_set = make_set()
        donor = make_policy("mlp")
        for param in donor.parameters():
            param.data = param.data + 0.01
        assert replica_set.publish("r0", donor) == 2
        assert replica_set.replica("r0").version == 2
        assert replica_set.replica("r1").version == 1  # untouched

    def test_swap_accepts_raw_archive(self):
        replica_set = make_set()
        donor = make_policy("mlp")
        for param in donor.parameters():
            param.data = param.data + 0.02
        assert replica_set.swap("r1", snapshot_policy(donor)) == 2

    def test_retire_removes_from_routing_and_closes_sessions(self):
        replica_set = make_set()
        # open sessions until both replicas hold at least one
        names = set()
        while len(names) < 2:
            _, name = replica_set.open_session()
            names.add(name)
        before = replica_set.num_sessions
        closed = replica_set.retire("r0")
        assert closed >= 1
        assert replica_set.names() == ["r1"]
        assert replica_set.num_sessions == before - closed
        # every future key routes to the survivor
        assert all(replica_set.route(f"k{i}") == "r1" for i in range(16))
        with pytest.raises(KeyError, match="unknown replica"):
            replica_set.replica("r0")
        assert replica_set.stats()["retired"] == {"r0": 1}

    def test_retire_drains_queued_requests(self):
        """stop(drain=True): queued tickets resolve before the replica dies."""
        replica_set = make_set(kinds=("mlp",))
        handle, name = replica_set.open_session(num_users=1, seed=0)
        ticket = handle.submit(np.zeros((1, STATE_DIM)))
        assert not ticket.done()
        replica_set.retire(name)
        result = ticket.result(timeout=5.0)
        assert result.actions.shape == (1, 1)

    def test_sessions_never_migrate(self):
        """Retiring a replica kills its sessions; survivors are untouched."""
        replica_set = make_set()
        handles = {}
        while len(handles) < 2:
            handle, name = replica_set.open_session(num_users=1, seed=1)
            handles.setdefault(name, handle)
        replica_set.retire("r0")
        assert not handles["r0"].alive
        assert handles["r1"].alive


class TestWholeSet:
    def test_flush_serves_all_replicas(self):
        replica_set = make_set()
        tickets = []
        for _ in range(6):
            handle, _ = replica_set.open_session(num_users=1)
            tickets.append(handle.submit(np.zeros((1, STATE_DIM))))
        assert replica_set.flush() == 6
        assert all(ticket.done() for ticket in tickets)

    def test_close_is_idempotent_and_context_managed(self):
        with make_set() as replica_set:
            replica_set.open_session()
        replica_set.close()
        assert replica_set.num_replicas == 0

    def test_start_runs_background_dispatchers(self):
        replica_set = make_set(max_wait_ms=1.0)
        try:
            replica_set.start()
            handle, name = replica_set.open_session(num_users=1)
            assert replica_set.replica(name).running
            result = handle.act(np.zeros((1, STATE_DIM)), timeout=5.0)
            assert result.step == 1
        finally:
            replica_set.close()

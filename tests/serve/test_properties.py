"""Property-based fuzz tests for microbatch assembly (hypothesis).

Fuzzed serving schedules — random session counts, ragged ``num_users``,
random per-step participation/arrival orders, mid-stream session ends,
random ``max_batch_size`` window chunking and per-session deterministic
flags — must always serve every session **bit-identically** to solo
serving (one ``policy.act`` per request on a fresh policy). This is the
serving analogue of ``tests/rl/test_rollout_properties.py``'s
RNG-stream-isolation property and runs derandomized for reproducible CI.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.serve import PolicyServer, ServeConfig  # noqa: E402

from .helpers import (  # noqa: E402
    STATE_DIM,
    assert_result_matches,
    make_policy,
    solo_serve,
)

COMMON = dict(deadline=None, derandomize=True, print_blob=True)


@st.composite
def serving_plans(draw, max_sessions=4, max_steps=5):
    """A full fuzzed serving scenario.

    Returns ``(user_counts, lengths, schedule, flags, max_batch_size)``:
    ragged session sizes, a per-session request count (mid-stream ends —
    a session simply stops submitting), a per-step participation order
    realising those counts, per-session deterministic flags, and a
    window size that may be far smaller than the offered load.
    """
    num_sessions = draw(st.integers(1, max_sessions))
    user_counts = [draw(st.integers(1, 4)) for _ in range(num_sessions)]
    lengths = [draw(st.integers(1, max_steps)) for _ in range(num_sessions)]
    flags = [draw(st.booleans()) for _ in range(num_sessions)]
    max_batch_size = draw(st.integers(1, 8))
    # Build the schedule step by step: any session with requests left may
    # participate, in a drawn arrival order; at least one must (else the
    # step is dropped), so the schedule realises every session's length.
    remaining = list(lengths)
    schedule = []
    while any(remaining):
        alive = [i for i, left in enumerate(remaining) if left > 0]
        participants = [i for i in alive if draw(st.booleans())] or [
            alive[draw(st.integers(0, len(alive) - 1))]
        ]
        order = draw(st.permutations(participants))
        for index in order:
            remaining[index] -= 1
        schedule.append(list(order))
    return user_counts, lengths, schedule, flags, max_batch_size


def run_plan(kind, plan, seed):
    """Serve a fuzzed plan and assert per-step bit-identity vs solo."""
    user_counts, lengths, schedule, flags, max_batch_size = plan
    rng = np.random.default_rng(seed)
    obs_streams = [
        [rng.random((users, STATE_DIM)) for _ in range(length)]
        for users, length in zip(user_counts, lengths)
    ]
    session_seeds = [seed * 1000 + i for i in range(len(user_counts))]
    server = PolicyServer(
        make_policy(kind), ServeConfig(max_batch_size=max_batch_size)
    )
    sids = [
        server.create_session(
            num_users=users, seed=session_seeds[i], deterministic=flags[i]
        )
        for i, users in enumerate(user_counts)
    ]
    cursors = [0] * len(user_counts)
    served = [[] for _ in user_counts]
    for participants in schedule:
        tickets = []
        for index in participants:
            obs = obs_streams[index][cursors[index]]
            cursors[index] += 1
            tickets.append((index, server.submit(sids[index], obs)))
        server.flush()
        for index, ticket in tickets:
            served[index].append(ticket.result(timeout=5.0))
        # Mid-stream end: a session whose stream is exhausted leaves the
        # server entirely; later windows must not miss its rows.
        for index in participants:
            if cursors[index] == lengths[index]:
                server.end_session(sids[index])
    server.close()
    for i, users in enumerate(user_counts):
        assert len(served[i]) == lengths[i]
        solo = solo_serve(
            kind, users, session_seeds[i], obs_streams[i], deterministic=flags[i]
        )
        for t, (result, expected) in enumerate(zip(served[i], solo)):
            assert_result_matches(result, expected, f"{kind}/session{i}/step{t}")


@settings(max_examples=25, **COMMON)
@given(plan=serving_plans(), seed=st.integers(0, 2**16))
def test_fuzzed_schedules_mlp(plan, seed):
    run_plan("mlp", plan, seed)


@settings(max_examples=25, **COMMON)
@given(plan=serving_plans(), seed=st.integers(0, 2**16))
def test_fuzzed_schedules_lstm(plan, seed):
    run_plan("lstm", plan, seed)


@settings(max_examples=8, **COMMON)
@given(plan=serving_plans(max_sessions=3, max_steps=4), seed=st.integers(0, 2**16))
def test_fuzzed_schedules_sim2rec(plan, seed):
    run_plan("sim2rec", plan, seed)

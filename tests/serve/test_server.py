"""PolicyServer protocol semantics: lifecycle, errors, hot-swap contract.

Parity is proven in ``test_parity.py``; this file pins the *protocol*:
session lifecycle rules (unknown ids, double submits, shape checks,
pending-request fences), window accounting, the synchronous ``act``
convenience, and the full hot-swap rulebook (apply / skip-if-byte-equal /
stale stamp / torn archive / structure mismatch), plus server shutdown.
"""

import numpy as np
import pytest

from repro.nn.serialization import StateChecksumError
from repro.rl import StaleReplicaError
from repro.serve import (
    PolicyServer,
    ServeConfig,
    SessionError,
    snapshot_policy,
)

from .helpers import STATE_DIM, make_obs_streams, make_policy


def make_server(kind="mlp", **overrides):
    defaults = dict(max_batch_size=8, max_wait_ms=2.0, seed=0)
    defaults.update(overrides)
    return PolicyServer(make_policy(kind), ServeConfig(**defaults))


class TestConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            ServeConfig(max_wait_ms=-1.0)

    @pytest.mark.parametrize(
        "knobs",
        [
            {"max_batch_size": 1.5},
            {"max_batch_size": True},
            {"max_batch_size": "8"},
            {"max_wait_ms": float("nan")},
            {"max_wait_ms": float("inf")},
            {"max_wait_ms": "2.0"},
            {"max_wait_ms": None},
            {"seed": 1.5},
            {"seed": True},
            {"seed": "0"},
        ],
    )
    def test_rejects_wrong_types_and_non_finite(self, knobs):
        with pytest.raises(ValueError):
            ServeConfig(**knobs)

    def test_numpy_integers_accepted(self):
        config = ServeConfig(
            max_batch_size=np.int64(4), max_wait_ms=np.float64(1.0), seed=np.int32(7)
        )
        assert config.max_batch_size == 4

    def test_error_messages_name_the_knob(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServeConfig(max_batch_size=-3)
        with pytest.raises(ValueError, match="max_wait_ms"):
            ServeConfig(max_wait_ms=float("nan"))
        with pytest.raises(ValueError, match="seed"):
            ServeConfig(seed="bad")


class TestSessionLifecycle:
    def test_auto_ids_are_unique(self):
        server = make_server()
        ids = {server.create_session() for _ in range(5)}
        assert len(ids) == 5
        assert server.num_sessions == 5

    def test_duplicate_explicit_id_rejected(self):
        server = make_server()
        server.create_session(session_id="alice")
        with pytest.raises(SessionError, match="already exists"):
            server.create_session(session_id="alice")

    def test_num_users_must_be_positive(self):
        with pytest.raises(ValueError):
            make_server().create_session(num_users=0)

    def test_unknown_session_rejected(self):
        server = make_server()
        with pytest.raises(SessionError, match="unknown session"):
            server.submit("ghost", np.zeros((1, STATE_DIM)))
        with pytest.raises(SessionError, match="unknown session"):
            server.end_session("ghost")

    def test_double_submit_rejected(self):
        server = make_server()
        sid = server.create_session(num_users=1)
        server.submit(sid, np.zeros((1, STATE_DIM)))
        with pytest.raises(SessionError, match="in flight"):
            server.submit(sid, np.zeros((1, STATE_DIM)))

    def test_observation_shape_checked(self):
        server = make_server()
        sid = server.create_session(num_users=2)
        with pytest.raises(SessionError, match="shape"):
            server.submit(sid, np.zeros((3, STATE_DIM)))
        with pytest.raises(SessionError, match="shape"):
            server.submit(sid, np.zeros((2, STATE_DIM + 1)))

    def test_one_dim_obs_accepted_for_single_user(self):
        server = make_server()
        sid = server.create_session(num_users=1)
        result = server.act(sid, np.zeros(STATE_DIM), timeout=5.0)
        assert result.actions.shape == (1, 1)
        assert result.step == 1

    def test_end_with_pending_request_rejected(self):
        server = make_server()
        sid = server.create_session(num_users=1)
        server.submit(sid, np.zeros((1, STATE_DIM)))
        with pytest.raises(SessionError, match="unserved"):
            server.end_session(sid)
        server.flush()
        server.end_session(sid)
        assert server.num_sessions == 0

    def test_reused_id_after_end_is_fresh(self):
        """Ending a session frees its id; a new session starts from scratch."""
        obs = make_obs_streams([1], 2, seed=3)[0]
        server = make_server(kind="lstm")
        sid = server.create_session(session_id="s", num_users=1, seed=5)
        first = server.act(sid, obs[0], timeout=5.0)
        server.end_session(sid)
        sid2 = server.create_session(session_id="s", num_users=1, seed=5)
        again = server.act(sid2, obs[0], timeout=5.0)
        assert again.step == 1
        assert np.array_equal(first.actions, again.actions)


class TestSessionHandle:
    """The `Session` handle surface and its parity with the legacy id API."""

    def test_session_returns_live_handle(self):
        server = make_server()
        handle = server.session(num_users=2, seed=3)
        assert handle.alive
        assert handle.num_users == 2
        assert handle.steps == 0
        assert handle.version == server.version

    def test_handle_act_matches_legacy_act(self):
        obs = make_obs_streams([1], 3, seed=9)[0]
        server_a = make_server(kind="lstm")
        server_b = make_server(kind="lstm")
        handle = server_a.session(num_users=1, seed=5)
        sid = server_b.create_session(num_users=1, seed=5)
        for t in range(3):
            via_handle = handle.act(obs[t], timeout=5.0)
            via_id = server_b.act(sid, obs[t], timeout=5.0)
            assert np.array_equal(via_handle.actions, via_id.actions)
            assert via_handle.step == via_id.step == t + 1

    def test_get_session_attaches_to_same_state(self):
        server = make_server()
        handle = server.session(session_id="alice", num_users=1, seed=0)
        other = server.get_session("alice")
        handle.act(np.zeros(STATE_DIM), timeout=5.0)
        assert other.steps == 1
        other.end()
        assert not handle.alive

    def test_get_session_unknown_id_rejected(self):
        with pytest.raises(SessionError, match="unknown session"):
            make_server().get_session("ghost")

    def test_handle_after_end_rejected(self):
        server = make_server()
        handle = server.session(num_users=1)
        handle.end()
        assert not handle.alive
        with pytest.raises(SessionError, match="unknown session"):
            handle.submit(np.zeros((1, STATE_DIM)))
        with pytest.raises(SessionError, match="unknown session"):
            handle.end()

    def test_stale_handle_does_not_touch_reused_id(self):
        """A handle outlived by its session must not act on the id's successor."""
        server = make_server()
        old = server.session(session_id="s", num_users=1)
        old.end()
        fresh = server.session(session_id="s", num_users=1)
        with pytest.raises(SessionError, match="unknown session"):
            old.submit(np.zeros((1, STATE_DIM)))
        assert fresh.alive

    def test_version_tracks_swaps(self):
        server = make_server()
        handle = server.session(num_users=1, seed=0)
        handle.act(np.zeros(STATE_DIM), timeout=5.0)
        assert handle.version == 1
        swapped = make_policy("mlp")
        for param in swapped.parameters():
            param.data = param.data + 0.25  # different bytes -> the swap applies
        server.publish(swapped)
        assert server.version == 2
        assert handle.version == 1  # not served since the swap
        handle.act(np.zeros(STATE_DIM), timeout=5.0)
        assert handle.version == 2

    def test_end_with_pending_request_rejected_via_handle(self):
        server = make_server()
        handle = server.session(num_users=1)
        handle.submit(np.zeros((1, STATE_DIM)))
        with pytest.raises(SessionError, match="unserved"):
            handle.end()
        server.flush()
        handle.end()


class TestWindows:
    def test_flush_reports_served_count_and_chunks(self):
        server = make_server(max_batch_size=2)
        sids = [server.create_session(num_users=1) for _ in range(5)]
        tickets = [server.submit(sid, np.zeros((1, STATE_DIM))) for sid in sids]
        assert server.flush() == 5
        assert all(ticket.done() for ticket in tickets)
        stats = server.stats()
        assert stats["batches"] == 3  # 2 + 2 + 1
        assert stats["requests"] == 5
        assert stats["pending"] == 0

    def test_flush_on_empty_queue_is_noop(self):
        server = make_server()
        assert server.flush() == 0
        assert server.stats()["batches"] == 0

    def test_max_batch_rows_tracks_user_axis(self):
        server = make_server()
        for users in (3, 2):
            server.create_session(session_id=f"u{users}", num_users=users)
        for users in (3, 2):
            server.submit(f"u{users}", np.zeros((users, STATE_DIM)))
        server.flush()
        assert server.stats()["max_batch_rows"] == 5

    def test_ticket_timeout(self):
        server = make_server()
        sid = server.create_session(num_users=1)
        ticket = server.submit(sid, np.zeros((1, STATE_DIM)))
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)
        server.flush()
        assert ticket.result(timeout=1.0).step == 1


class TestHotSwapProtocol:
    def test_apply_bumps_version_and_stamps_responses(self):
        server = make_server(kind="lstm")
        donor = make_policy("lstm")
        for param in donor.parameters():
            param.data = param.data + 0.02
        assert server.version == 1
        assert server.swap_policy(snapshot_policy(donor)) == 2
        assert server.version == 2
        sid = server.create_session(num_users=1)
        assert server.act(sid, np.zeros(STATE_DIM), timeout=5.0).version == 2
        assert server.stats()["swaps_applied"] == 1

    def test_byte_equal_archive_skipped(self):
        server = make_server(kind="lstm")
        payload = snapshot_policy(make_policy("lstm"))  # same bytes as serving
        assert server.swap_policy(payload) == 1
        stats = server.stats()
        assert stats["swaps_skipped"] == 1 and stats["swaps_applied"] == 0

    def test_explicit_version_stamps(self):
        server = make_server(kind="lstm")
        donor = make_policy("lstm")
        for param in donor.parameters():
            param.data = param.data + 0.02
        assert server.swap_policy(snapshot_policy(donor), version=7) == 7
        with pytest.raises(StaleReplicaError):
            server.swap_policy(snapshot_policy(make_policy("lstm")), version=7)
        with pytest.raises(StaleReplicaError):
            server.swap_policy(snapshot_policy(make_policy("lstm")), version=3)

    def test_torn_archive_rejected_weights_untouched(self):
        server = make_server(kind="lstm")
        donor = make_policy("lstm")
        for param in donor.parameters():
            param.data = param.data + 0.02
        payload = bytearray(snapshot_policy(donor))
        payload[len(payload) // 2] ^= 0xFF
        with pytest.raises(StateChecksumError):
            server.swap_policy(bytes(payload))
        assert server.version == 1
        # the serving weights still answer like the original policy
        obs = make_obs_streams([1], 1, seed=9)[0][0]
        sid = server.create_session(num_users=1, seed=4, deterministic=True)
        got = server.act(sid, obs, timeout=5.0)
        reference = PolicyServer(make_policy("lstm"), ServeConfig())
        rid = reference.create_session(num_users=1, seed=4, deterministic=True)
        expected = reference.act(rid, obs, timeout=5.0)
        assert np.array_equal(got.actions, expected.actions)

    def test_structure_mismatch_rejected(self):
        server = make_server(kind="lstm")
        with pytest.raises(ValueError, match="structure"):
            server.swap_policy(snapshot_policy(make_policy("mlp")))
        assert server.version == 1

    def test_publish_convenience(self):
        server = make_server(kind="gru")
        donor = make_policy("gru")
        for param in donor.parameters():
            param.data = param.data + 0.01
        assert server.publish(donor) == 2
        assert server.publish(donor) == 2  # byte-equal now: skipped


class TestShutdown:
    def test_close_fails_pending_tickets(self):
        server = make_server()
        sid = server.create_session(num_users=1)
        ticket = server.submit(sid, np.zeros((1, STATE_DIM)))
        server.close()
        with pytest.raises(SessionError, match="closed"):
            ticket.result(timeout=1.0)
        with pytest.raises(SessionError, match="closed"):
            server.create_session()
        with pytest.raises(SessionError, match="closed"):
            server.swap_policy(snapshot_policy(make_policy("mlp")))

    def test_context_manager_closes(self):
        with make_server() as server:
            sid = server.create_session(num_users=1)
            server.act(sid, np.zeros(STATE_DIM), timeout=5.0)
        with pytest.raises(SessionError):
            server.create_session()

    def test_close_is_idempotent(self):
        server = make_server()
        server.close()
        server.close()

"""Serving parity: microbatched sessions bit-reproduce solo serving.

The serving counterpart of ``tests/rl/test_rollout_parity.py``: every
action the :class:`repro.serve.PolicyServer` returns from a stacked
microbatch must be **bitwise identical** to what the same session would
have received served alone (one ``policy.act`` per request), across

- every policy family (MLP / LSTM / GRU / Sim2Rec),
- ragged session sizes sharing one window,
- arbitrary arrival interleavings (staggered joins, early ends,
  per-step participation patterns, arrival-order permutations),
- window chunking (``max_batch_size`` smaller than the offered load),
- mixed deterministic/stochastic sessions in one window,

plus the two headline regressions: recurrent/Sim2Rec **session-state
isolation** (identical observations, different histories -> each
session still reproduces its own solo stream) and **hot-swap
mid-stream** (weights swapped at step k serve exactly like a solo
policy whose weights were swapped at step k).
"""

import numpy as np
import pytest

from repro.serve import PolicyServer, ServeConfig, snapshot_policy

from .helpers import (
    ACTION_DIM,
    POLICY_KINDS,
    RECURRENT_KINDS,
    assert_result_matches,
    make_obs_streams,
    make_policy,
    solo_serve,
)


def serve_interleaved(kind, user_counts, obs_streams, session_seeds,
                      schedule, max_batch_size=32, deterministic=False):
    """Drive the server with an explicit per-step participation schedule.

    ``schedule[t]`` lists the session indices submitting at step ``t`` (in
    that arrival order); each session consumes its own obs stream in
    order. Returns per-session lists of ActionResults.
    """
    server = PolicyServer(
        make_policy(kind), ServeConfig(max_batch_size=max_batch_size)
    )
    sids = [
        server.create_session(
            num_users=n, seed=session_seeds[i], deterministic=deterministic
        )
        for i, n in enumerate(user_counts)
    ]
    cursors = [0] * len(user_counts)
    results = [[] for _ in user_counts]
    for participants in schedule:
        tickets = []
        for index in participants:
            obs = obs_streams[index][cursors[index]]
            cursors[index] += 1
            tickets.append((index, server.submit(sids[index], obs)))
        server.flush()
        for index, ticket in tickets:
            results[index].append(ticket.result(timeout=5.0))
    server.close()
    return results


@pytest.mark.parametrize("kind", POLICY_KINDS)
class TestMicrobatchParity:
    def test_full_interleave_matches_solo(self, kind):
        """All sessions in every window, ragged sizes, one flush per step."""
        user_counts = [1, 3, 2, 4]
        steps = 6
        obs_streams = make_obs_streams(user_counts, steps)
        seeds = [100 + i for i in range(len(user_counts))]
        schedule = [list(range(len(user_counts)))] * steps
        served = serve_interleaved(kind, user_counts, obs_streams, seeds, schedule)
        for i, n in enumerate(user_counts):
            solo = solo_serve(kind, n, seeds[i], obs_streams[i])
            for t, (result, expected) in enumerate(zip(served[i], solo)):
                assert_result_matches(result, expected, f"{kind}/session{i}/step{t}")

    def test_staggered_joins_and_early_ends(self, kind):
        """Sessions joining and leaving mid-stream keep their solo streams."""
        user_counts = [2, 1, 3]
        obs_streams = make_obs_streams(user_counts, 6, seed=11)
        seeds = [200, 201, 202]
        # session 0 runs steps 0-5, session 1 joins at 2 and ends at 4,
        # session 2 joins at 1 and ends at 3.
        schedule = [
            [0],
            [0, 2],
            [1, 0, 2],
            [2, 1, 0],
            [0, 1],
            [0],
        ]
        lengths = [6, 3, 3]
        served = serve_interleaved(kind, user_counts, obs_streams, seeds, schedule)
        for i, n in enumerate(user_counts):
            assert len(served[i]) == lengths[i]
            solo = solo_serve(kind, n, seeds[i], obs_streams[i][: lengths[i]])
            for t, (result, expected) in enumerate(zip(served[i], solo)):
                assert_result_matches(result, expected, f"{kind}/session{i}/step{t}")

    def test_window_chunking_matches_solo(self, kind):
        """max_batch_size=2 splits each flush into ragged windows."""
        user_counts = [2, 1, 2, 1, 3]
        steps = 4
        obs_streams = make_obs_streams(user_counts, steps, seed=13)
        seeds = [300 + i for i in range(len(user_counts))]
        schedule = [list(range(len(user_counts)))] * steps
        served = serve_interleaved(
            kind, user_counts, obs_streams, seeds, schedule, max_batch_size=2
        )
        for i, n in enumerate(user_counts):
            solo = solo_serve(kind, n, seeds[i], obs_streams[i])
            for t, (result, expected) in enumerate(zip(served[i], solo)):
                assert_result_matches(result, expected, f"{kind}/session{i}/step{t}")

    def test_arrival_order_is_irrelevant(self, kind):
        """Any within-window arrival permutation serves identical streams."""
        user_counts = [2, 3, 1]
        steps = 4
        obs_streams = make_obs_streams(user_counts, steps, seed=17)
        seeds = [400, 401, 402]
        orders = [[0, 1, 2], [2, 0, 1], [1, 2, 0], [2, 1, 0]]
        served = serve_interleaved(
            kind, user_counts, obs_streams, seeds, orders[:steps]
        )
        for i, n in enumerate(user_counts):
            solo = solo_serve(kind, n, seeds[i], obs_streams[i])
            for t, (result, expected) in enumerate(zip(served[i], solo)):
                assert_result_matches(result, expected, f"{kind}/session{i}/step{t}")


def test_mixed_determinism_window():
    """Deterministic and stochastic sessions share a window bit-exactly."""
    user_counts = [2, 2, 1]
    flags = [False, True, False]
    steps = 5
    obs_streams = make_obs_streams(user_counts, steps, seed=23)
    seeds = [500, 501, 502]
    server = PolicyServer(make_policy("lstm"), ServeConfig(max_batch_size=16))
    sids = [
        server.create_session(num_users=n, seed=seeds[i], deterministic=flags[i])
        for i, n in enumerate(user_counts)
    ]
    served = [[] for _ in user_counts]
    for t in range(steps):
        tickets = [
            server.submit(sids[i], obs_streams[i][t]) for i in range(len(sids))
        ]
        server.flush()
        for i, ticket in enumerate(tickets):
            served[i].append(ticket.result(timeout=5.0))
    server.close()
    for i, n in enumerate(user_counts):
        solo = solo_serve("lstm", n, seeds[i], obs_streams[i], deterministic=flags[i])
        for t, (result, expected) in enumerate(zip(served[i], solo)):
            assert_result_matches(result, expected, f"mixed/session{i}/step{t}")


@pytest.mark.parametrize("kind", RECURRENT_KINDS)
class TestSessionStateIsolation:
    """Satellite regression: interleaved histories never bleed across sessions."""

    def test_identical_observations_different_histories(self, kind):
        """Two sessions fed the *same* observations from step 2 on, after
        different warm-up histories, must produce *different* actions — each
        bit-equal to its own solo stream (shared hidden state would collapse
        them onto one stream)."""
        steps = 6
        shared = make_obs_streams([2], steps, seed=29)[0]
        warmup_a = make_obs_streams([2], 2, seed=31)[0]
        warmup_b = make_obs_streams([2], 2, seed=37)[0]
        stream_a = warmup_a + shared[2:]
        stream_b = warmup_b + shared[2:]
        seeds = [600, 600]  # identical noise streams: only history differs
        served = serve_interleaved(
            kind, [2, 2], [stream_a, stream_b], seeds, [[0, 1]] * steps
        )
        solo_a = solo_serve(kind, 2, seeds[0], stream_a)
        solo_b = solo_serve(kind, 2, seeds[1], stream_b)
        for t in range(steps):
            assert_result_matches(served[0][t], solo_a[t], f"{kind}/A/step{t}")
            assert_result_matches(served[1][t], solo_b[t], f"{kind}/B/step{t}")
        # Histories diverge -> post-warm-up actions must differ even though
        # observations and noise streams are identical.
        diverged = any(
            not np.array_equal(served[0][t].actions, served[1][t].actions)
            for t in range(2, steps)
        )
        assert diverged, f"{kind}: different histories produced identical actions"

    def test_interleaving_pattern_does_not_leak_state(self, kind):
        """A session's stream is invariant to who else shares its windows."""
        user_counts = [2, 3]
        steps = 5
        obs_streams = make_obs_streams(user_counts, steps, seed=41)
        seeds = [700, 701]
        together = serve_interleaved(
            kind, user_counts, obs_streams, seeds, [[0, 1]] * steps
        )
        alone = serve_interleaved(
            kind, [user_counts[0]], [obs_streams[0]], [seeds[0]], [[0]] * steps
        )
        for t in range(steps):
            assert_result_matches(
                together[0][t],
                (alone[0][t].actions, alone[0][t].log_probs, alone[0][t].values),
                f"{kind}/step{t}",
            )


@pytest.mark.parametrize("kind", ["mlp", "lstm", "sim2rec"])
class TestHotSwapMidStream:
    def test_swap_at_step_k_matches_solo_swap(self, kind):
        """Serving across a swap == solo serving across the same swap."""
        num_users, steps, k = 2, 6, 3
        obs_streams = make_obs_streams([num_users, 1], steps, seed=43)
        seeds = [800, 801]
        donor = make_policy(kind)
        for param in donor.parameters():
            param.data = param.data + 0.03
        payload = snapshot_policy(donor)

        server = PolicyServer(make_policy(kind), ServeConfig(max_batch_size=8))
        sids = [
            server.create_session(num_users=n, seed=seeds[i])
            for i, n in enumerate([num_users, 1])
        ]
        served = [[] for _ in sids]
        versions = []
        for t in range(steps):
            if t == k:
                assert server.swap_policy(payload) == 2
            tickets = [
                server.submit(sids[i], obs_streams[i][t]) for i in range(len(sids))
            ]
            server.flush()
            for i, ticket in enumerate(tickets):
                served[i].append(ticket.result(timeout=5.0))
            versions.append(served[0][t].version)
        server.close()
        assert versions == [1] * k + [2] * (steps - k)

        # Solo reference: one policy instance per session, weights swapped
        # before its k-th act, recurrent state carried straight across the
        # swap (a swap must replace weights only, never session state).
        for i, n in enumerate([num_users, 1]):
            policy = make_policy(kind)
            rng = np.random.default_rng(seeds[i])
            policy.start_rollout(n)
            prev = np.zeros((n, ACTION_DIM))
            for t in range(steps):
                if t == k:
                    state = policy.recurrent_state()
                    policy.load_replica_state(donor.replica_state())
                    policy.set_recurrent_state(state)
                actions, log_probs, values = policy.act(
                    obs_streams[i][t], prev, rng
                )
                prev = actions
                assert_result_matches(
                    served[i][t], (actions, log_probs, values), f"{kind}/s{i}/t{t}"
                )

    def test_swap_actually_changes_actions(self, kind):
        """The swapped weights are really served (guards a no-op load)."""
        obs = make_obs_streams([2], 1, seed=47)[0][0]
        server = PolicyServer(make_policy(kind), ServeConfig())
        sid = server.create_session(num_users=2, seed=900, deterministic=True)
        before = server.act(sid, obs, timeout=5.0)
        donor = make_policy(kind)
        for param in donor.parameters():
            param.data = param.data + 0.05
        server.swap_policy(snapshot_policy(donor))
        sid2 = server.create_session(num_users=2, seed=900, deterministic=True)
        after = server.act(sid2, obs, timeout=5.0)
        server.close()
        assert not np.array_equal(before.actions, after.actions)
        assert before.version == 1 and after.version == 2

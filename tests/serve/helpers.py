"""Shared factories for the serving parity/concurrency suite.

The reference semantics for every test here is **solo serving**: a fresh
policy serving one session alone, one ``policy.act`` per request, with
that session's own noise stream. ``solo_serve`` computes that stream;
the suites assert the microbatched :class:`repro.serve.PolicyServer`
reproduces it bit-for-bit under every batching/interleaving the server
can produce.

Parity tests drive the server open-loop (pre-generated observation
streams): the policy only ever sees (observations, previous actions,
its recurrent state), so closed-loop equivalence follows and is smoked
separately by ``examples/serve_quickstart.py`` / ``python -m repro.serve``
against live environments.
"""

import numpy as np

from repro.core import build_sim2rec_policy, dpr_small_config
from repro.rl import MLPActorCritic, RecurrentActorCritic

STATE_DIM = 2
ACTION_DIM = 1

#: Every policy family the serving layer must batch bit-identically.
POLICY_KINDS = ("mlp", "lstm", "gru", "sim2rec")
RECURRENT_KINDS = ("lstm", "gru", "sim2rec")


def make_policy(kind: str):
    """Fresh policy with deterministic weights (same kind -> same bytes)."""
    if kind == "mlp":
        return MLPActorCritic(
            STATE_DIM, ACTION_DIM, np.random.default_rng(1), hidden_sizes=(16,)
        )
    if kind in ("lstm", "gru"):
        return RecurrentActorCritic(
            STATE_DIM, ACTION_DIM, np.random.default_rng(0),
            lstm_hidden=8, head_hidden=(16,), cell=kind,
        )
    if kind == "sim2rec":
        return build_sim2rec_policy(STATE_DIM, ACTION_DIM, dpr_small_config(seed=0))
    raise ValueError(kind)


def make_obs_streams(user_counts, steps, seed=7):
    """One open-loop observation stream per session: [steps][num_users, d]."""
    rng = np.random.default_rng(seed)
    return [
        [rng.random((num_users, STATE_DIM)) for _ in range(steps)]
        for num_users in user_counts
    ]


def solo_serve(kind, num_users, session_seed, obs_stream, deterministic=False,
               policy=None):
    """Serve one session alone: the bit-identity reference.

    Returns ``[(actions, log_probs, values), ...]`` per step. Pass a
    prebuilt ``policy`` to thread one instance through several calls
    (hot-swap references mutate weights between steps).
    """
    if policy is None:
        policy = make_policy(kind)
    rng = np.random.default_rng(session_seed)
    policy.start_rollout(num_users)
    prev = np.zeros((num_users, ACTION_DIM))
    out = []
    for obs in obs_stream:
        actions, log_probs, values = policy.act(
            obs, prev, rng, deterministic=deterministic
        )
        prev = actions
        out.append((actions, log_probs, values))
    return out


def assert_result_matches(result, expected, label=""):
    """Bitwise comparison of one served ActionResult to a solo step."""
    actions, log_probs, values = expected
    assert np.array_equal(result.actions, actions), f"{label}: actions diverge"
    assert np.array_equal(result.log_probs, log_probs), f"{label}: log_probs diverge"
    assert np.array_equal(result.values, values), f"{label}: values diverge"

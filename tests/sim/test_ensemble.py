"""Tests for the simulator set Ω' and uncertainty U(s, a)."""

import numpy as np
import pytest

from repro.envs import DPRConfig, DPRWorld, collect_dpr_dataset
from repro.sim import (
    SimulatorEnsemble,
    SimulatorLearnerConfig,
    build_simulator_set,
    train_user_simulator,
)


@pytest.fixture(scope="module")
def dpr_data():
    world = DPRWorld(DPRConfig(num_cities=3, drivers_per_city=12, horizon=10, seed=11))
    return collect_dpr_dataset(world, episodes=2)


@pytest.fixture(scope="module")
def ensemble(dpr_data):
    config = SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=30)
    return build_simulator_set(dpr_data, num_members=5, base_config=config, seed=0)


class TestConstruction:
    def test_member_count(self, ensemble):
        assert len(ensemble) == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SimulatorEnsemble([])

    def test_mixed_dims_raise(self, dpr_data):
        cfg = SimulatorLearnerConfig(hidden_sizes=(8,), epochs=1)
        good = train_user_simulator(dpr_data, cfg)
        rng_pairs = (np.zeros((10, 4)), np.zeros((10, 2)), np.zeros((10, 3)))
        bad = train_user_simulator(rng_pairs, cfg)
        with pytest.raises(ValueError):
            SimulatorEnsemble([good, bad])

    def test_members_differ(self, ensemble, dpr_data):
        s, a, _ = dpr_data.transition_pairs()
        p0 = ensemble[0].predict_mean(s[:20], a[:20])
        p1 = ensemble[1].predict_mean(s[:20], a[:20])
        assert not np.allclose(p0, p1)

    def test_sample_member_uniform(self, ensemble):
        rng = np.random.default_rng(0)
        seen = {id(ensemble.sample_member(rng)) for _ in range(100)}
        assert len(seen) == 5


class TestUncertainty:
    def test_shape(self, ensemble, dpr_data):
        s, a, _ = dpr_data.transition_pairs()
        u = ensemble.uncertainty(s[:20], a[:20])
        assert u.shape == (20,)
        assert np.all(u >= 0)

    def test_zero_for_identical_members(self, dpr_data):
        cfg = SimulatorLearnerConfig(hidden_sizes=(8,), epochs=2, seed=0)
        member = train_user_simulator(dpr_data, cfg)
        twin = train_user_simulator(dpr_data, cfg)
        ensemble = SimulatorEnsemble([member, twin])
        s, a, _ = dpr_data.transition_pairs()
        np.testing.assert_allclose(ensemble.uncertainty(s[:10], a[:10]), 0.0, atol=1e-10)

    def test_higher_off_data(self, ensemble, dpr_data):
        """Disagreement on counterfactual actions far outside the behaviour
        policy's range must exceed on-data disagreement (the premise of the
        uncertainty penalty)."""
        s, a, _ = dpr_data.transition_pairs()
        on_data = ensemble.uncertainty(s[:200], a[:200]).mean()
        extreme = np.column_stack([np.ones(200), np.zeros(200)])  # far from πₑ
        off_data = ensemble.uncertainty(s[:200], extreme).mean()
        assert off_data > on_data

    def test_predict_means_shape(self, ensemble, dpr_data):
        s, a, _ = dpr_data.transition_pairs()
        means = ensemble.predict_means(s[:7], a[:7])
        assert means.shape == (5, 7, 3)


class TestSplit:
    def test_split_partitions(self, ensemble):
        train, held = ensemble.split([0, 2])
        assert len(train) == 3
        assert len(held) == 2

    def test_split_identity_preserved(self, ensemble):
        train, held = ensemble.split([4])
        assert held[0] is ensemble[4]
        assert ensemble[4] not in train.members

    def test_split_invalid_index_raises(self, ensemble):
        with pytest.raises(ValueError):
            ensemble.split([99])

    def test_split_cannot_hold_out_everything(self, ensemble):
        with pytest.raises(ValueError):
            ensemble.split([0, 1, 2, 3, 4])

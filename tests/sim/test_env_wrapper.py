"""Tests for the simulated transition process P_{M,τʳ}."""

import numpy as np
import pytest

from repro.envs import COST_RATE, DPRConfig, DPRFeaturizer, DPRWorld, collect_dpr_dataset
from repro.sim import (
    SimulatedDPREnv,
    SimulatorEnsemble,
    SimulatorLearnerConfig,
    train_user_simulator,
)


@pytest.fixture(scope="module")
def setup():
    world = DPRWorld(DPRConfig(num_cities=2, drivers_per_city=10, horizon=12, seed=21))
    dataset = collect_dpr_dataset(world, episodes=2)
    config = SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=25, seed=0)
    simulator = train_user_simulator(dataset, config)
    return world, dataset, simulator


def make_env(setup, **kwargs):
    _, dataset, simulator = setup
    defaults = dict(truncate_horizon=5, seed=0)
    defaults.update(kwargs)
    return SimulatedDPREnv(simulator, dataset.groups[0], **defaults)


class TestReset:
    def test_initial_state_from_log(self, setup):
        _, dataset, _ = setup
        env = make_env(setup)
        state = env.reset()
        log_states = dataset.groups[0].states
        # The reset state must be one of the logged (episode, t) slices.
        matches = [
            np.allclose(state, log_states[e, t])
            for e in range(log_states.shape[0])
            for t in range(log_states.shape[1])
        ]
        assert any(matches)

    def test_random_starts_vary(self, setup):
        env = make_env(setup)
        starts = {env.reset()[0, -2:].tobytes() for _ in range(20)}
        assert len(starts) > 1  # different time features → different starts

    def test_history_reconstruction_preserves_stats(self, setup):
        env = make_env(setup)
        state = env.reset()
        featurizer = DPRFeaturizer()
        stat = state[:, featurizer.slices["stat"]]
        np.testing.assert_allclose(env._order_history[:, -7:].mean(axis=1), stat[:, 0], atol=1e-9)
        np.testing.assert_allclose(env._order_history.mean(axis=1), stat[:, 1], atol=1e-9)

    def test_dim_mismatch_raises(self, setup):
        _, dataset, _ = setup
        bad = train_user_simulator(
            (np.zeros((10, 5)), np.zeros((10, 2)), np.zeros((10, 3))),
            SimulatorLearnerConfig(hidden_sizes=(4,), epochs=0),
        )
        with pytest.raises(ValueError):
            SimulatedDPREnv(bad, dataset.groups[0])


class TestStep:
    def test_shapes(self, setup):
        env = make_env(setup)
        env.reset()
        states, rewards, dones, info = env.step(np.full((10, 2), 0.4))
        assert states.shape == (10, 13)
        assert rewards.shape == (10,)
        assert not np.any(dones)

    def test_truncation_at_tc(self, setup):
        env = make_env(setup, truncate_horizon=3)
        env.reset()
        for step in range(3):
            _, _, dones, _ = env.step(np.full((10, 2), 0.4))
        assert np.all(dones)

    def test_reward_consistent_with_cost(self, setup):
        env = make_env(setup)
        env.reset()
        actions = np.column_stack([np.full(10, 0.4), np.full(10, 0.6)])
        _, rewards, _, info = env.step(actions)
        np.testing.assert_allclose(info["cost"], COST_RATE * 0.6 * info["orders"])
        np.testing.assert_allclose(rewards, info["orders"] - info["cost"])

    def test_exogenous_features_preserved(self, setup):
        """s^user and s^group must stay fixed (loaded from τʳ, not simulated)."""
        env = make_env(setup)
        featurizer = DPRFeaturizer()
        state0 = env.reset()
        state1, _, _, _ = env.step(np.full((10, 2), 0.4))
        np.testing.assert_array_equal(
            state0[:, featurizer.slices["user"]], state1[:, featurizer.slices["user"]]
        )
        np.testing.assert_array_equal(
            state0[:, featurizer.slices["group"]], state1[:, featurizer.slices["group"]]
        )

    def test_time_features_advance(self, setup):
        env = make_env(setup)
        featurizer = DPRFeaturizer()
        state0 = env.reset()
        state1, _, _, _ = env.step(np.full((10, 2), 0.4))
        assert not np.allclose(
            state0[:, featurizer.slices["time"]], state1[:, featurizer.slices["time"]]
        )

    def test_hist_block_updated_from_prediction(self, setup):
        env = make_env(setup)
        featurizer = DPRFeaturizer()
        env.reset()
        state1, _, _, info = env.step(np.full((10, 2), 0.4))
        np.testing.assert_array_equal(
            state1[:, featurizer.slices["hist"]][:, 0], info["orders"]
        )

    def test_orders_nonnegative(self, setup):
        env = make_env(setup)
        env.reset()
        rng = np.random.default_rng(0)
        for _ in range(5):
            _, _, _, info = env.step(rng.random((10, 2)))
            assert np.all(info["orders"] >= 0)

    def test_uncertainty_in_info_with_ensemble(self, setup):
        _, dataset, simulator = setup
        cfg = SimulatorLearnerConfig(hidden_sizes=(16,), epochs=5)
        other = train_user_simulator(dataset, cfg)
        ensemble = SimulatorEnsemble([simulator, other])
        env = make_env(setup, ensemble=ensemble)
        env.reset()
        _, _, _, info = env.step(np.full((10, 2), 0.4))
        assert "uncertainty" in info
        assert info["uncertainty"].shape == (10,)

    def test_exec_bounds_from_log(self, setup):
        _, dataset, _ = setup
        env = make_env(setup)
        group = dataset.groups[0]
        flat = group.actions.reshape(-1, group.num_users, 2)
        np.testing.assert_allclose(env.exec_low, flat.min(axis=0))
        np.testing.assert_allclose(env.exec_high, flat.max(axis=0))

    def test_rollout_reproducible_with_seed(self, setup):
        env1 = make_env(setup, seed=9)
        env2 = make_env(setup, seed=9)
        s1, s2 = env1.reset(), env2.reset()
        np.testing.assert_array_equal(s1, s2)
        a = np.full((10, 2), 0.5)
        np.testing.assert_array_equal(env1.step(a)[1], env2.step(a)[1])

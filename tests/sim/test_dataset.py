"""Tests for TrajectoryDataset / GroupTrajectories."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.dataset import GroupTrajectories, TrajectoryDataset


def make_group(group_id=0, episodes=2, horizon=5, users=4, ds=3, da=2, dy=1, seed=0):
    rng = np.random.default_rng(seed + group_id)
    return GroupTrajectories(
        group_id=group_id,
        states=rng.standard_normal((episodes, horizon + 1, users, ds)),
        actions=rng.standard_normal((episodes, horizon, users, da)),
        feedback=rng.standard_normal((episodes, horizon, users, dy)),
        rewards=rng.standard_normal((episodes, horizon, users)),
    )


class TestGroupTrajectories:
    def test_properties(self):
        group = make_group()
        assert group.num_episodes == 2
        assert group.horizon == 5
        assert group.num_users == 4
        assert group.state_dim == 3
        assert group.action_dim == 2
        assert group.feedback_dim == 1

    def test_shape_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GroupTrajectories(
                group_id=0,
                states=rng.standard_normal((1, 6, 4, 3)),
                actions=rng.standard_normal((1, 4, 4, 2)),  # wrong horizon
                feedback=rng.standard_normal((1, 5, 4, 1)),
                rewards=rng.standard_normal((1, 5, 4)),
            )

    def test_select_users(self):
        group = make_group()
        subset = group.select_users(np.array([0, 2]))
        assert subset.num_users == 2
        np.testing.assert_array_equal(subset.states, group.states[:, :, [0, 2]])

    def test_state_action_set_at_t0_zero_prev_action(self):
        group = make_group()
        states, prev_actions = group.state_action_set(0, 0)
        np.testing.assert_array_equal(prev_actions, np.zeros((4, 2)))
        np.testing.assert_array_equal(states, group.states[0, 0])

    def test_state_action_set_pairs_previous_action(self):
        group = make_group()
        states, prev_actions = group.state_action_set(1, 3)
        np.testing.assert_array_equal(states, group.states[1, 3])
        np.testing.assert_array_equal(prev_actions, group.actions[1, 2])

    def test_transition_pairs_count(self):
        group = make_group()
        s, a, y = group.transition_pairs()
        assert s.shape == (2 * 5 * 4, 3)
        assert a.shape == (2 * 5 * 4, 2)
        assert y.shape == (2 * 5 * 4, 1)

    def test_transition_pairs_alignment(self):
        """Row k of (s, a, y) must come from the same (episode, t, user)."""
        group = make_group(episodes=1, horizon=2, users=2)
        s, a, y = group.transition_pairs()
        np.testing.assert_array_equal(s[0], group.states[0, 0, 0])
        np.testing.assert_array_equal(a[0], group.actions[0, 0, 0])
        np.testing.assert_array_equal(y[0], group.feedback[0, 0, 0])
        np.testing.assert_array_equal(s[-1], group.states[0, 1, 1])
        np.testing.assert_array_equal(y[-1], group.feedback[0, 1, 1])


class TestTrajectoryDataset:
    def make_dataset(self, num_groups=3, users=6):
        return TrajectoryDataset([make_group(group_id=i, users=users) for i in range(num_groups)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TrajectoryDataset([])

    def test_mixed_dims_raise(self):
        with pytest.raises(ValueError):
            TrajectoryDataset([make_group(ds=3), make_group(group_id=1, ds=4)])

    def test_group_lookup(self):
        dataset = self.make_dataset()
        assert dataset.group(1).group_id == 1
        with pytest.raises(KeyError):
            dataset.group(99)

    def test_num_transitions(self):
        dataset = self.make_dataset()
        assert dataset.num_transitions == 3 * 2 * 5 * 6

    def test_transition_pairs_concatenated(self):
        dataset = self.make_dataset()
        s, a, y = dataset.transition_pairs()
        assert s.shape[0] == 3 * 2 * 5 * 6

    def test_state_action_sets_count(self):
        dataset = self.make_dataset()
        sets = dataset.state_action_sets()
        assert len(sets) == 3 * 2 * 6  # groups * episodes * (horizon + 1)

    def test_split_users_partitions(self):
        dataset = self.make_dataset(users=10)
        train, test = dataset.split_users(0.8, seed=0)
        for train_group, test_group, original in zip(train.groups, test.groups, dataset.groups):
            assert train_group.num_users + test_group.num_users == original.num_users
            assert train_group.num_users == 8

    def test_split_users_disjoint(self):
        dataset = self.make_dataset(users=10)
        train, test = dataset.split_users(0.5, seed=0)
        # Check disjointness via state content at (episode 0, t 0).
        train_rows = {tuple(row) for row in train.groups[0].states[0, 0]}
        test_rows = {tuple(row) for row in test.groups[0].states[0, 0]}
        assert not train_rows & test_rows

    def test_split_invalid_fraction(self):
        dataset = self.make_dataset()
        with pytest.raises(ValueError):
            dataset.split_users(1.5)

    def test_subsample_users(self):
        dataset = self.make_dataset(users=10)
        subset = dataset.subsample_users(0.5, seed=1)
        assert all(g.num_users == 5 for g in subset.groups)

    def test_subsample_differs_by_seed(self):
        dataset = self.make_dataset(users=10)
        s1 = dataset.subsample_users(0.5, seed=1)
        s2 = dataset.subsample_users(0.5, seed=2)
        assert not np.array_equal(s1.groups[0].states, s2.groups[0].states)

    def test_select_groups(self):
        dataset = self.make_dataset()
        subset = dataset.select_groups([0, 2])
        assert subset.group_ids == [0, 2]

    def test_action_bounds_shape_and_order(self):
        dataset = self.make_dataset()
        bounds = dataset.action_bounds()
        low, high = bounds[0]
        assert low.shape == (6, 2)
        assert np.all(low <= high)

    def test_action_bounds_actual_extremes(self):
        group = make_group(episodes=1, horizon=3, users=2)
        dataset = TrajectoryDataset([group])
        low, high = dataset.action_bounds()[0]
        np.testing.assert_allclose(low, group.actions[0].min(axis=0))
        np.testing.assert_allclose(high, group.actions[0].max(axis=0))

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_split_preserves_total_users(self, groups, users):
        dataset = TrajectoryDataset(
            [make_group(group_id=i, users=users) for i in range(groups)]
        )
        train, test = dataset.split_users(0.7, seed=0)
        for tr, te in zip(train.groups, test.groups):
            assert tr.num_users + te.num_users == users
            assert tr.num_users >= 1 and te.num_users >= 1

"""Tests for the alternative uncertainty estimators."""

import numpy as np
import pytest

from repro.sim import (
    SimulatorEnsemble,
    SimulatorLearnerConfig,
    UNCERTAINTY_ESTIMATORS,
    get_uncertainty_estimator,
    max_deviation,
    mean_deviation,
    pairwise_disagreement,
    train_user_simulator,
)


@pytest.fixture(scope="module")
def ensemble():
    rng = np.random.default_rng(0)
    s = rng.standard_normal((400, 3))
    a = rng.uniform(0, 1, (400, 2))
    y = np.column_stack([s[:, 0] + a[:, 0], (a[:, 1] > 0.5).astype(float)])
    members = [
        train_user_simulator(
            (s, a, y),
            SimulatorLearnerConfig(hidden_sizes=(16,), epochs=15, binary_dims=(1,), seed=i),
        )
        for i in range(4)
    ]
    return SimulatorEnsemble(members)


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(1)
    return rng.standard_normal((20, 3)), rng.uniform(0, 1, (20, 2))


class TestEstimators:
    def test_registry_contents(self):
        assert set(UNCERTAINTY_ESTIMATORS) == {
            "mean_deviation",
            "max_deviation",
            "pairwise",
        }

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_uncertainty_estimator("bogus")

    @pytest.mark.parametrize("name", sorted(UNCERTAINTY_ESTIMATORS))
    def test_shapes_and_nonnegativity(self, name, ensemble, inputs):
        states, actions = inputs
        values = get_uncertainty_estimator(name)(ensemble, states, actions)
        assert values.shape == (20,)
        assert np.all(values >= 0)

    def test_mean_deviation_matches_ensemble_method(self, ensemble, inputs):
        states, actions = inputs
        np.testing.assert_allclose(
            mean_deviation(ensemble, states, actions),
            ensemble.uncertainty(states, actions),
            atol=1e-12,
        )

    def test_max_dominates_mean(self, ensemble, inputs):
        states, actions = inputs
        assert np.all(
            max_deviation(ensemble, states, actions)
            >= mean_deviation(ensemble, states, actions) - 1e-12
        )

    def test_pairwise_zero_for_identical_members(self, inputs):
        rng = np.random.default_rng(0)
        s = rng.standard_normal((100, 3))
        a = rng.uniform(0, 1, (100, 2))
        y = np.column_stack([s[:, 0], (a[:, 1] > 0.5).astype(float)])
        config = SimulatorLearnerConfig(hidden_sizes=(8,), epochs=3, binary_dims=(1,), seed=0)
        member = train_user_simulator((s, a, y), config)
        twin = train_user_simulator((s, a, y), config)
        ensemble = SimulatorEnsemble([member, twin])
        states, actions = inputs
        np.testing.assert_allclose(
            pairwise_disagreement(ensemble, states, actions), 0.0, atol=1e-10
        )

    def test_single_member_pairwise_zero(self, ensemble, inputs):
        single = SimulatorEnsemble([ensemble[0]])
        states, actions = inputs
        np.testing.assert_allclose(
            pairwise_disagreement(single, states, actions), 0.0
        )

    def test_estimators_agree_on_ordering(self, ensemble, inputs):
        """All estimators should rank on-support vs far-off-support inputs
        the same way (off-support disagreement is larger)."""
        states, actions = inputs
        extreme = np.column_stack([np.full(20, 5.0), np.full(20, -3.0)])
        for name in UNCERTAINTY_ESTIMATORS:
            fn = get_uncertainty_estimator(name)
            on_support = fn(ensemble, states, actions).mean()
            off_support = fn(ensemble, states, extreme).mean()
            assert off_support > on_support, name


class TestPenaltyIntegration:
    def test_apply_penalty_with_estimator_choice(self, ensemble, inputs):
        from repro.core import apply_uncertainty_penalty
        from repro.rl import RolloutSegment

        states, actions = inputs
        segment = RolloutSegment(
            states=np.stack([states[:5]] * 3),
            prev_actions=np.stack([actions[:5]] * 3),
            actions=np.stack([actions[:5]] * 3),
            rewards=np.ones((3, 5)),
            dones=np.zeros((3, 5)),
            values=np.zeros((3, 5)),
            log_probs=np.zeros((3, 5)),
            last_values=np.zeros(5),
        )
        penalties_mean = apply_uncertainty_penalty(
            segment, ensemble, alpha=1.0, estimator="mean_deviation"
        )
        segment.rewards = np.ones((3, 5))
        penalties_max = apply_uncertainty_penalty(
            segment, ensemble, alpha=1.0, estimator="max_deviation"
        )
        assert np.all(penalties_max >= penalties_mean - 1e-12)

    def test_unknown_estimator_raises(self, ensemble):
        from repro.core import apply_uncertainty_penalty
        from repro.rl import RolloutSegment

        segment = RolloutSegment(
            states=np.zeros((1, 2, 3)),
            prev_actions=np.zeros((1, 2, 2)),
            actions=np.zeros((1, 2, 2)),
            rewards=np.zeros((1, 2)),
            dones=np.zeros((1, 2)),
            values=np.zeros((1, 2)),
            log_probs=np.zeros((1, 2)),
            last_values=np.zeros(2),
        )
        with pytest.raises(KeyError):
            apply_uncertainty_penalty(segment, ensemble, 1.0, estimator="nope")

"""Tests for user-simulator learning H(D', λ)."""

import numpy as np
import pytest

from repro.envs import DPRConfig, DPRWorld, collect_dpr_dataset
from repro.sim import (
    SimulatorLearnerConfig,
    UserSimulator,
    heldout_log_likelihood,
    train_user_simulator,
)


@pytest.fixture(scope="module")
def dpr_data():
    world = DPRWorld(DPRConfig(num_cities=2, drivers_per_city=15, horizon=10, seed=3))
    return collect_dpr_dataset(world, episodes=2)


@pytest.fixture(scope="module")
def trained_simulator(dpr_data):
    config = SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=40, seed=0)
    return train_user_simulator(dpr_data, config)


def synthetic_pairs(n=400, seed=0):
    """y0 = 2*s0 + a0 + noise (continuous); y1 = a0 > 0 (binary)."""
    rng = np.random.default_rng(seed)
    s = rng.standard_normal((n, 2))
    a = rng.uniform(-1, 1, (n, 1))
    y_cont = 2.0 * s[:, :1] + a + rng.normal(0, 0.05, (n, 1))
    y_bin = (a > 0).astype(float)
    return s, a, np.concatenate([y_cont, y_bin], axis=1)


class TestUserSimulator:
    def test_head_index_partition(self):
        config = SimulatorLearnerConfig(binary_dims=(2,))
        sim = UserSimulator(4, 2, 3, config)
        np.testing.assert_array_equal(sim.continuous_idx, [0, 1])
        np.testing.assert_array_equal(sim.binary_idx, [2])

    def test_predict_mean_shapes(self, trained_simulator, dpr_data):
        s, a, _ = dpr_data.transition_pairs()
        out = trained_simulator.predict_mean(s[:7], a[:7])
        assert out.shape == (7, 3)

    def test_binary_head_outputs_probabilities(self, trained_simulator, dpr_data):
        s, a, _ = dpr_data.transition_pairs()
        out = trained_simulator.predict_mean(s[:50], a[:50])
        probs = out[:, 2]
        assert np.all((probs >= 0) & (probs <= 1))

    def test_sample_binary_dims_are_binary(self, trained_simulator, dpr_data):
        s, a, _ = dpr_data.transition_pairs()
        sample = trained_simulator.sample(s[:50], a[:50], np.random.default_rng(0))
        assert set(np.unique(sample[:, 2])) <= {0.0, 1.0}

    def test_sampling_reproducible(self, trained_simulator, dpr_data):
        s, a, _ = dpr_data.transition_pairs()
        y1 = trained_simulator.sample(s[:5], a[:5], np.random.default_rng(3))
        y2 = trained_simulator.sample(s[:5], a[:5], np.random.default_rng(3))
        np.testing.assert_array_equal(y1, y2)


class TestTraining:
    def test_learns_synthetic_relationship(self):
        s, a, y = synthetic_pairs()
        config = SimulatorLearnerConfig(
            hidden_sizes=(32,), epochs=150, binary_dims=(1,), seed=1, learning_rate=3e-3
        )
        sim = train_user_simulator((s, a, y), config)
        s_test, a_test, y_test = synthetic_pairs(seed=99)
        prediction = sim.predict_mean(s_test, a_test)
        residual = prediction[:, 0] - y_test[:, 0]
        assert np.abs(residual).mean() < 0.3
        accuracy = ((prediction[:, 1] > 0.5) == (y_test[:, 1] > 0.5)).mean()
        assert accuracy > 0.9

    def test_training_improves_likelihood(self, dpr_data):
        untrained_cfg = SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=0, seed=0)
        untrained = train_user_simulator(dpr_data, untrained_cfg)
        trained_cfg = SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=30, seed=0)
        trained = train_user_simulator(dpr_data, trained_cfg)
        assert heldout_log_likelihood(trained, dpr_data) > heldout_log_likelihood(
            untrained, dpr_data
        )

    def test_generalizes_to_heldout_users(self, dpr_data):
        train, test = dpr_data.split_users(0.8, seed=0)
        config = SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=40, seed=0)
        sim = train_user_simulator(train, config)
        test_ll = heldout_log_likelihood(sim, test)
        untrained = train_user_simulator(
            train, SimulatorLearnerConfig(hidden_sizes=(32, 32), epochs=0, seed=0)
        )
        assert test_ll > heldout_log_likelihood(untrained, test)

    def test_seed_changes_weights(self, dpr_data):
        cfg1 = SimulatorLearnerConfig(hidden_sizes=(16,), epochs=2, seed=0)
        cfg2 = SimulatorLearnerConfig(hidden_sizes=(16,), epochs=2, seed=1)
        sim1 = train_user_simulator(dpr_data, cfg1)
        sim2 = train_user_simulator(dpr_data, cfg2)
        w1 = sim1.net.layers[0].weight.data
        w2 = sim2.net.layers[0].weight.data
        assert not np.allclose(w1, w2)

    def test_same_seed_reproducible(self, dpr_data):
        cfg = SimulatorLearnerConfig(hidden_sizes=(16,), epochs=3, seed=5)
        sim1 = train_user_simulator(dpr_data, cfg)
        sim2 = train_user_simulator(dpr_data, cfg)
        s, a, _ = dpr_data.transition_pairs()
        np.testing.assert_allclose(
            sim1.predict_mean(s[:5], a[:5]), sim2.predict_mean(s[:5], a[:5])
        )

    def test_normalizer_fitted(self, trained_simulator):
        assert not np.allclose(trained_simulator.input_mean, 0.0)
        assert np.all(trained_simulator.input_std > 0)

#!/usr/bin/env python3
"""CI bench-regression gate: fail the build when recorded speedups regress.

Compares the smoke-run ``BENCH_rollout.json`` / ``BENCH_train.json`` /
``BENCH_serve.json`` artifacts against committed baseline floors
(``bench_baselines.json``) and exits non-zero on regression. Semantics:

- every scenario floor is a *speedup* floor; the measured value must be
  at least ``floor * tolerance`` (the tolerance band absorbs shared-
  runner noise — regressions have to be real, not jitter);
- every scenario must carry ``"equivalent": true`` — a bench that could
  not verify bit-equivalence between its timed paths is a failure
  regardless of timing;
- worker-sweep floors (``workers`` section, keyed by worker count) apply
  the ``speedup_vs_sequential`` number and are skipped when the bench
  machine has fewer than ``min_cpus`` cores: multi-process stepping
  cannot beat a single core, and the JSON records ``cpu_count`` exactly
  so this gate can tell a slow runner from a slow commit;
- mode-sweep floors (``mode_sweep`` section, keyed by mode name) gate
  the head-to-head numbers of the collection-mode sweep — e.g.
  ``shard_parallel``'s ``min_speedup_vs_sharded`` enforces that full
  rollouts in the workers beat step-only sharding whenever the runner
  actually has cores (same ``min_cpus`` skip). A floor's optional
  ``num_workers`` restricts it to the sweep records at that worker
  count (a workers=1 or oversubscribed run is not expected to clear a
  multi-worker floor). Equivalence flags on mode records are enforced
  unconditionally: bit-identity does not depend on core count;
- scenario-sweep floors (``scenario_sweep`` section, keyed by case name)
  gate the registry-driven scenario cases (``repro.scenarios`` families
  driven through the vectorized engine, including the ≥200-env SlateRec
  large-scale case). They are ``min_speedup`` floors on the vectorized-
  vs-sequential ratio; equivalence flags on every swept record are
  enforced unconditionally (bit-identity is machine-independent);
- singleton sections gate one record each: the serve bench's
  ``gateway``/``soak`` and the train bench's ``pipelined``
  (strict-vs-pipelined training overlap). ``min_*`` floors take the
  tolerance band; ``max_*`` ceilings (latency splits and queue depth
  from the observability layer) are the inverse — measured must stay at
  or below ``ceiling / tolerance``, with ``max_rss_growth_mb`` keeping
  its absolute, RSS-tracked-only semantics; a section's ``min_cpus``
  skips its speed floors on
  machines too small to show the effect, while equivalence flags —
  for ``pipelined``, seeded run-to-run reproducibility of the
  overlapped trajectory — are enforced on every machine;
- baselines are keyed by bench mode (``smoke`` for the CI artifacts,
  ``full`` for the committed dev-box artifacts), so the same gate checks
  whichever artifact it is handed.

Usage (CI runs this right after the smoke benches)::

    python .github/check_bench_regression.py \
        [--rollout BENCH_rollout.json] [--train BENCH_train.json] \
        [--serve BENCH_serve.json] [--baselines .github/bench_baselines.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List


def check_payload(payload: dict, baseline: dict, tolerance: float, label: str) -> List[str]:
    """Return a list of human-readable failures for one bench artifact."""
    failures: List[str] = []
    scenarios = {s["name"]: s for s in payload.get("scenarios", [])}
    cpu_count = payload.get("cpu_count") or 1

    for name, floors in baseline.get("scenarios", {}).items():
        scenario = scenarios.get(name)
        if scenario is None:
            failures.append(f"{label}: scenario {name!r} missing from artifact")
            continue
        if scenario.get("equivalent") is not True:
            failures.append(f"{label}/{name}: equivalence flag is not true")
        floor = floors["min_speedup"]
        measured = scenario.get("speedup")
        if measured is None or measured < floor * tolerance:
            failures.append(
                f"{label}/{name}: speedup {measured} < floor {floor} x "
                f"tolerance {tolerance} = {floor * tolerance:.3f}"
            )

    worker_floors = baseline.get("workers", {})
    if worker_floors:
        # Every sweep scenario must clear the floor: collect all records
        # per worker count and gate the weakest one.
        sweeps: dict = {}
        for scenario in scenarios.values():
            for record in scenario.get("workers", []):
                sweeps.setdefault(str(record["num_workers"]), []).append(
                    (scenario["name"], record)
                )
        for count, floors in worker_floors.items():
            min_cpus = floors.get("min_cpus", 2)
            if cpu_count < min_cpus:
                print(
                    f"skip {label}/workers={count}: bench ran on {cpu_count} "
                    f"CPU(s), floor needs >= {min_cpus}"
                )
                continue
            records = sweeps.get(str(count))
            if not records:
                failures.append(
                    f"{label}/workers={count}: missing from the worker sweep"
                )
                continue
            floor = floors["min_speedup_vs_sequential"]
            for scenario_name, record in records:
                if record.get("equivalent") is not True:
                    failures.append(
                        f"{label}/{scenario_name}/workers={count}: "
                        "equivalence flag is not true"
                    )
                measured = record.get("speedup_vs_sequential")
                if measured is None or measured < floor * tolerance:
                    failures.append(
                        f"{label}/{scenario_name}/workers={count}: "
                        f"speedup_vs_sequential {measured} < floor {floor} x "
                        f"tolerance {tolerance} = {floor * tolerance:.3f}"
                    )

    mode_floors = baseline.get("mode_sweep", {})
    if mode_floors:
        sweeps = {}
        for scenario in scenarios.values():
            for record in scenario.get("mode_sweep", []):
                # Bit-equivalence holds on any machine: enforce the flag
                # on every swept record regardless of core count.
                if record.get("equivalent") is not True:
                    failures.append(
                        f"{label}/{scenario['name']}/mode={record.get('mode')}: "
                        "equivalence flag is not true"
                    )
                sweeps.setdefault(record.get("mode"), []).append(
                    (scenario["name"], record)
                )
        for mode, floors in mode_floors.items():
            min_cpus = floors.get("min_cpus", 2)
            if cpu_count < min_cpus:
                print(
                    f"skip {label}/mode={mode}: bench ran on {cpu_count} "
                    f"CPU(s), floor needs >= {min_cpus}"
                )
                continue
            records = sweeps.get(mode)
            workers = floors.get("num_workers")
            if workers is not None and records:
                records = [
                    (name, record)
                    for name, record in records
                    if record.get("num_workers") == workers
                ]
            at = f"mode={mode}" + (f"/workers={workers}" if workers else "")
            if not records:
                failures.append(f"{label}/{at}: missing from the mode sweep")
                continue
            for metric, floor in floors.items():
                if not metric.startswith("min_") or metric == "min_cpus":
                    continue
                key = metric[len("min_"):]
                for scenario_name, record in records:
                    measured = record.get(key)
                    if measured is None or measured < floor * tolerance:
                        failures.append(
                            f"{label}/{scenario_name}/{at}: "
                            f"{key} {measured} < floor {floor} x "
                            f"tolerance {tolerance} = {floor * tolerance:.3f}"
                        )

    sweep_floors = baseline.get("scenario_sweep", {})
    sweep_records = payload.get("scenario_sweep", [])
    if sweep_floors or sweep_records:
        by_name = {}
        for record in sweep_records:
            # Scenario cases verify bit-equivalence before timing on any
            # machine: the flag is enforced regardless of core count.
            if record.get("equivalent") is not True:
                failures.append(
                    f"{label}/scenario_sweep/{record.get('name')}: "
                    "equivalence flag is not true"
                )
            by_name[record.get("name")] = record
        for name, floors in sweep_floors.items():
            record = by_name.get(name)
            if record is None:
                failures.append(
                    f"{label}/scenario_sweep/{name}: missing from the scenario sweep"
                )
                continue
            floor = floors["min_speedup"]
            measured = record.get("speedup")
            if measured is None or measured < floor * tolerance:
                failures.append(
                    f"{label}/scenario_sweep/{name}: speedup {measured} < "
                    f"floor {floor} x tolerance {tolerance} = {floor * tolerance:.3f}"
                )

    # Singleton record sections: the serve bench's 'gateway' and 'soak',
    # and the train bench's 'pipelined' (strict-vs-pipelined overlap).
    # min_* floors take the tolerance band like every other floor; an
    # optional 'min_cpus' skips the speed floors on machines too small
    # to show the effect (the overlap needs a second core), while the
    # equivalence flag — for 'pipelined', seeded run-to-run
    # reproducibility — is enforced on every machine.
    # max_* ceilings are the inverse: the measured value must stay at or
    # below ceiling / tolerance (the same band, loosened upward), so
    # latency splits recorded by the observability layer (queue-wait /
    # compute p99s, queue depth) cannot silently blow up.
    # max_rss_growth_mb keeps its special absolute semantics: a leak
    # ceiling applied as-is and only when the artifact tracked RSS
    # (Linux /proc).
    for section in ("gateway", "soak", "pipelined"):
        floors = baseline.get(section)
        if not floors:
            continue
        record = payload.get(section)
        if record is None:
            failures.append(f"{label}/{section}: missing from artifact")
            continue
        if section in ("gateway", "pipelined") and record.get("equivalent") is not True:
            failures.append(f"{label}/{section}: equivalence flag is not true")
        min_cpus = floors.get("min_cpus")
        skip_speed = min_cpus is not None and cpu_count < min_cpus
        if skip_speed:
            print(
                f"skip {label}/{section} speed floors: bench ran on "
                f"{cpu_count} CPU(s), floor needs >= {min_cpus}"
            )
        for metric, floor in floors.items():
            if metric.startswith("min_") and metric != "min_cpus":
                if skip_speed:
                    continue
                key = metric[len("min_"):]
                measured = record.get(key)
                if measured is None or measured < floor * tolerance:
                    failures.append(
                        f"{label}/{section}: {key} {measured} < floor {floor} x "
                        f"tolerance {tolerance} = {floor * tolerance:.3f}"
                    )
            elif metric.startswith("max_") and metric != "max_rss_growth_mb":
                if skip_speed:
                    continue
                key = metric[len("max_"):]
                measured = record.get(key)
                allowed = floor / tolerance if tolerance else floor
                if measured is None or measured > allowed:
                    failures.append(
                        f"{label}/{section}: {key} {measured} > ceiling {floor} / "
                        f"tolerance {tolerance} = {allowed:.3f}"
                    )
        ceiling = floors.get("max_rss_growth_mb")
        if ceiling is not None and section == "soak":
            if record.get("rss_tracked"):
                measured = record.get("rss_growth_mb")
                if measured is None or measured > ceiling:
                    failures.append(
                        f"{label}/{section}: rss_growth_mb {measured} > "
                        f"ceiling {ceiling}"
                    )
            else:
                print(f"skip {label}/{section}/rss: artifact did not track RSS")
    return failures


def run(
    rollout_path: Path,
    train_path: Path,
    baselines_path: Path,
    serve_path: Path = None,
) -> int:
    baselines = json.loads(baselines_path.read_text())
    tolerance = baselines.get("tolerance", 1.0)
    failures: List[str] = []
    artifacts = [("rollout", rollout_path), ("train", train_path)]
    if serve_path is not None:
        artifacts.append(("serve", serve_path))
    for label, path in artifacts:
        per_mode = baselines.get(label)
        if per_mode is None:
            continue
        if not path.exists():
            failures.append(f"{label}: bench artifact {path} not found")
            continue
        payload = json.loads(path.read_text())
        mode = payload.get("mode", "smoke")
        baseline = per_mode.get(mode)
        if baseline is None:
            print(f"skip {label}: no {mode!r} baselines committed")
            continue
        failures.extend(check_payload(payload, baseline, tolerance, f"{label}/{mode}"))

    if failures:
        print("\nBENCH REGRESSION GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print(
            "\nIf the regression is intentional (e.g. a trade for correctness),"
            "\nlower the floors in .github/bench_baselines.json in the same PR"
            "\nand say why in the PR description."
        )
        return 1
    print("bench regression gate: all floors held")
    return 0


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rollout", type=Path, default=root / "BENCH_rollout.json")
    parser.add_argument("--train", type=Path, default=root / "BENCH_train.json")
    parser.add_argument("--serve", type=Path, default=root / "BENCH_serve.json")
    parser.add_argument(
        "--baselines", type=Path, default=root / ".github" / "bench_baselines.json"
    )
    args = parser.parse_args()
    return run(args.rollout, args.train, args.baselines, serve_path=args.serve)


if __name__ == "__main__":
    sys.exit(main())

"""Docs link checker: every relative markdown link must resolve.

Scans README.md and docs/*.md for ``[text](target)`` links and fails if a
relative target (optionally with a ``#fragment``) does not exist on disk.
External (``http``/``https``/``mailto``) links are skipped — CI must not
depend on the network.

Run from the repo root:  python .github/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
ROOT = Path(__file__).resolve().parent.parent


def check_file(path: Path) -> list[str]:
    errors = []
    for target in LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
    return errors


def main() -> int:
    files = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
    errors = []
    for path in files:
        if not path.exists():
            errors.append(f"missing documentation file: {path.relative_to(ROOT)}")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} files: {'FAIL' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The full DPR (ride-hailing) pipeline — the paper's Sec. V-C workflow.

1. Generate a synthetic multi-city world and collect logged data under the
   behaviour policy πₑ (the stand-in for DidiChuxing's historical logs).
2. Learn the simulator set Ω' (an ensemble of neural user models).
3. Diagnose extrapolation pathologies with the intervention test (Fig. 10)
   and apply F_trend.
4. Train Sim2Rec with the uncertainty penalty and F_exec (Algorithm 1).
5. Offline-test in a held-out simulator (Table IV) and A/B-test in the
   ground-truth world (Fig. 11).

Run:  python examples/dpr_pipeline.py   (takes a couple of minutes)
"""

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import Sim2RecDPRTrainer, build_sim2rec_policy, dpr_small_config
from repro.envs import (
    BehaviorPolicy,
    BehaviorPolicyConfig,
    DPRConfig,
    DPRWorld,
    collect_dpr_dataset,
)
from repro.eval import cluster_driver_responses, expected_cumulative_reward, run_ab_test
from repro.sim import SimulatedDPREnv, SimulatorLearnerConfig, build_simulator_set


def main():
    # ------------------------------------------------------------------
    # 1. World + logged data
    # ------------------------------------------------------------------
    world = DPRWorld(DPRConfig(num_cities=4, drivers_per_city=15, horizon=15, seed=2))
    dataset = collect_dpr_dataset(world, episodes=2)
    train_data, test_data = dataset.split_users(0.8, seed=0)
    print(f"logged dataset: {len(dataset)} cities, {dataset.num_transitions} transitions")

    # ------------------------------------------------------------------
    # 2. Simulator set Ω'
    # ------------------------------------------------------------------
    print("training the simulator ensemble (8 members) ...")
    ensemble = build_simulator_set(
        train_data,
        num_members=8,
        base_config=SimulatorLearnerConfig(hidden_sizes=(48, 48), epochs=40),
        seed=0,
    )
    train_ensemble, holdout = ensemble.split([6, 7])

    # ------------------------------------------------------------------
    # 3. Intervention diagnosis (Fig. 10)
    # ------------------------------------------------------------------
    clusters = cluster_driver_responses(train_ensemble, train_data.groups[0], 0)
    print(
        f"intervention test: {clusters.violating_fraction:.0%} of drivers sit in "
        f"clusters whose bonus response violates the positive-elasticity prior"
    )

    # ------------------------------------------------------------------
    # 4. Sim2Rec training (Algorithm 1)
    # ------------------------------------------------------------------
    config = dpr_small_config(seed=0)
    policy = build_sim2rec_policy(dataset.state_dim, dataset.action_dim, config)
    trainer = Sim2RecDPRTrainer(policy, train_ensemble, train_data, config)
    for gid, result in trainer.trend_results.items():
        kept = int(result.keep_mask.sum())
        print(f"  F_trend city {gid}: kept {kept}/{len(result.keep_mask)} drivers")
    trainer.pretrain_sadae(epochs=10)
    print("training Sim2Rec ...")
    for iteration in range(40):
        metrics = trainer.train_iteration()
        if iteration % 10 == 0:
            print(f"  iter {iteration:3d}  reward {metrics['reward']:6.2f}  "
                  f"shaped {metrics['shaped_reward']:6.2f}")

    # ------------------------------------------------------------------
    # 5a. Offline test in a held-out simulator (Table IV style)
    # ------------------------------------------------------------------
    act_fn = policy.as_act_fn(np.random.default_rng(0), deterministic=True)
    offline_env = SimulatedDPREnv(holdout[0], test_data.groups[0], truncate_horizon=10, seed=9)
    offline_reward = expected_cumulative_reward(offline_env, act_fn, episodes=2, gamma=0.9)
    print(f"\noffline test (held-out simulator): expected cumulative reward {offline_reward:.3f}")

    # ------------------------------------------------------------------
    # 5b. A/B test in the ground-truth world (Fig. 11 style)
    # ------------------------------------------------------------------
    def env_factory(seed):
        config_ab = DPRConfig(num_cities=4, drivers_per_city=15, horizon=11, seed=2)
        return DPRWorld(config_ab).make_city_env(1, seed=seed)

    result = run_ab_test(
        env_factory,
        lambda: BehaviorPolicy(BehaviorPolicyConfig(seed=1)),
        policy.as_act_fn(np.random.default_rng(1), deterministic=True),
        start_day=18,
        deploy_day=22,
        end_day=28,
        seed=3,
    )
    print(f"A/B test: {result.post_deploy_improvement():+.1f}% daily reward vs control "
          f"after deployment (paper's production run: +6.9%)")


if __name__ == "__main__":
    main()

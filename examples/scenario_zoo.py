"""Scenario zoo: a short Algorithm-1 run on every registered family.

Walks the scenario registry (`repro.scenarios`), builds a laptop-sized
population for each family from a pure config dict, trains a few
iterations, and evaluates the policy zero-shot in each scenario's
held-out target environment.

Run:  python examples/scenario_zoo.py
"""

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import scenario_small_config
from repro.rl import evaluate
from repro.scenarios import list_scenarios, scenario_description, trainer_from_config

# Laptop-sized overrides per family; anything unset takes the family
# defaults (print them with `python -m repro.scenarios spec <family>`).
ZOO = {
    "lts": {"family": "lts", "task": "LTS3", "num_users": 16, "horizon": 12},
    "dpr": {"family": "dpr", "num_cities": 4, "drivers_per_city": 8, "horizon": 8},
    "slate": {
        "family": "slate",
        "num_envs": 5,
        "num_users": 16,
        "horizon": 12,
        "slate_size": 3,
    },
}

ITERATIONS = 3
PRETRAIN_EPOCHS = 3


def main():
    families = list_scenarios()
    print(f"registered scenario families: {', '.join(families)}\n")
    for family in families:
        spec = ZOO.get(family, {"family": family})
        config = scenario_small_config(seed=0)
        config.scenario = dict(spec, seed=0)
        config.segments_per_iteration = 2
        print(f"=== {family}: {scenario_description(family)}")
        with trainer_from_config(config) as trainer:
            scenario = trainer.scenario
            print(
                f"    {scenario.num_train_envs} training simulators, "
                f"state_dim={scenario.state_dim}, action_dim={scenario.action_dim}"
            )
            trainer.pretrain_sadae(epochs=PRETRAIN_EPOCHS, steps_per_env=4)
            for iteration in range(ITERATIONS):
                metrics = trainer.train_iteration()
                print(f"    iter {iteration}  reward {metrics['reward']:9.3f}")
            policy = trainer.sim2rec_policy
        target = scenario.make_target_env()
        reward = evaluate(
            policy.as_act_fn(np.random.default_rng(0), deterministic=True), target
        )
        print(f"    target-env return (zero-shot): {reward:.3f}\n")


if __name__ == "__main__":
    main()

"""SADAE group identification (the paper's RQ1 at a glance).

Trains SADAE on state sets from the LTS3 simulator set, then shows that
the learned latent υ identifies the group parameter of *unseen* groups:
its first principal component orders groups by ω_g, and decoded
reconstructions match the true group distribution.

Run:  python examples/sadae_embedding.py
"""

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import collect_lts_state_sets, train_sadae
from repro.core.sadae import SADAE, SADAEConfig
from repro.envs import LTSConfig, LTSEnv, MU_C_REAL, make_lts_task
from repro.eval import PCA, gaussian_kld


def fresh_states(omega_g: float, num_users: int = 200, seed: int = 50) -> np.ndarray:
    env = LTSEnv(LTSConfig(num_users=num_users, horizon=3, omega_g=omega_g, seed=seed))
    states = [env.reset()]
    rng = np.random.default_rng(seed)
    for _ in range(2):
        step_states, _, _, _ = env.step(rng.random((num_users, 1)))
        states.append(step_states)
    return np.concatenate(states, axis=0)


def main():
    task = make_lts_task("LTS3", num_users=150, horizon=6, seed=0)
    sets = collect_lts_state_sets(task, users_per_set=150, steps_per_env=5)
    print(f"SADAE corpus: {len(sets)} state sets from {task.num_simulators} simulators")

    sadae = SADAE(
        2,
        1,
        SADAEConfig(
            latent_dim=5,
            encoder_hidden=(64, 64),
            decoder_hidden=(64, 64),
            learning_rate=1e-3,
            weight_decay=1e-4,
            state_only=True,
            seed=0,
        ),
    )
    losses = train_sadae(sadae, sets, epochs=60, rng=np.random.default_rng(0))
    print(f"ELBO loss: {losses[0]:.2f} -> {losses[-1]:.2f}")

    # Embed unseen groups — including the held-out ω_g = 0 "real world".
    probe_omegas = [-8.0, -4.0, 0.0, 4.0, 7.0]
    embeddings = np.stack([sadae.embed(fresh_states(w), None) for w in probe_omegas])
    pca = PCA(embeddings)
    projections = pca.transform(embeddings, k=1)[:, 0]

    print("\ngroup identification on unseen groups:")
    print("  omega_g   mu_c   PC1(upsilon)   decoded-vs-true KLD")
    for omega, projection in zip(probe_omegas, projections):
        upsilon = sadae.embed(fresh_states(omega), None)
        mean, std = sadae.decode_state_distribution(upsilon)
        kld = gaussian_kld(mean[1], std[1], MU_C_REAL + omega, 2.0)
        print(f"  {omega:+6.1f}  {MU_C_REAL + omega:5.1f}  {projection:+12.3f}  {kld:12.4f}")

    correlation = np.corrcoef(projections, probe_omegas)[0, 1]
    print(f"\ncorr(PC1, omega_g) = {correlation:+.3f} "
          "(the latent linearly encodes the group parameter, cf. Fig. 12)")


if __name__ == "__main__":
    main()

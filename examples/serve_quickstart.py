"""Serving quickstart: microbatched sessions, a hot swap, and parity.

Opens several concurrent user sessions against one
:class:`repro.serve.PolicyServer`, drives them through live LTS
environments with microbatched inference, hot-swaps a "freshly trained"
policy mid-stream, and finally replays one session solo to show the
serving layer's contract: every microbatched action stream is
bit-identical to serving that session alone.

Run:  python examples/serve_quickstart.py
"""

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.envs import LTSConfig, LTSEnv
from repro.rl import RecurrentActorCritic
from repro.serve import PolicyServer, ServeConfig, snapshot_policy

SESSIONS = 6
USERS = 4
STEPS = 16
SWAP_AT = 8


def make_policy(shift=0.0):
    policy = RecurrentActorCritic(
        2, 1, np.random.default_rng(0), lstm_hidden=16, head_hidden=(32,)
    )
    if shift:
        for param in policy.parameters():
            param.data = param.data + shift
    return policy


def make_envs():
    return [
        LTSEnv(LTSConfig(num_users=USERS, horizon=STEPS, omega_g=2.0 * i, seed=i))
        for i in range(SESSIONS)
    ]


def main():
    # 1. One server, one session per live environment. Session state
    #    (noise stream, previous actions, LSTM hidden state) lives
    #    server-side; clients only ship observations.
    server = PolicyServer(make_policy(), ServeConfig(max_batch_size=SESSIONS))
    envs = make_envs()
    handles = [
        server.session(num_users=USERS, seed=100 + i)
        for i in range(SESSIONS)
    ]
    observations = [env.reset() for env in envs]
    streams = [[] for _ in envs]
    rewards = np.zeros(SESSIONS)

    for t in range(STEPS):
        if t == SWAP_AT:
            # 2. Zero-downtime hot swap: a new "trained" policy is
            #    published mid-stream. In-flight batches finish on the
            #    old weights; session state carries straight across.
            version = server.swap_policy(snapshot_policy(make_policy(shift=0.02)))
            print(f"step {t}: hot-swapped serving weights -> version {version}")
        tickets = [
            handle.submit(obs) for handle, obs in zip(handles, observations)
        ]
        server.flush()  # close the microbatch window: one stacked act
        for i, ticket in enumerate(tickets):
            result = ticket.result(timeout=10.0)
            streams[i].append(result.actions)
            observations[i], reward, _, _ = envs[i].step(result.actions)
            rewards[i] += reward.mean()
    stats = server.stats()
    server.close()
    print(
        f"served {stats['requests']} requests in {stats['batches']} microbatches "
        f"(max window {stats['max_batch_rows']} rows), "
        f"mean return {rewards.mean():.2f}"
    )

    # 3. The contract: replay session 0 solo (a dedicated policy, one
    #    act per request, same swap point) — the streams must be
    #    bit-identical to what microbatched serving produced.
    policy = make_policy()
    rng = np.random.default_rng(100)
    policy.start_rollout(USERS)
    prev = np.zeros((USERS, 1))
    env = make_envs()[0]
    obs = env.reset()
    parity = True
    for t in range(STEPS):
        if t == SWAP_AT:
            state = policy.recurrent_state()
            policy.load_replica_state(make_policy(shift=0.02).replica_state())
            policy.set_recurrent_state(state)
        actions, _, _ = policy.act(obs, prev, rng)
        prev = actions
        parity &= np.array_equal(actions, streams[0][t])
        obs, _, _, _ = env.step(actions)
    print(f"microbatched == solo serving (bitwise, across the swap): {parity}")
    if not parity:
        raise SystemExit(1)


if __name__ == "__main__":
    main()

"""Gateway quickstart: TCP serving, two replicas, an A/B split, a swap.

Starts a :class:`repro.serve.Gateway` on a loopback socket in front of a
two-replica :class:`repro.serve.ReplicaSet` (a "control" and a
"candidate" policy), routes a population of users through it with
deterministic key-hashed A/B assignment, drives live LTS environments
over the wire, hot-swaps the candidate replica mid-stream, and reports
per-arm returns. Everything crosses a real socket — the wire codec
ships raw float64 bytes, so remote serving is bit-identical to
in-process serving (the parity suite in ``tests/serve/`` proves it).

Run:  python examples/gateway_quickstart.py
"""

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.envs import LTSConfig, LTSEnv
from repro.rl import RecurrentActorCritic
from repro.serve import (
    Gateway,
    GatewayClient,
    GatewayConfig,
    ReplicaSet,
    ServeConfig,
)

USERS = 64  # population routed through the A/B split
GROUP = 4   # users per session
STEPS = 12
SWAP_AT = 6


def make_policy(shift=0.0):
    policy = RecurrentActorCritic(
        2, 1, np.random.default_rng(0), lstm_hidden=16, head_hidden=(32,)
    )
    if shift:
        for param in policy.parameters():
            param.data = param.data + shift
    return policy


def main():
    # 1. Two replicas behind one gateway: the control policy takes ~75%
    #    of traffic, the candidate ~25%. Routing hashes (seed, key), so
    #    the split is reproducible — rerun this script and every user
    #    lands on the same arm.
    replicas = ReplicaSet(config=ServeConfig(max_batch_size=16), seed=7)
    replicas.add("control", make_policy(), weight=3.0)
    replicas.add("candidate", make_policy(shift=0.05), weight=1.0)

    with Gateway(replicas, GatewayConfig(max_pending=64)) as gateway:
        gateway.start()
        host, port = gateway.address
        print(f"gateway listening on {host}:{port}")

        # 2. Open one remote session per user group; the routing key is
        #    the group id. Sessions stay pinned to their arm for life.
        client = GatewayClient(gateway.address)
        sessions, envs, observations = [], [], []
        for group in range(USERS // GROUP):
            session = client.open_session(
                num_users=GROUP, seed=500 + group, key=f"group-{group}"
            )
            sessions.append(session)
            envs.append(
                LTSEnv(LTSConfig(num_users=GROUP, horizon=STEPS, seed=group))
            )
            observations.append(envs[-1].reset())
        arms = {s.replica for s in sessions}
        assert arms == {"control", "candidate"}, arms
        counts = {
            arm: sum(s.replica == arm for s in sessions) for arm in sorted(arms)
        }
        print(f"A/B assignment over {len(sessions)} sessions: {counts}")

        # 3. Drive every session over the wire; swap the candidate's
        #    weights mid-stream. Only candidate-arm sessions see the new
        #    version — the control arm is untouched.
        returns = {arm: 0.0 for arm in arms}
        for t in range(STEPS):
            if t == SWAP_AT:
                version = replicas.publish("candidate", make_policy(shift=0.1))
                print(f"step {t}: candidate hot-swapped -> version {version}")
            for i, (session, env) in enumerate(zip(sessions, envs)):
                result = session.act(observations[i], deadline_ms=10_000)
                observations[i], reward, _, _ = env.step(result.actions)
                returns[session.replica] += float(reward.mean())
        versions = {
            arm: max(s.version for s in sessions if s.replica == arm)
            for arm in sorted(arms)
        }
        assert versions["candidate"] == 2 and versions["control"] == 1, versions

        for session in sessions:
            session.end()
        stats = client.stats()
        client.close()
        print(
            f"served {stats['requests']} requests over TCP, "
            f"final versions {versions}"
        )
        for arm in sorted(returns):
            per_session = returns[arm] / counts[arm]
            print(f"  {arm:9s} mean return/session {per_session:8.2f}")


if __name__ == "__main__":
    main()

"""Zero-shot transfer comparison on LTS (a miniature of the paper's Fig. 6).

Trains DIRECT, DR-UNI, DR-OSI and Sim2Rec on the LTS2 simulator set and
compares their rewards in the unseen deployment environment, illustrating
the reality-gap problem and how much each transfer technique recovers.

Run:  python examples/lts_transfer.py
"""

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import (
    lts_single_sampler,
    lts_task_sampler,
    make_direct_trainer,
    make_dr_osi_trainer,
    make_dr_uni_trainer,
)
from repro.core import Sim2RecLTSTrainer, build_sim2rec_policy, lts_small_config
from repro.envs import make_lts_task
from repro.rl import evaluate

MLP_ITERS = 40
RECURRENT_ITERS = 25


def evaluate(task, policy) -> float:
    env = task.make_target_env(seed_offset=99)
    act_fn = policy.as_act_fn(np.random.default_rng(0), deterministic=True)
    return evaluate(act_fn, env, episodes=2)


def main():
    task = make_lts_task(
        "LTS2",
        num_users=40,
        horizon=30,
        seed=1,
        observation_noise_std=6.0,
        sensitivity_range=(0.25, 0.4),
        memory_discount_range=(0.7, 0.8),
    )
    config = lts_small_config(seed=1)
    results = {}

    print("training DIRECT (one wrong simulator, no gap handling) ...")
    direct = make_direct_trainer(2, 1, lts_single_sampler(task, 0), config)
    direct.train(MLP_ITERS)
    results["DIRECT"] = evaluate(task, direct.policy)

    print("training DR-UNI (domain randomization, unified policy) ...")
    dr_uni = make_dr_uni_trainer(2, 1, lts_task_sampler(task), config)
    dr_uni.train(MLP_ITERS)
    results["DR-UNI"] = evaluate(task, dr_uni.policy)

    print("training DR-OSI (LSTM extractor, per-user identification) ...")
    dr_osi = make_dr_osi_trainer(2, 1, lts_task_sampler(task), config)
    dr_osi.train(RECURRENT_ITERS)
    results["DR-OSI"] = evaluate(task, dr_osi.policy)

    print("training Sim2Rec (SADAE group embedding + LSTM extractor) ...")
    policy = build_sim2rec_policy(2, 1, config)
    sim2rec = Sim2RecLTSTrainer(policy, task, config)
    sim2rec.pretrain_sadae(epochs=20, users_per_set=40)
    sim2rec.train(RECURRENT_ITERS)
    results["Sim2Rec"] = evaluate(task, policy)

    print("\nzero-shot rewards in the unseen environment (higher is better):")
    for name in ("Sim2Rec", "DR-OSI", "DR-UNI", "DIRECT"):
        print(f"  {name:8s} {results[name]:8.1f}")
    degradation = 100 * (results["Sim2Rec"] - results["DIRECT"]) / results["Sim2Rec"]
    print(f"\nDIRECT loses {degradation:.0f}% of Sim2Rec's reward to the reality gap.")


if __name__ == "__main__":
    main()

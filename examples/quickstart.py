"""Quickstart: train a Sim2Rec policy on LTS and transfer it zero-shot.

Builds the LTS3 task (training simulators whose group parameter is at
least 4 away from the deployment environment), pretrains SADAE on the
simulator set, runs a short Algorithm 1 loop, and evaluates the policy in
the unseen target environment ω* = [0, 0].

Run:  python examples/quickstart.py
"""

import numpy as np

try:
    import repro.core  # noqa: F401  (probe a submodule so foreign 'repro' dists don't shadow the checkout)
except ImportError:  # running from a checkout: fall back to the src/ layout
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import Sim2RecLTSTrainer, build_sim2rec_policy, lts_small_config
from repro.envs import make_lts_task
from repro.rl import evaluate


def main():
    # 1. The transfer task: a set of gapped training simulators + the
    #    unseen target environment (the "real world").
    task = make_lts_task(
        "LTS3",
        num_users=40,
        horizon=30,
        seed=0,
        observation_noise_std=6.0,
        sensitivity_range=(0.25, 0.4),      # time-compressed SAT dynamics
        memory_discount_range=(0.7, 0.8),
    )
    print(f"task {task.name}: {task.num_simulators} training simulators, "
          f"group gaps {task.train_omega_gs}")

    # 2. Assemble SADAE + extractor + context-aware policy from the config.
    config = lts_small_config(seed=0)
    policy = build_sim2rec_policy(
        state_dim=2, action_dim=1, config=config
    )

    # 3. Algorithm 1: pretrain SADAE, then joint PPO + ELBO training.
    trainer = Sim2RecLTSTrainer(policy, task, config)
    losses = trainer.pretrain_sadae(epochs=20, users_per_set=40)
    print(f"SADAE pretraining loss: {losses[0]:.2f} -> {losses[-1]:.2f}")

    for iteration in range(25):
        metrics = trainer.train_iteration()
        if iteration % 5 == 0:
            print(f"iter {iteration:3d}  simulator reward {metrics['reward']:7.1f}")

    # 4. Zero-shot deployment to the unseen environment.
    target = task.make_target_env()
    act_fn = policy.as_act_fn(np.random.default_rng(0), deterministic=True)
    reward = evaluate(act_fn, target, episodes=2)
    print(f"\nzero-shot reward in the unseen target environment: {reward:.1f}")

    # Reference points: the best and worst constant policies.
    from repro.envs import oracle_constant_policy_return

    grid = np.linspace(0, 1, 21)
    oracle = [oracle_constant_policy_return(target, a) for a in grid]
    print(f"best constant policy:  {max(oracle):.1f} (a={grid[int(np.argmax(oracle))]:.2f})")
    print(f"worst constant policy: {min(oracle):.1f}")


if __name__ == "__main__":
    main()

"""Observation / action space descriptions."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class Box:
    """A bounded continuous space of a fixed shape."""

    def __init__(self, low, high, shape: Optional[Tuple[int, ...]] = None):
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        if shape is not None:
            low = np.broadcast_to(low, shape).copy()
            high = np.broadcast_to(high, shape).copy()
        if low.shape != high.shape:
            raise ValueError("low and high must have the same shape")
        if np.any(low > high):
            raise ValueError("low must be elementwise <= high")
        self.low = low
        self.high = high
        self.shape = low.shape

    @property
    def dim(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def contains(self, value) -> bool:
        value = np.asarray(value, dtype=np.float64)
        if value.shape != self.shape:
            return False
        return bool(np.all(value >= self.low) and np.all(value <= self.high))

    def clip(self, value) -> np.ndarray:
        return np.clip(np.asarray(value, dtype=np.float64), self.low, self.high)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"Box(low={self.low!r}, high={self.high!r})"


class Discrete:
    """A finite space {0, 1, ..., n-1}."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.shape: Tuple[int, ...] = ()

    @property
    def dim(self) -> int:
        return 1

    def contains(self, value) -> bool:
        value = np.asarray(value)
        return bool(value.shape == () and 0 <= int(value) < self.n)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.n))

    def __repr__(self) -> str:
        return f"Discrete({self.n})"

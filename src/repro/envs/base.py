"""Environment interface for multi-user sequential recommendation.

Unlike single-agent RL environments, an SRS environment serves a *group* of
users simultaneously (Sec. III of the paper): one step advances every user by
one recommendation round. States, actions, rewards and dones are therefore
vectorised over the user axis.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from .spaces import Box


class MultiUserEnv:
    """Base class for vectorised multi-user environments.

    Subclasses must set :attr:`observation_space`, :attr:`action_space`,
    :attr:`num_users` and :attr:`horizon`, and implement :meth:`reset` and
    :meth:`step`. Shapes:

    - ``reset() -> states``  with shape ``[num_users, obs_dim]``
    - ``step(actions[num_users, act_dim]) -> (states, rewards, dones, info)``
      with rewards/dones of shape ``[num_users]``.
    """

    observation_space: Box
    action_space: Box
    num_users: int
    horizon: int
    group_id: Any = None

    @property
    def observation_dim(self) -> int:
        return self.observation_space.dim

    @property
    def action_dim(self) -> int:
        return self.action_space.dim

    def reset(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:  # pragma: no cover
        raise NotImplementedError

    def _validate_actions(self, actions: np.ndarray) -> np.ndarray:
        actions = np.asarray(actions, dtype=np.float64)
        if actions.ndim == 1:
            actions = actions[:, None]
        expected = (self.num_users, self.action_dim)
        if actions.shape != expected:
            raise ValueError(f"actions shape {actions.shape} != expected {expected}")
        return actions


def evaluate_policy(
    env: MultiUserEnv,
    act_fn,
    episodes: int = 1,
    gamma: float = 1.0,
) -> float:
    """Average (optionally discounted) per-user return of ``act_fn`` on ``env``.

    ``act_fn(states, t)`` must return actions ``[num_users, act_dim]``. A new
    episode calls ``reset()`` and, when the callable has a ``reset`` method
    (recurrent policies), resets its internal state too.

    ``env`` may be a :class:`~repro.rl.vec.VecEnvPool`: pools expose the
    same step/reset interface over the stacked user axis, and their block
    structure (``group_slices``) is forwarded to group-aware policies so
    per-city context never mixes cities.
    """
    group_slices = getattr(env, "group_slices", None)
    forward_groups = group_slices is not None and hasattr(act_fn, "set_rollout_groups")
    total = 0.0
    for _ in range(episodes):
        if hasattr(act_fn, "reset"):
            act_fn.reset(env.num_users)
        if forward_groups:
            act_fn.set_rollout_groups(group_slices)
        states = env.reset()
        returns = np.zeros(env.num_users)
        discount = 1.0
        for t in range(env.horizon):
            actions = act_fn(states, t)
            states, rewards, dones, _ = env.step(actions)
            returns += discount * rewards
            discount *= gamma
            if np.all(dones):
                break
        total += float(returns.mean())
    if forward_groups:
        act_fn.set_rollout_groups(None)  # don't leak block structure
    return total / episodes

"""Environment interface for multi-user sequential recommendation.

Unlike single-agent RL environments, an SRS environment serves a *group* of
users simultaneously (Sec. III of the paper): one step advances every user by
one recommendation round. States, actions, rewards and dones are therefore
vectorised over the user axis.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from .spaces import Box


class MultiUserEnv:
    """Base class for vectorised multi-user environments.

    Subclasses must set :attr:`observation_space`, :attr:`action_space`,
    :attr:`num_users` and :attr:`horizon`, and implement :meth:`reset` and
    :meth:`step`. Shapes:

    - ``reset() -> states``  with shape ``[num_users, obs_dim]``
    - ``step(actions[num_users, act_dim]) -> (states, rewards, dones, info)``
      with rewards/dones of shape ``[num_users]``.
    """

    observation_space: Box
    action_space: Box
    num_users: int
    horizon: int
    group_id: Any = None

    @property
    def observation_dim(self) -> int:
        return self.observation_space.dim

    @property
    def action_dim(self) -> int:
        return self.action_space.dim

    def reset(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:  # pragma: no cover
        raise NotImplementedError

    def _validate_actions(self, actions: np.ndarray) -> np.ndarray:
        actions = np.asarray(actions, dtype=np.float64)
        if actions.ndim == 1:
            actions = actions[:, None]
        expected = (self.num_users, self.action_dim)
        if actions.shape != expected:
            raise ValueError(f"actions shape {actions.shape} != expected {expected}")
        return actions


def evaluate_policy(
    env: MultiUserEnv,
    act_fn,
    episodes: int = 1,
    gamma: float = 1.0,
) -> float:
    """Deprecated alias for :func:`repro.rl.evaluate` (callable-protocol path).

    Average (optionally discounted) per-user return of ``act_fn`` on
    ``env``, as a scalar over the whole user axis — even when ``env`` is
    a :class:`~repro.rl.vec.VecEnvPool`. Use
    ``repro.rl.evaluate(act_fn, env, episodes=..., gamma=...)`` instead;
    results are bit-identical (the alias delegates to the same kernel).
    """
    import warnings

    warnings.warn(
        "repro.envs.evaluate_policy is deprecated; use "
        "repro.rl.evaluate(act_fn, env, ...) — the unified evaluation "
        "front door (bit-identical results)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..rl.evaluate import _solo_eval

    return _solo_eval(env, act_fn, episodes=episodes, gamma=gamma)

"""The long-term satisfaction (Choc/Kale) environment from Google RecSim.

Re-implementation of the synthetic dynamics described in Sec. V-B1 of the
Sim2Rec paper. A recommender sends content with a clickbaitiness score
``a ∈ [0, 1]`` to each user; engagement is drawn from

    engagement_t ~ N(μ_t, σ_t²)
    μ_t = (a μ_c + (1 - a) μ_k) · SAT_t
    σ_t = a σ_c + (1 - a) σ_k

where SAT is the long-term satisfaction driven by net positive exposure:

    NPE_t = γ_n NPE_{t-1} - 2 (a_t - 0.5)
    SAT_t = sigmoid(h_s · NPE_t)

High clickbaitiness (``a → 1``, "Choc") yields large immediate engagement
(μ_c > μ_k) but erodes satisfaction; low clickbaitiness ("Kale") builds
satisfaction at the cost of immediate engagement. The observed state per user
is ``[SAT_t, o]`` with ``o ~ N(μ_c, 4)`` a noisy group observation; the
user feedback ``y`` is SAT_{t+1}.

Environment parameters follow the paper's construction:

    u = [σ_c, σ_k, h_s, γ_n, μ_k]  (user features)
    g = [μ_c]                      (group feature)
    F_ωu(u) = [σ_c, σ_k, h_s, γ_n, μ_k,r + ω_u]
    F_ωg(g) = [μ_c,r + ω_g],   μ_c,r = 14,  μ_k,r = 4

so a simulator variant is identified by ω = [ω_u, ω_g] and the "real"
deployment environment is ω* = [0, 0].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..utils.seeding import make_rng
from .base import MultiUserEnv
from .spaces import Box

MU_C_REAL = 14.0
MU_K_REAL = 4.0


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class LTSConfig:
    """Static configuration of an LTS environment instance."""

    num_users: int = 100
    horizon: int = 140
    omega_g: float = 0.0
    omega_u: float = 0.0  # scalar shift, or use omega_u_range for per-user draws
    omega_u_range: Optional[float] = None  # β: draw ω_u ~ U(-β, β) per user
    sigma_c: float = 1.0
    sigma_k: float = 1.0
    sensitivity_low: float = 0.05  # h_s ~ U(low, high)
    sensitivity_high: float = 0.15
    memory_discount_low: float = 0.85  # γ_n ~ U(low, high)
    memory_discount_high: float = 0.95
    observation_noise_std: float = 2.0  # std of o ~ N(μ_c, 4)
    seed: Optional[int] = None

    @property
    def mu_c(self) -> float:
        return MU_C_REAL + self.omega_g

    @property
    def mu_k(self) -> float:
        return MU_K_REAL + self.omega_u


class LTSEnv(MultiUserEnv):
    """Multi-user long-term satisfaction environment.

    All users in one instance share the group parameter μ_c (and hence
    ``omega_g``); user-level heterogeneity comes from h_s, γ_n draws and the
    optional per-user ω_u shift of μ_k.
    """

    STATE_DIM = 2  # [SAT_t, o]

    def __init__(self, config: LTSConfig):
        self.config = config
        self.num_users = config.num_users
        self.horizon = config.horizon
        self.group_id = float(config.omega_g)
        self.observation_space = Box(
            low=np.array([0.0, -np.inf]), high=np.array([1.0, np.inf])
        )
        self.action_space = Box(low=np.array([0.0]), high=np.array([1.0]))
        self._rng = make_rng(config.seed)
        self._init_users()
        self._t = 0
        self._npe: np.ndarray = np.zeros(self.num_users)
        self._sat: np.ndarray = np.full(self.num_users, 0.5)

    def _init_users(self) -> None:
        cfg = self.config
        n = self.num_users
        self.sensitivity = self._rng.uniform(cfg.sensitivity_low, cfg.sensitivity_high, n)
        self.memory_discount = self._rng.uniform(
            cfg.memory_discount_low, cfg.memory_discount_high, n
        )
        if cfg.omega_u_range is not None:
            omega_u = self._rng.uniform(-cfg.omega_u_range, cfg.omega_u_range, n)
        else:
            omega_u = np.full(n, cfg.omega_u)
        self.mu_k_users = MU_K_REAL + omega_u
        self.mu_c = cfg.mu_c

    def resample_user_gaps(self) -> None:
        """Redraw per-user ω_u (the "unlimited-user simulators" setting of Fig. 7)."""
        cfg = self.config
        if cfg.omega_u_range is None:
            return
        omega_u = self._rng.uniform(-cfg.omega_u_range, cfg.omega_u_range, self.num_users)
        self.mu_k_users = MU_K_REAL + omega_u

    # ------------------------------------------------------------------
    def _observe(self) -> np.ndarray:
        noise = self._rng.normal(0.0, self.config.observation_noise_std, self.num_users)
        return np.stack([self._sat, self.mu_c + noise], axis=1)

    def reset(self) -> np.ndarray:
        self._t = 0
        self._npe = np.zeros(self.num_users)
        self._sat = _sigmoid(self.sensitivity * self._npe)
        return self._observe()

    def step(self, actions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        actions = self._validate_actions(actions)
        a = np.clip(actions[:, 0], 0.0, 1.0)
        cfg = self.config

        mu_t = (a * self.mu_c + (1.0 - a) * self.mu_k_users) * self._sat
        sigma_t = a * cfg.sigma_c + (1.0 - a) * cfg.sigma_k
        engagement = self._rng.normal(mu_t, np.maximum(sigma_t, 1e-8))

        self._npe = self.memory_discount * self._npe - 2.0 * (a - 0.5)
        self._sat = _sigmoid(self.sensitivity * self._npe)
        self._t += 1

        states = self._observe()
        rewards = engagement
        dones = np.full(self.num_users, self._t >= self.horizon)
        info = {
            "engagement_mean": mu_t,
            "sat": self._sat.copy(),
            "npe": self._npe.copy(),
            "t": self._t,
        }
        return states, rewards, dones, info

    # ------------------------------------------------------------------
    def expected_engagement(self, a: np.ndarray, sat: np.ndarray) -> np.ndarray:
        """E[engagement | a, SAT] — exposed for oracle computations in tests."""
        a = np.clip(np.asarray(a, dtype=np.float64), 0.0, 1.0)
        return (a * self.mu_c + (1.0 - a) * self.mu_k_users) * sat

    @classmethod
    def make_batch_stepper(cls, envs: List["LTSEnv"], slices: List[slice]):
        """Block-diagonal stepper for a VecEnvPool of homogeneous LTS envs.

        The counterpart of :meth:`repro.envs.dpr.DPRCityEnv.make_batch_stepper`
        for the LTS world: member groups may differ in every environment
        parameter (ω_g, ω_u, σ_c/σ_k, sensitivity draws, ...) because the
        stepper stacks them to per-user rows, but they must all be plain
        :class:`LTSEnv` instances sharing one horizon so the whole batch
        terminates simultaneously (the pool contract for native steppers).
        Returns None otherwise; the pool then falls back to per-env
        stepping.
        """
        if len(envs) < 2:
            return None
        if any(type(env) is not LTSEnv for env in envs):
            return None
        if len({env.horizon for env in envs}) != 1:
            return None
        return _LTSBatchStepper(envs, slices)


class _LTSBatchStepper:
    """Block-diagonal reset/step for a homogeneous list of :class:`LTSEnv`.

    All satisfaction dynamics (NPE recursion, SAT sigmoid, engagement
    means) run once over the stacked user axis; only the random draws —
    per-step engagement noise and the group observation noise — loop over
    member envs, each consuming that env's own generator with exactly the
    shapes and order of the sequential :meth:`LTSEnv.step` /
    :meth:`LTSEnv._observe`, so every number and every env's RNG stream
    is bit-identical to stepping the envs one by one.

    Member envs' mutable episode state (``_npe``, ``_sat``, ``_t``) is
    *not* written back while the stepper drives a pool; their RNGs do
    advance, so a later ``env.reset()`` is fully consistent with the
    sequential path. Per-user parameters are re-read on every
    :meth:`reset` so ``resample_user_gaps`` between episodes is honoured.
    """

    def __init__(self, envs: List["LTSEnv"], slices: List[slice]):
        self.envs = envs
        self.slices = slices
        self.total = slices[-1].stop
        self.horizon = envs[0].horizon
        # Per-user rows of the per-env scalars; refreshed in reset().
        self.sigma_c = np.empty(self.total)
        self.sigma_k = np.empty(self.total)
        self.mu_c = np.empty(self.total)
        self.sensitivity = np.empty(self.total)
        self.memory_discount = np.empty(self.total)
        self.mu_k_users = np.empty(self.total)
        self._npe = np.zeros(self.total)
        self._sat = np.full(self.total, 0.5)
        self._t = 0

    def _refresh_parameters(self) -> None:
        for env, block in zip(self.envs, self.slices):
            self.sigma_c[block] = env.config.sigma_c
            self.sigma_k[block] = env.config.sigma_k
            self.mu_c[block] = env.mu_c
            self.sensitivity[block] = env.sensitivity
            self.memory_discount[block] = env.memory_discount
            self.mu_k_users[block] = env.mu_k_users

    def _observe(self) -> np.ndarray:
        noise = np.empty(self.total)
        for env, block in zip(self.envs, self.slices):
            # Same draw, same order as LTSEnv._observe, per-env stream.
            noise[block] = env._rng.normal(
                0.0, env.config.observation_noise_std, env.num_users
            )
        return np.stack([self._sat, self.mu_c + noise], axis=1)

    def reset(self) -> np.ndarray:
        self._refresh_parameters()
        self._t = 0
        self._npe = np.zeros(self.total)
        self._sat = _sigmoid(self.sensitivity * self._npe)
        return self._observe()

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        a = np.clip(actions[:, 0], 0.0, 1.0)

        mu_t = (a * self.mu_c + (1.0 - a) * self.mu_k_users) * self._sat
        sigma_t = np.maximum(a * self.sigma_c + (1.0 - a) * self.sigma_k, 1e-8)
        engagement = np.empty(self.total)
        for env, block in zip(self.envs, self.slices):
            engagement[block] = env._rng.normal(mu_t[block], sigma_t[block])

        self._npe = self.memory_discount * self._npe - 2.0 * (a - 0.5)
        self._sat = _sigmoid(self.sensitivity * self._npe)
        self._t += 1

        states = self._observe()
        dones = np.full(self.total, self._t >= self.horizon)
        infos: List[Dict[str, Any]] = []
        for block in self.slices:
            infos.append(
                {
                    "engagement_mean": mu_t[block],
                    "sat": self._sat[block].copy(),
                    "npe": self._npe[block].copy(),
                    "t": self._t,
                }
            )
        return states, engagement, dones, infos


def oracle_constant_policy_return(
    env: LTSEnv, a: float, gamma: float = 1.0
) -> float:
    """Expected (discounted) per-user return of the constant policy a_t = a.

    Used by tests and the Upper Bound computation: with a constant action the
    NPE recursion has the closed form
    ``NPE_t = -2 (a - 0.5) (1 - γ_n^t) / (1 - γ_n)``.
    """
    n = env.num_users
    npe = np.zeros(n)
    sat = _sigmoid(env.sensitivity * npe)
    total = np.zeros(n)
    discount = 1.0
    for _ in range(env.horizon):
        mu_t = (a * env.mu_c + (1.0 - a) * env.mu_k_users) * sat
        total += discount * mu_t
        npe = env.memory_discount * npe - 2.0 * (a - 0.5)
        sat = _sigmoid(env.sensitivity * npe)
        discount *= gamma
    return float(total.mean())

"""The long-term satisfaction (Choc/Kale) environment from Google RecSim.

Re-implementation of the synthetic dynamics described in Sec. V-B1 of the
Sim2Rec paper. A recommender sends content with a clickbaitiness score
``a ∈ [0, 1]`` to each user; engagement is drawn from

    engagement_t ~ N(μ_t, σ_t²)
    μ_t = (a μ_c + (1 - a) μ_k) · SAT_t
    σ_t = a σ_c + (1 - a) σ_k

where SAT is the long-term satisfaction driven by net positive exposure:

    NPE_t = γ_n NPE_{t-1} - 2 (a_t - 0.5)
    SAT_t = sigmoid(h_s · NPE_t)

High clickbaitiness (``a → 1``, "Choc") yields large immediate engagement
(μ_c > μ_k) but erodes satisfaction; low clickbaitiness ("Kale") builds
satisfaction at the cost of immediate engagement. The observed state per user
is ``[SAT_t, o]`` with ``o ~ N(μ_c, 4)`` a noisy group observation; the
user feedback ``y`` is SAT_{t+1}.

Environment parameters follow the paper's construction:

    u = [σ_c, σ_k, h_s, γ_n, μ_k]  (user features)
    g = [μ_c]                      (group feature)
    F_ωu(u) = [σ_c, σ_k, h_s, γ_n, μ_k,r + ω_u]
    F_ωg(g) = [μ_c,r + ω_g],   μ_c,r = 14,  μ_k,r = 4

so a simulator variant is identified by ω = [ω_u, ω_g] and the "real"
deployment environment is ω* = [0, 0].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..utils.seeding import make_rng
from .base import MultiUserEnv
from .spaces import Box

MU_C_REAL = 14.0
MU_K_REAL = 4.0


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class LTSConfig:
    """Static configuration of an LTS environment instance."""

    num_users: int = 100
    horizon: int = 140
    omega_g: float = 0.0
    omega_u: float = 0.0  # scalar shift, or use omega_u_range for per-user draws
    omega_u_range: Optional[float] = None  # β: draw ω_u ~ U(-β, β) per user
    sigma_c: float = 1.0
    sigma_k: float = 1.0
    sensitivity_low: float = 0.05  # h_s ~ U(low, high)
    sensitivity_high: float = 0.15
    memory_discount_low: float = 0.85  # γ_n ~ U(low, high)
    memory_discount_high: float = 0.95
    observation_noise_std: float = 2.0  # std of o ~ N(μ_c, 4)
    seed: Optional[int] = None

    @property
    def mu_c(self) -> float:
        return MU_C_REAL + self.omega_g

    @property
    def mu_k(self) -> float:
        return MU_K_REAL + self.omega_u


class LTSEnv(MultiUserEnv):
    """Multi-user long-term satisfaction environment.

    All users in one instance share the group parameter μ_c (and hence
    ``omega_g``); user-level heterogeneity comes from h_s, γ_n draws and the
    optional per-user ω_u shift of μ_k.
    """

    STATE_DIM = 2  # [SAT_t, o]

    def __init__(self, config: LTSConfig):
        self.config = config
        self.num_users = config.num_users
        self.horizon = config.horizon
        self.group_id = float(config.omega_g)
        self.observation_space = Box(
            low=np.array([0.0, -np.inf]), high=np.array([1.0, np.inf])
        )
        self.action_space = Box(low=np.array([0.0]), high=np.array([1.0]))
        self._rng = make_rng(config.seed)
        self._init_users()
        self._t = 0
        self._npe: np.ndarray = np.zeros(self.num_users)
        self._sat: np.ndarray = np.full(self.num_users, 0.5)

    def _init_users(self) -> None:
        cfg = self.config
        n = self.num_users
        self.sensitivity = self._rng.uniform(cfg.sensitivity_low, cfg.sensitivity_high, n)
        self.memory_discount = self._rng.uniform(
            cfg.memory_discount_low, cfg.memory_discount_high, n
        )
        if cfg.omega_u_range is not None:
            omega_u = self._rng.uniform(-cfg.omega_u_range, cfg.omega_u_range, n)
        else:
            omega_u = np.full(n, cfg.omega_u)
        self.mu_k_users = MU_K_REAL + omega_u
        self.mu_c = cfg.mu_c

    def resample_user_gaps(self) -> None:
        """Redraw per-user ω_u (the "unlimited-user simulators" setting of Fig. 7)."""
        cfg = self.config
        if cfg.omega_u_range is None:
            return
        omega_u = self._rng.uniform(-cfg.omega_u_range, cfg.omega_u_range, self.num_users)
        self.mu_k_users = MU_K_REAL + omega_u

    # ------------------------------------------------------------------
    def _observe(self) -> np.ndarray:
        noise = self._rng.normal(0.0, self.config.observation_noise_std, self.num_users)
        return np.stack([self._sat, self.mu_c + noise], axis=1)

    def reset(self) -> np.ndarray:
        self._t = 0
        self._npe = np.zeros(self.num_users)
        self._sat = _sigmoid(self.sensitivity * self._npe)
        return self._observe()

    def step(self, actions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        actions = self._validate_actions(actions)
        a = np.clip(actions[:, 0], 0.0, 1.0)
        cfg = self.config

        mu_t = (a * self.mu_c + (1.0 - a) * self.mu_k_users) * self._sat
        sigma_t = a * cfg.sigma_c + (1.0 - a) * cfg.sigma_k
        engagement = self._rng.normal(mu_t, np.maximum(sigma_t, 1e-8))

        self._npe = self.memory_discount * self._npe - 2.0 * (a - 0.5)
        self._sat = _sigmoid(self.sensitivity * self._npe)
        self._t += 1

        states = self._observe()
        rewards = engagement
        dones = np.full(self.num_users, self._t >= self.horizon)
        info = {
            "engagement_mean": mu_t,
            "sat": self._sat.copy(),
            "npe": self._npe.copy(),
            "t": self._t,
        }
        return states, rewards, dones, info

    # ------------------------------------------------------------------
    def expected_engagement(self, a: np.ndarray, sat: np.ndarray) -> np.ndarray:
        """E[engagement | a, SAT] — exposed for oracle computations in tests."""
        a = np.clip(np.asarray(a, dtype=np.float64), 0.0, 1.0)
        return (a * self.mu_c + (1.0 - a) * self.mu_k_users) * sat


def oracle_constant_policy_return(
    env: LTSEnv, a: float, gamma: float = 1.0
) -> float:
    """Expected (discounted) per-user return of the constant policy a_t = a.

    Used by tests and the Upper Bound computation: with a constant action the
    NPE recursion has the closed form
    ``NPE_t = -2 (a - 0.5) (1 - γ_n^t) / (1 - γ_n)``.
    """
    n = env.num_users
    npe = np.zeros(n)
    sat = _sigmoid(env.sensitivity * npe)
    total = np.zeros(n)
    discount = 1.0
    for _ in range(env.horizon):
        mu_t = (a * env.mu_c + (1.0 - a) * env.mu_k_users) * sat
        total += discount * mu_t
        npe = env.memory_discount * npe - 2.0 * (a - 0.5)
        sat = _sigmoid(env.sensitivity * npe)
        discount *= gamma
    return float(total.mean())

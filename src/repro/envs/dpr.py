"""Driver Program Recommendation (DPR) — a synthetic ride-hailing world.

This is the substitute for the proprietary DidiChuxing platform of
Sec. V-C. It models:

- **Cities (groups)** with demand scales spanning orders of magnitude —
  the paper's "group-behaviour differences": a driver's order volume
  depends on the city's passenger base independent of their persona.
- **Drivers (users)** with heterogeneous personas: task-difficulty
  tolerance, bonus elasticity and base activity.
- **Programs (actions)**: ``a = [difficulty, bonus] ∈ [0, 1]²`` — a task
  for the driver plus the platform's expense when completed.
- **Long-term engagement dynamics**: completing programs raises a latent
  engagement level E_t; failing too-hard tasks erodes it. Since orders
  scale with E_t, myopically pushing hard tasks or skimping on bonuses
  hurts cumulative orders — the LTE structure the paper optimises.

Feedback ``y = [orders, online_hours, completed]``; per-step reward is
``orders - α₁ · cost`` with ``cost = bonus · orders · COST_RATE`` (the
expense of the program; α₁ plays the GMV-per-order trade-off role).

The state layout (Sec. III-A) is produced by :class:`DPRFeaturizer`, which
is shared verbatim with the learned-simulator wrapper
(:mod:`repro.sim.env_wrapper`) so the simulated transition process
P_{M,τr} constructs states exactly like the real world does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..utils.seeding import make_rng
from .base import MultiUserEnv
from .spaces import Box

COST_RATE = 0.5  # fraction of an order's value paid out per unit bonus
FEEDBACK_DIM = 3  # [orders, online_hours, completed]
HISTORY_DAYS = 14


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class DPRConfig:
    """World-generation parameters."""

    num_cities: int = 5
    drivers_per_city: int = 50
    horizon: int = 30
    alpha1: float = 1.0  # cost trade-off (average GMV per order)
    demand_scale_low: float = 0.5
    demand_scale_high: float = 4.0
    engagement_min: float = 0.1
    engagement_max: float = 2.0
    seed: Optional[int] = None


@dataclass
class CityProfile:
    """Static group-level ground truth."""

    city_id: int
    demand_scale: float
    city_size: float  # an observable proxy correlated with demand

    def group_features(self) -> np.ndarray:
        return np.array([np.log(self.demand_scale), self.city_size])


@dataclass
class DriverPersona:
    """Static user-level ground truth (never observed directly)."""

    tolerance: float        # max task difficulty comfortably completed
    bonus_elasticity: float  # marginal orders per unit bonus
    base_activity: float    # baseline order productivity
    base_hours: float       # baseline online hours

    def observable_profile(self, rng: np.random.Generator) -> np.ndarray:
        """Noisy static profile features (the s^user block)."""
        return np.array(
            [
                self.base_activity + rng.normal(0, 0.1),
                self.tolerance + rng.normal(0, 0.15),
                self.bonus_elasticity + rng.normal(0, 0.15),
                self.base_hours + rng.normal(0, 0.2),
            ]
        )


class DPRFeaturizer:
    """Builds the observed state from static features + feedback history.

    Layout (indices exposed via :attr:`slices`):

    - ``user`` (4): static noisy persona proxies
    - ``hist`` (3): yesterday's orders, online hours, completed flag
    - ``stat`` (2): mean orders over the last 7 and 14 days
    - ``group`` (2): log demand level, city size
    - ``time`` (2): day-of-week sin/cos
    """

    USER_DIM, HIST_DIM, STAT_DIM, GROUP_DIM, TIME_DIM = 4, 3, 2, 2, 2

    def __init__(self):
        dims = {
            "user": self.USER_DIM,
            "hist": self.HIST_DIM,
            "stat": self.STAT_DIM,
            "group": self.GROUP_DIM,
            "time": self.TIME_DIM,
        }
        self.slices: Dict[str, slice] = {}
        offset = 0
        for key, dim in dims.items():
            self.slices[key] = slice(offset, offset + dim)
            offset += dim
        self.state_dim = offset

    def time_features(self, t: int) -> np.ndarray:
        phase = 2.0 * np.pi * (t % 7) / 7.0
        return np.array([np.sin(phase), np.cos(phase)])

    def build_states(
        self,
        user_static: np.ndarray,      # [N, USER_DIM]
        group_static: np.ndarray,     # [GROUP_DIM]
        t: int,
        order_history: np.ndarray,    # [N, HISTORY_DAYS], most recent last
        last_feedback: np.ndarray,    # [N, FEEDBACK_DIM]
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Assemble the state matrix; ``out`` lets hot paths reuse a buffer.

        ``out`` must not alias any of the inputs except through copies —
        slice writes happen block by block.
        """
        n = user_static.shape[0]
        if out is None:
            out = np.empty((n, self.state_dim))
        slices = self.slices
        out[:, slices["user"]] = user_static
        out[:, slices["hist"]] = last_feedback
        stat = out[:, slices["stat"]]
        stat[:, 0] = order_history[:, -7:].mean(axis=1)
        stat[:, 1] = order_history.mean(axis=1)
        out[:, slices["group"]] = group_static
        out[:, slices["time"]] = self.time_features(t)
        return out


class GroundTruthResponse:
    """The real user-feedback model E(y | s, a, F_u(u), F_g(g)).

    Vectorised over drivers. Kept separate from the env so tests can query
    counterfactual responses directly. ``demand_scale`` and the engagement
    bounds are stored as broadcastable attributes (scalars for one city,
    per-driver arrays after :meth:`from_stacked`), so the same formulas
    serve both the single-city env and the block-diagonal batch stepper.
    """

    def __init__(
        self,
        personas: List[DriverPersona],
        city: CityProfile,
        config: DPRConfig,
    ):
        self.city = city
        self.config = config
        # One pass over the persona list instead of four.
        traits = np.array(
            [
                (p.tolerance, p.bonus_elasticity, p.base_activity, p.base_hours)
                for p in personas
            ]
        ).reshape(-1, 4)
        self.tolerance = np.ascontiguousarray(traits[:, 0])
        self.bonus_elasticity = np.ascontiguousarray(traits[:, 1])
        self.base_activity = np.ascontiguousarray(traits[:, 2])
        self.base_hours = np.ascontiguousarray(traits[:, 3])
        self.demand_scale = city.demand_scale
        self.engagement_min = config.engagement_min
        self.engagement_max = config.engagement_max

    @classmethod
    def from_stacked(
        cls, responses: List["GroundTruthResponse"], slices: List[slice]
    ) -> "GroundTruthResponse":
        """Stack several cities' responses on the driver axis.

        The result answers the same formulas for the whole stacked batch;
        the per-city scalars become per-driver rows.
        """
        total = slices[-1].stop
        stacked = cls.__new__(cls)
        stacked.city = None
        stacked.config = None
        for name in ("tolerance", "bonus_elasticity", "base_activity", "base_hours"):
            rows = np.empty(total)
            for response, block in zip(responses, slices):
                rows[block] = getattr(response, name)
            setattr(stacked, name, rows)
        for name in ("demand_scale", "engagement_min", "engagement_max"):
            rows = np.empty(total)
            for response, block in zip(responses, slices):
                rows[block] = getattr(response, name)
            setattr(stacked, name, rows)
        return stacked

    def completion_probability(self, difficulty: np.ndarray, bonus: np.ndarray) -> np.ndarray:
        return _sigmoid(6.0 * (self.tolerance - difficulty) + 1.5 * bonus)

    def expected_orders(
        self, engagement: np.ndarray, difficulty: np.ndarray, bonus: np.ndarray, completed: np.ndarray
    ) -> np.ndarray:
        productivity = (
            self.base_activity
            + 1.2 * completed * difficulty
            + 0.8 * self.bonus_elasticity * bonus
        )
        return self.demand_scale * engagement * productivity

    def orders_noise_std(self, orders_mean: np.ndarray) -> np.ndarray:
        return 0.3 * np.sqrt(np.maximum(orders_mean, 0.1)) + 0.1

    def sample_feedback(
        self,
        engagement: np.ndarray,
        difficulty: np.ndarray,
        bonus: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Returns (feedback [N, 3], completed [N])."""
        p_complete = self.completion_probability(difficulty, bonus)
        completed = (rng.random(p_complete.shape) < p_complete).astype(np.float64)
        orders_mean = self.expected_orders(engagement, difficulty, bonus, completed)
        orders = np.maximum(
            0.0, rng.normal(orders_mean, self.orders_noise_std(orders_mean))
        )
        hours = np.maximum(0.0, self.base_hours * engagement + rng.normal(0, 0.3, orders.shape))
        feedback = np.stack([orders, hours, completed], axis=1)
        return feedback, completed

    def engagement_update(
        self, engagement: np.ndarray, difficulty: np.ndarray, completed: np.ndarray
    ) -> np.ndarray:
        delta = 0.08 * completed - 0.05 * (1.0 - completed) * difficulty - 0.01
        return np.clip(engagement + delta, self.engagement_min, self.engagement_max)


class DPRCityEnv(MultiUserEnv):
    """One city's drivers as a multi-user environment (a group g)."""

    def __init__(
        self,
        city: CityProfile,
        personas: List[DriverPersona],
        config: DPRConfig,
        seed: Optional[int] = None,
    ):
        self.city = city
        self.config = config
        self.personas = personas
        self.num_users = len(personas)
        self.horizon = config.horizon
        self.group_id = city.city_id
        self.featurizer = DPRFeaturizer()
        self.observation_space = Box(
            low=np.full(self.featurizer.state_dim, -np.inf),
            high=np.full(self.featurizer.state_dim, np.inf),
        )
        self.action_space = Box(low=np.zeros(2), high=np.ones(2))
        self._rng = make_rng(seed if seed is not None else config.seed)
        self.response = GroundTruthResponse(personas, city, config)
        self.user_static = np.stack(
            [p.observable_profile(self._rng) for p in personas]
        )
        self.group_static = city.group_features()
        self._engagement: np.ndarray = np.ones(self.num_users)
        self._order_history: np.ndarray = np.zeros((self.num_users, HISTORY_DAYS))
        self._last_feedback: np.ndarray = np.zeros((self.num_users, FEEDBACK_DIM))
        self._state_out: np.ndarray = np.empty((self.num_users, self.featurizer.state_dim))
        self._t = 0

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        response = self.response
        self._engagement = np.clip(
            response.base_activity + self._rng.normal(0, 0.05, self.num_users),
            self.config.engagement_min,
            self.config.engagement_max,
        )
        # Seed history with persona-consistent typical days.
        typical = self.city.demand_scale * self._engagement * response.base_activity
        noise = self._rng.normal(0, 0.1, (self.num_users, HISTORY_DAYS))
        self._order_history = np.maximum(0.0, typical[:, None] * (1.0 + noise))
        typical_hours = response.base_hours * self._engagement
        self._last_feedback = np.stack(
            [self._order_history[:, -1], typical_hours, np.ones(self.num_users)], axis=1
        )
        self._t = 0
        return self._build_states()

    def _build_states(self) -> np.ndarray:
        # Assembled into a reused scratch buffer; callers get a fresh copy.
        return self.featurizer.build_states(
            self.user_static,
            self.group_static,
            self._t,
            self._order_history,
            self._last_feedback,
            out=self._state_out,
        ).copy()

    def step(self, actions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        actions = self._validate_actions(actions)
        difficulty = np.clip(actions[:, 0], 0.0, 1.0)
        bonus = np.clip(actions[:, 1], 0.0, 1.0)

        feedback, completed = self.response.sample_feedback(
            self._engagement, difficulty, bonus, self._rng
        )
        orders = feedback[:, 0]
        cost = COST_RATE * bonus * orders
        rewards = orders - self.config.alpha1 * cost

        self._engagement = self.response.engagement_update(
            self._engagement, difficulty, completed
        )
        self._order_history = np.roll(self._order_history, -1, axis=1)
        self._order_history[:, -1] = orders
        self._last_feedback = feedback
        self._t += 1

        states = self._build_states()
        dones = np.full(self.num_users, self._t >= self.horizon)
        info = {
            "orders": orders,
            "cost": cost,
            "completed": completed,
            "engagement": self._engagement.copy(),
            "t": self._t,
        }
        return states, rewards, dones, info

    @classmethod
    def make_batch_stepper(cls, envs: List["DPRCityEnv"], slices: List[slice]):
        """Block-diagonal stepper for a VecEnvPool of homogeneous city envs.

        Returns None when batching is not applicable (mixed env types or
        horizons); the pool then falls back to per-env stepping.
        """
        if len(envs) < 2:
            return None
        if any(type(env) is not DPRCityEnv for env in envs):
            return None
        if len({env.horizon for env in envs}) != 1:
            return None
        return _DPRCityBatchStepper(envs, slices)


class _DPRCityBatchStepper:
    """Block-diagonal reset/step for a homogeneous list of :class:`DPRCityEnv`.

    All per-step arithmetic (completion probabilities, order/hour models,
    engagement updates, history rolls, state assembly) runs once over the
    stacked user axis; only the random draws loop over cities, each from
    that city's own generator, so every number — and every env's RNG
    stream — is bit-identical to stepping the envs one by one.

    While a stepper drives a pool, the member envs' mutable episode state
    (``_engagement`` etc.) is *not* written back; their RNGs do advance,
    so a later ``env.reset()`` is fully consistent with the sequential
    path.
    """

    def __init__(self, envs: List["DPRCityEnv"], slices: List[slice]):
        self.envs = envs
        self.slices = slices
        self.total = slices[-1].stop
        self.horizon = envs[0].horizon
        self.featurizer = envs[0].featurizer
        # One response object answering the shared formulas for the whole
        # stacked batch — the model constants live only in
        # GroundTruthResponse.
        self.response = GroundTruthResponse.from_stacked(
            [e.response for e in envs], slices
        )
        self.alpha1 = np.empty(self.total)
        for env, block in zip(envs, slices):
            self.alpha1[block] = env.config.alpha1
        self.user_static = np.concatenate([e.user_static for e in envs], axis=0)
        self.group_static = np.concatenate(
            [np.tile(e.group_static, (e.num_users, 1)) for e in envs], axis=0
        )
        self._engagement = np.ones(self.total)
        self._order_history = np.zeros((self.total, HISTORY_DAYS))
        self._last_feedback = np.zeros((self.total, FEEDBACK_DIM))
        self._state_out = np.empty((self.total, self.featurizer.state_dim))
        self._t = 0

    # ------------------------------------------------------------------
    def _build_states(self) -> np.ndarray:
        return self.featurizer.build_states(
            self.user_static,
            self.group_static,
            self._t,
            self._order_history,
            self._last_feedback,
            out=self._state_out,
        ).copy()

    def reset(self) -> np.ndarray:
        response = self.response
        eng_noise = np.empty(self.total)
        hist_noise = np.empty((self.total, HISTORY_DAYS))
        for env, block in zip(self.envs, self.slices):
            # Same draws, same order as DPRCityEnv.reset, per-city stream.
            eng_noise[block] = env._rng.normal(0, 0.05, env.num_users)
            hist_noise[block] = env._rng.normal(0, 0.1, (env.num_users, HISTORY_DAYS))
        self._engagement = np.clip(
            response.base_activity + eng_noise,
            response.engagement_min,
            response.engagement_max,
        )
        typical = response.demand_scale * self._engagement * response.base_activity
        self._order_history = np.maximum(0.0, typical[:, None] * (1.0 + hist_noise))
        typical_hours = response.base_hours * self._engagement
        self._last_feedback = np.stack(
            [self._order_history[:, -1], typical_hours, np.ones(self.total)], axis=1
        )
        self._t = 0
        return self._build_states()

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        response = self.response
        difficulty = np.clip(actions[:, 0], 0.0, 1.0)
        bonus = np.clip(actions[:, 1], 0.0, 1.0)

        # GroundTruthResponse.sample_feedback, with the draws split per
        # city stream (each block consumes completed → orders → hours in
        # the same order as the sequential env).
        p_complete = response.completion_probability(difficulty, bonus)
        completed = np.empty(self.total)
        for env, block in zip(self.envs, self.slices):
            completed[block] = (
                env._rng.random(env.num_users) < p_complete[block]
            ).astype(np.float64)
        orders_mean = response.expected_orders(
            self._engagement, difficulty, bonus, completed
        )
        orders_std = response.orders_noise_std(orders_mean)
        orders = np.empty(self.total)
        hours_noise = np.empty(self.total)
        for env, block in zip(self.envs, self.slices):
            orders[block] = env._rng.normal(orders_mean[block], orders_std[block])
            hours_noise[block] = env._rng.normal(0, 0.3, env.num_users)
        orders = np.maximum(0.0, orders)
        hours = np.maximum(0.0, response.base_hours * self._engagement + hours_noise)
        feedback = np.stack([orders, hours, completed], axis=1)

        cost = COST_RATE * bonus * orders
        rewards = orders - self.alpha1 * cost

        self._engagement = response.engagement_update(
            self._engagement, difficulty, completed
        )
        self._order_history = np.roll(self._order_history, -1, axis=1)
        self._order_history[:, -1] = orders
        self._last_feedback = feedback
        self._t += 1

        states = self._build_states()
        dones = np.full(self.total, self._t >= self.horizon)
        infos: List[Dict[str, Any]] = []
        for block in self.slices:
            infos.append(
                {
                    "orders": orders[block].copy(),
                    "cost": cost[block].copy(),
                    "completed": completed[block].copy(),
                    "engagement": self._engagement[block].copy(),
                    "t": self._t,
                }
            )
        return states, rewards, dones, infos


class DPRWorld:
    """The full multi-city world: generates cities, drivers and env instances."""

    def __init__(self, config: DPRConfig):
        self.config = config
        rng = make_rng(config.seed)
        self._rng = rng
        self.cities: List[CityProfile] = []
        self.personas: List[List[DriverPersona]] = []
        # Demand scales spread geometrically so cities differ in magnitude.
        scales = np.geomspace(
            config.demand_scale_low, config.demand_scale_high, config.num_cities
        )
        for city_id in range(config.num_cities):
            size = float(np.log(scales[city_id]) + rng.normal(0, 0.1))
            self.cities.append(
                CityProfile(city_id=city_id, demand_scale=float(scales[city_id]), city_size=size)
            )
            drivers = [
                DriverPersona(
                    tolerance=float(rng.uniform(0.25, 0.85)),
                    bonus_elasticity=float(rng.uniform(0.2, 1.5)),
                    base_activity=float(rng.uniform(0.6, 1.4)),
                    base_hours=float(rng.uniform(4.0, 10.0)),
                )
                for _ in range(config.drivers_per_city)
            ]
            self.personas.append(drivers)

    @property
    def num_cities(self) -> int:
        return self.config.num_cities

    def make_city_env(self, city_index: int, seed: Optional[int] = None) -> DPRCityEnv:
        if seed is None:
            base = self.config.seed or 0
            seed = base + 10_000 + city_index
        return DPRCityEnv(
            self.cities[city_index],
            self.personas[city_index],
            self.config,
            seed=seed,
        )

    def make_all_city_envs(self, seed_offset: int = 0) -> List[DPRCityEnv]:
        return [
            self.make_city_env(i, seed=(self.config.seed or 0) + 10_000 + i + seed_offset)
            for i in range(self.num_cities)
        ]

"""Environments: the LTS, DPR and SlateRec world families.

Families are also registered declaratively in :mod:`repro.scenarios`;
``make_scenario({"family": ...})`` builds whole populations from config
dicts.
"""

from .base import MultiUserEnv, evaluate_policy
from .dpr import (
    COST_RATE,
    CityProfile,
    DPRCityEnv,
    DPRConfig,
    DPRFeaturizer,
    DPRWorld,
    DriverPersona,
    FEEDBACK_DIM,
    GroundTruthResponse,
    HISTORY_DAYS,
)
from .dpr_logging import (
    BehaviorPolicy,
    BehaviorPolicyConfig,
    collect_city_log,
    collect_dpr_dataset,
)
from .lts import LTSConfig, LTSEnv, MU_C_REAL, MU_K_REAL, oracle_constant_policy_return
from .lts_tasks import LTSTask, admissible_omega_g, make_lts_task
from .slate import MU_CLICK_REAL, MU_KALE_REAL, SlateConfig, SlateRecEnv
from .spaces import Box, Discrete

__all__ = [
    "BehaviorPolicy",
    "BehaviorPolicyConfig",
    "Box",
    "COST_RATE",
    "CityProfile",
    "DPRCityEnv",
    "DPRConfig",
    "DPRFeaturizer",
    "DPRWorld",
    "Discrete",
    "DriverPersona",
    "FEEDBACK_DIM",
    "GroundTruthResponse",
    "HISTORY_DAYS",
    "LTSConfig",
    "LTSEnv",
    "LTSTask",
    "MU_CLICK_REAL",
    "MU_C_REAL",
    "MU_KALE_REAL",
    "MU_K_REAL",
    "MultiUserEnv",
    "SlateConfig",
    "SlateRecEnv",
    "admissible_omega_g",
    "collect_city_log",
    "collect_dpr_dataset",
    "evaluate_policy",
    "make_lts_task",
    "oracle_constant_policy_return",
]

"""Environments: the LTS synthetic world and the DPR ride-hailing world."""

from .base import MultiUserEnv, evaluate_policy
from .dpr import (
    COST_RATE,
    CityProfile,
    DPRCityEnv,
    DPRConfig,
    DPRFeaturizer,
    DPRWorld,
    DriverPersona,
    FEEDBACK_DIM,
    GroundTruthResponse,
    HISTORY_DAYS,
)
from .dpr_logging import (
    BehaviorPolicy,
    BehaviorPolicyConfig,
    collect_city_log,
    collect_dpr_dataset,
)
from .lts import LTSConfig, LTSEnv, MU_C_REAL, MU_K_REAL, oracle_constant_policy_return
from .lts_tasks import LTSTask, admissible_omega_g, make_lts_task
from .spaces import Box, Discrete

__all__ = [
    "BehaviorPolicy",
    "BehaviorPolicyConfig",
    "Box",
    "COST_RATE",
    "CityProfile",
    "DPRCityEnv",
    "DPRConfig",
    "DPRFeaturizer",
    "DPRWorld",
    "Discrete",
    "DriverPersona",
    "FEEDBACK_DIM",
    "GroundTruthResponse",
    "HISTORY_DAYS",
    "LTSConfig",
    "LTSEnv",
    "LTSTask",
    "MU_C_REAL",
    "MU_K_REAL",
    "MultiUserEnv",
    "admissible_omega_g",
    "collect_city_log",
    "collect_dpr_dataset",
    "evaluate_policy",
    "make_lts_task",
    "oracle_constant_policy_return",
]

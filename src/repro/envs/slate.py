"""SlateRec — a RecSim-style slate recommendation world with churn.

The third first-class environment family (after LTS and DPR), covering
the scenario axes the RecSim line of work defines (Zhao et al., "Toward
Simulating Environments in RL Based Recommendations"; the Choc/Kale
interest-evolution tutorial environment): **slate choice models**,
**interest evolution**, **boredom/novelty dynamics** and **stochastic
churn/return** as the long-term engagement signal.

Each step the recommender presents every user a K-item slate; an item is
described by one attribute ``a ∈ [0, 1]`` (its clickbaitiness — the same
Choc/Kale axis as the LTS world), so the action is the slate's attribute
vector ``[K]`` per user. The user picks at most one item through a
multinomial-logit choice model over the K items plus a no-click option:

    z_k   = (appeal · match_k + click_pull · a_k − b · familiar_k) / temp
    z_∅   = null_utility / temp
    p     = softmax([z_1 .. z_K, z_∅])

where ``match_k = 1 − |a_k − ι|`` scores the item against the user's
*interest centre* ι, ``familiar_k = 1 − |a_k − m|`` scores it against the
recent-consumption memory m, and b is the user's *boredom* level — a
bored user discounts items similar to what they recently consumed
(novelty seeking).

Consuming an item a* evolves the latent user state:

    ι  ← ι + λ_ι (a* − ι)                    (interest drifts toward content)
    m  ← m + λ_m (a* − m)                    (recency memory)
    b  ← δ_b b + g_b · familiar(a*)          (boredom builds on repetition)
    NPE ← γ NPE − 2 (a* − 0.5)               (net positive exposure, as in LTS)
    SAT = sigmoid(h · NPE − w_b · b)         (satisfaction, eroded by boredom)

Engagement (the per-step reward) mirrors the LTS construction —
``engagement ~ N((a* μ_c + (1−a*) μ_k) · SAT, σ)`` for the clicked item,
0 otherwise — and **churn** makes engagement long-term: an active user
leaves with probability ``churn_base · (1 − SAT)`` per step, a churned
user contributes nothing until they stochastically return. Myopically
clickbaity slates buy engagement now, erode SAT, and lose the user.

Environment parameters follow the LTS convention so transfer tasks and
SADAE identification carry over: the group parameter μ_c is shifted by
ω_g per environment, the per-user μ_k by ω_u (scalar or ~U(−β, β)), and
the observation carries a noisy group channel ``o ~ N(μ_c, σ_o²)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..utils.seeding import make_rng
from .base import MultiUserEnv
from .spaces import Box

MU_CLICK_REAL = 10.0  # μ_c,r: engagement scale of fully clickbaity content
MU_KALE_REAL = 4.0    # μ_k,r: engagement scale of fully nutritious content


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class SlateConfig:
    """Static configuration of a SlateRec environment instance."""

    num_users: int = 50
    horizon: int = 30
    slate_size: int = 5
    omega_g: float = 0.0
    omega_u: float = 0.0  # scalar shift, or use omega_u_range for per-user draws
    omega_u_range: Optional[float] = None  # β: draw ω_u ~ U(−β, β) per user
    # choice model
    temperature: float = 0.4
    null_utility: float = 0.3
    appeal: float = 1.0            # weight of the interest-match term
    click_pull: float = 0.6        # direct pull of clickbaity items
    # interest evolution / boredom
    interest_low: float = 0.2      # ι₀ ~ U(low, high) per user
    interest_high: float = 0.8
    interest_lr: float = 0.05      # λ_ι
    recency_lr: float = 0.5        # λ_m
    boredom_decay: float = 0.8     # δ_b
    boredom_gain: float = 0.4      # g_b
    boredom_weight: float = 1.5    # w_b (SAT erosion per unit boredom)
    # engagement + satisfaction (LTS-style)
    sigma_engagement: float = 1.0
    sensitivity_low: float = 0.05  # h ~ U(low, high)
    sensitivity_high: float = 0.15
    memory_discount_low: float = 0.85  # γ ~ U(low, high)
    memory_discount_high: float = 0.95
    # churn / return
    churn_base: float = 0.08
    return_prob: float = 0.2
    observation_noise_std: float = 2.0  # std of o ~ N(μ_c, σ_o²)
    seed: Optional[int] = None

    @property
    def mu_click(self) -> float:
        return MU_CLICK_REAL + self.omega_g

    @property
    def mu_kale(self) -> float:
        return MU_KALE_REAL + self.omega_u

    def validate(self) -> None:
        if self.num_users < 1:
            raise ValueError(
                f"SlateConfig.num_users must be >= 1, got {self.num_users}"
            )
        if self.horizon < 1:
            raise ValueError(f"SlateConfig.horizon must be >= 1, got {self.horizon}")
        if self.slate_size < 1:
            raise ValueError(
                f"SlateConfig.slate_size must be >= 1, got {self.slate_size}"
            )


class SlateRecEnv(MultiUserEnv):
    """Multi-user slate recommendation environment (one group).

    Users in one instance share the group parameter μ_c (hence ω_g);
    user-level heterogeneity comes from the h, γ, ι₀ draws and the
    optional per-user ω_u shift of μ_k. The observed state per user is
    ``[SAT, active, m, o]`` with ``o ~ N(μ_c, σ_o²)`` the noisy group
    observation; interest ι and boredom b stay latent.
    """

    STATE_DIM = 4  # [SAT, active, m, o]

    def __init__(self, config: SlateConfig):
        config.validate()
        self.config = config
        self.num_users = config.num_users
        self.horizon = config.horizon
        self.group_id = float(config.omega_g)
        self.observation_space = Box(
            low=np.array([0.0, 0.0, 0.0, -np.inf]),
            high=np.array([1.0, 1.0, 1.0, np.inf]),
        )
        k = config.slate_size
        self.action_space = Box(low=np.zeros(k), high=np.ones(k))
        self._rng = make_rng(config.seed)
        self._init_users()
        self._t = 0
        self._reset_mutable_state()

    def _init_users(self) -> None:
        cfg = self.config
        n = self.num_users
        self.sensitivity = self._rng.uniform(cfg.sensitivity_low, cfg.sensitivity_high, n)
        self.memory_discount = self._rng.uniform(
            cfg.memory_discount_low, cfg.memory_discount_high, n
        )
        self.interest0 = self._rng.uniform(cfg.interest_low, cfg.interest_high, n)
        if cfg.omega_u_range is not None:
            omega_u = self._rng.uniform(-cfg.omega_u_range, cfg.omega_u_range, n)
        else:
            omega_u = np.full(n, cfg.omega_u)
        self.mu_kale_users = MU_KALE_REAL + omega_u
        self.mu_click = cfg.mu_click

    def resample_user_gaps(self) -> None:
        """Redraw per-user ω_u (the unlimited-user simulators setting)."""
        cfg = self.config
        if cfg.omega_u_range is None:
            return
        omega_u = self._rng.uniform(-cfg.omega_u_range, cfg.omega_u_range, self.num_users)
        self.mu_kale_users = MU_KALE_REAL + omega_u

    def _reset_mutable_state(self) -> None:
        n = self.num_users
        self._npe = np.zeros(n)
        self._boredom = np.zeros(n)
        self._interest = self.interest0.copy()
        self._recent = self.interest0.copy()
        self._active = np.ones(n)
        self._sat = _sigmoid(self.sensitivity * self._npe)

    # ------------------------------------------------------------------
    def _observe(self) -> np.ndarray:
        noise = self._rng.normal(0.0, self.config.observation_noise_std, self.num_users)
        return np.stack(
            [self._sat, self._active, self._recent, self.mu_click + noise], axis=1
        )

    def reset(self) -> np.ndarray:
        self._t = 0
        self._reset_mutable_state()
        return self._observe()

    def step(self, actions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, Any]]:
        actions = self._validate_actions(actions)
        slates = np.clip(actions, 0.0, 1.0)  # [n, K]
        cfg = self.config

        choice_draw = self._rng.random(self.num_users)
        engagement_noise = self._rng.standard_normal(self.num_users)
        churn_draw = self._rng.random(self.num_users)

        chosen, clicked = _choose_items(
            slates,
            self._interest,
            self._recent,
            self._boredom,
            self._active,
            cfg,
            choice_draw,
        )
        mu_t = (chosen * self.mu_click + (1.0 - chosen) * self.mu_kale_users) * self._sat
        engagement = clicked * np.maximum(
            0.0, mu_t + cfg.sigma_engagement * engagement_noise
        )

        (
            self._npe,
            self._sat,
            self._boredom,
            self._interest,
            self._recent,
            self._active,
        ) = _update_users(
            chosen,
            clicked,
            self._npe,
            self._boredom,
            self._interest,
            self._recent,
            self._active,
            self.sensitivity,
            self.memory_discount,
            cfg,
            churn_draw,
        )
        self._t += 1

        states = self._observe()
        rewards = engagement
        dones = np.full(self.num_users, self._t >= self.horizon)
        info = {
            "engagement_mean": mu_t * clicked,
            "sat": self._sat.copy(),
            "boredom": self._boredom.copy(),
            "active": self._active.copy(),
            "clicked": clicked,
            "t": self._t,
        }
        return states, rewards, dones, info

    # ------------------------------------------------------------------
    def choice_probabilities(self, slates: np.ndarray) -> np.ndarray:
        """MNL probabilities [n, K+1] (last column: no click) at the
        current latent state — exposed for oracle computations in tests."""
        slates = np.clip(np.asarray(slates, dtype=np.float64), 0.0, 1.0)
        return _choice_probabilities(
            slates, self._interest, self._recent, self._boredom, self.config
        )

    @classmethod
    def make_batch_stepper(cls, envs: List["SlateRecEnv"], slices: List[slice]):
        """Block-diagonal stepper for a VecEnvPool of homogeneous slate envs.

        Members may differ in every environment parameter (ω_g, ω_u,
        choice-model constants, user draws, ...) but must all be plain
        :class:`SlateRecEnv` instances sharing one horizon and one slate
        size so the whole batch terminates simultaneously and stacks on
        the action axis (the pool contract for native steppers). Returns
        None otherwise; the pool then falls back to per-env stepping.
        """
        if len(envs) < 2:
            return None
        if any(type(env) is not SlateRecEnv for env in envs):
            return None
        if len({env.horizon for env in envs}) != 1:
            return None
        if len({env.config.slate_size for env in envs}) != 1:
            return None
        return _SlateBatchStepper(envs, slices)


def _choice_probabilities(
    slates: np.ndarray,
    interest: np.ndarray,
    recent: np.ndarray,
    boredom: np.ndarray,
    cfg: SlateConfig,
) -> np.ndarray:
    """Softmax over the K slate items plus the no-click option, [n, K+1].

    ``cfg`` only contributes scalars, so the same function serves one env
    and the stacked batch (per-user rows via broadcast of the scalars is
    exact: every row's arithmetic is identical either way).
    """
    match = 1.0 - np.abs(slates - interest[:, None])
    familiar = 1.0 - np.abs(slates - recent[:, None])
    scores = (
        cfg.appeal * match
        + cfg.click_pull * slates
        - boredom[:, None] * familiar
    ) / cfg.temperature
    null = np.full((slates.shape[0], 1), cfg.null_utility / cfg.temperature)
    logits = np.concatenate([scores, null], axis=1)
    logits -= logits.max(axis=1, keepdims=True)
    exp = np.exp(logits)
    return exp / exp.sum(axis=1, keepdims=True)


def _choose_items(
    slates: np.ndarray,
    interest: np.ndarray,
    recent: np.ndarray,
    boredom: np.ndarray,
    active: np.ndarray,
    cfg: SlateConfig,
    choice_draw: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One MNL choice per user: (chosen attribute [n], clicked flag [n]).

    Inactive (churned) users never click; their draw is still consumed so
    the per-env RNG stream advances identically whatever the churn state.
    """
    probs = _choice_probabilities(slates, interest, recent, boredom, cfg)
    cumulative = np.cumsum(probs, axis=1)
    index = (choice_draw[:, None] >= cumulative).sum(axis=1)  # in [0, K]
    clicked = (index < slates.shape[1]) & (active > 0.0)
    rows = np.arange(slates.shape[0])
    chosen = np.where(clicked, slates[rows, np.minimum(index, slates.shape[1] - 1)], 0.0)
    return chosen, clicked.astype(np.float64)


def _update_users(
    chosen: np.ndarray,
    clicked: np.ndarray,
    npe: np.ndarray,
    boredom: np.ndarray,
    interest: np.ndarray,
    recent: np.ndarray,
    active: np.ndarray,
    sensitivity: np.ndarray,
    memory_discount: np.ndarray,
    cfg: SlateConfig,
    churn_draw: np.ndarray,
) -> Tuple[np.ndarray, ...]:
    """Latent-state transition shared by the env and the batch stepper."""
    familiar = clicked * (1.0 - np.abs(chosen - recent))
    boredom = cfg.boredom_decay * boredom + cfg.boredom_gain * familiar
    interest = interest + cfg.interest_lr * clicked * (chosen - interest)
    recent = recent + cfg.recency_lr * clicked * (chosen - recent)
    # NPE: consumption moves it as in LTS; idle (no-click or churned)
    # users' exposure decays toward neutral — rest recovers satisfaction.
    npe = memory_discount * npe - 2.0 * clicked * (chosen - 0.5)
    sat = _sigmoid(sensitivity * npe - cfg.boredom_weight * boredom)
    # Churn/return: one uniform draw per user per step, interpreted by
    # the user's current side of the active flag.
    p_churn = cfg.churn_base * (1.0 - sat)
    leaves = (active > 0.0) & (churn_draw < p_churn)
    returns = (active <= 0.0) & (churn_draw < cfg.return_prob)
    active = np.where(leaves, 0.0, np.where(returns, 1.0, active))
    return npe, sat, boredom, interest, recent, active


class _SlateBatchStepper:
    """Block-diagonal reset/step for a homogeneous list of :class:`SlateRecEnv`.

    All choice-model and latent-state arithmetic runs once over the
    stacked user axis; only the random draws — choice, engagement noise,
    churn, and the group observation noise — loop over member envs, each
    consuming that env's own generator with exactly the shapes and order
    of the sequential :meth:`SlateRecEnv.step` / ``_observe``, so every
    number and every env's RNG stream is bit-identical to stepping the
    envs one by one.

    Member envs' mutable episode state is *not* written back while the
    stepper drives a pool; their RNGs do advance, so a later
    ``env.reset()`` is fully consistent with the sequential path.
    Per-user parameters are re-read on every :meth:`reset` so
    ``resample_user_gaps`` between episodes is honoured.
    """

    def __init__(self, envs: List["SlateRecEnv"], slices: List[slice]):
        self.envs = envs
        self.slices = slices
        self.total = slices[-1].stop
        self.horizon = envs[0].horizon
        self.slate_size = envs[0].config.slate_size
        # Per-user rows of the per-env parameters; refreshed in reset().
        self.sensitivity = np.empty(self.total)
        self.memory_discount = np.empty(self.total)
        self.mu_kale_users = np.empty(self.total)
        self.mu_click = np.empty(self.total)
        self.interest0 = np.empty(self.total)
        self._t = 0

    def _refresh_parameters(self) -> None:
        for env, block in zip(self.envs, self.slices):
            self.sensitivity[block] = env.sensitivity
            self.memory_discount[block] = env.memory_discount
            self.mu_kale_users[block] = env.mu_kale_users
            self.mu_click[block] = env.mu_click
            self.interest0[block] = env.interest0

    def _observe(self) -> np.ndarray:
        noise = np.empty(self.total)
        for env, block in zip(self.envs, self.slices):
            # Same draw, same order as SlateRecEnv._observe, per-env stream.
            noise[block] = env._rng.normal(
                0.0, env.config.observation_noise_std, env.num_users
            )
        return np.stack(
            [self._sat, self._active, self._recent, self.mu_click + noise], axis=1
        )

    def reset(self) -> np.ndarray:
        self._refresh_parameters()
        self._t = 0
        self._npe = np.zeros(self.total)
        self._boredom = np.zeros(self.total)
        self._interest = self.interest0.copy()
        self._recent = self.interest0.copy()
        self._active = np.ones(self.total)
        self._sat = _sigmoid(self.sensitivity * self._npe)
        return self._observe()

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        slates = np.clip(actions, 0.0, 1.0)

        choice_draw = np.empty(self.total)
        engagement_noise = np.empty(self.total)
        churn_draw = np.empty(self.total)
        for env, block in zip(self.envs, self.slices):
            # Same three draws, same order as SlateRecEnv.step.
            choice_draw[block] = env._rng.random(env.num_users)
            engagement_noise[block] = env._rng.standard_normal(env.num_users)
            churn_draw[block] = env._rng.random(env.num_users)

        chosen = np.empty(self.total)
        clicked = np.empty(self.total)
        mu_t = np.empty(self.total)
        engagement = np.empty(self.total)
        for env, block in zip(self.envs, self.slices):
            # The choice-model constants are per-env scalars (temperature,
            # appeal, ...), so the softmax runs per block; each block's
            # arithmetic is exactly the sequential env's.
            chosen[block], clicked[block] = _choose_items(
                slates[block],
                self._interest[block],
                self._recent[block],
                self._boredom[block],
                self._active[block],
                env.config,
                choice_draw[block],
            )
            mu_t[block] = (
                chosen[block] * self.mu_click[block]
                + (1.0 - chosen[block]) * self.mu_kale_users[block]
            ) * self._sat[block]
            engagement[block] = clicked[block] * np.maximum(
                0.0,
                mu_t[block] + env.config.sigma_engagement * engagement_noise[block],
            )
            (
                self._npe[block],
                self._sat[block],
                self._boredom[block],
                self._interest[block],
                self._recent[block],
                self._active[block],
            ) = _update_users(
                chosen[block],
                clicked[block],
                self._npe[block],
                self._boredom[block],
                self._interest[block],
                self._recent[block],
                self._active[block],
                self.sensitivity[block],
                self.memory_discount[block],
                env.config,
                churn_draw[block],
            )
        self._t += 1

        states = self._observe()
        dones = np.full(self.total, self._t >= self.horizon)
        infos: List[Dict[str, Any]] = []
        for block in self.slices:
            infos.append(
                {
                    "engagement_mean": mu_t[block] * clicked[block],
                    "sat": self._sat[block].copy(),
                    "boredom": self._boredom[block].copy(),
                    "active": self._active[block].copy(),
                    "clicked": clicked[block].copy(),
                    "t": self._t,
                }
            )
        return states, engagement, dones, infos

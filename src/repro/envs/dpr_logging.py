"""Behaviour policy πₑ and logged-data collection for DPR.

The behaviour policy is the stand-in for the historical human/heuristic
recommendation strategy on the platform: a rule-based mapping from observed
driver statistics to program parameters, with bounded exploration noise.
Its *narrow action coverage* is deliberate — learned simulators fitted on
this data exhibit exactly the extrapolation pathologies the paper's
intervention test (Fig. 10) and F_trend/F_exec filters target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..sim.dataset import GroupTrajectories, TrajectoryDataset
from ..utils.seeding import make_rng
from .dpr import DPRCityEnv, DPRFeaturizer, DPRWorld


@dataclass
class BehaviorPolicyConfig:
    """Parameters of the rule-based πₑ."""

    difficulty_center: float = 0.45
    difficulty_slope: float = 0.25   # respond to the driver's activity proxy
    bonus_center: float = 0.35
    bonus_slope: float = 0.15        # respond to recent order statistics
    noise_std: float = 0.05
    seed: Optional[int] = None


class BehaviorPolicy:
    """Rule-based πₑ: difficulty tracks activity, bonus tracks recent volume."""

    def __init__(self, config: BehaviorPolicyConfig = BehaviorPolicyConfig()):
        self.config = config
        self._rng = make_rng(config.seed)
        self._featurizer = DPRFeaturizer()

    def __call__(self, states: np.ndarray, t: int = 0) -> np.ndarray:
        cfg = self.config
        user = states[:, self._featurizer.slices["user"]]
        stat = states[:, self._featurizer.slices["stat"]]
        activity_proxy = user[:, 0]
        recent_orders = stat[:, 0]
        # Normalise recent orders within the batch so the rule adapts per city.
        scale = max(float(recent_orders.mean()), 1e-6)
        relative_volume = recent_orders / scale - 1.0
        difficulty = (
            cfg.difficulty_center
            + cfg.difficulty_slope * (activity_proxy - 1.0)
            + self._rng.normal(0, cfg.noise_std, states.shape[0])
        )
        bonus = (
            cfg.bonus_center
            - cfg.bonus_slope * relative_volume
            + self._rng.normal(0, cfg.noise_std, states.shape[0])
        )
        return np.stack([np.clip(difficulty, 0.0, 1.0), np.clip(bonus, 0.0, 1.0)], axis=1)


def collect_city_log(
    env: DPRCityEnv,
    policy: BehaviorPolicy,
    episodes: int = 1,
) -> GroupTrajectories:
    """Roll πₑ in one city and record the full trajectory tensor."""
    all_states, all_actions, all_feedback, all_rewards = [], [], [], []
    for _ in range(episodes):
        states = [env.reset()]
        actions, feedback, rewards = [], [], []
        for t in range(env.horizon):
            action = policy(states[-1], t)
            next_states, reward, dones, info = env.step(action)
            actions.append(action)
            rewards.append(reward)
            feedback.append(
                np.stack([info["orders"], env._last_feedback[:, 1], info["completed"]], axis=1)
            )
            states.append(next_states)
            if np.all(dones):
                break
        all_states.append(np.stack(states))
        all_actions.append(np.stack(actions))
        all_feedback.append(np.stack(feedback))
        all_rewards.append(np.stack(rewards))
    return GroupTrajectories(
        group_id=env.group_id,
        states=np.stack(all_states),
        actions=np.stack(all_actions),
        feedback=np.stack(all_feedback),
        rewards=np.stack(all_rewards),
    )


def collect_dpr_dataset(
    world: DPRWorld,
    episodes: int = 1,
    policy_config: Optional[BehaviorPolicyConfig] = None,
    seed: Optional[int] = None,
) -> TrajectoryDataset:
    """Collect the full logged dataset D across every city of ``world``."""
    base_seed = seed if seed is not None else (world.config.seed or 0)
    groups: List[GroupTrajectories] = []
    for city_index in range(world.num_cities):
        config = policy_config or BehaviorPolicyConfig()
        config = BehaviorPolicyConfig(
            difficulty_center=config.difficulty_center,
            difficulty_slope=config.difficulty_slope,
            bonus_center=config.bonus_center,
            bonus_slope=config.bonus_slope,
            noise_std=config.noise_std,
            seed=base_seed + 500 + city_index,
        )
        policy = BehaviorPolicy(config)
        env = world.make_city_env(city_index, seed=base_seed + 900 + city_index)
        groups.append(collect_city_log(env, policy, episodes=episodes))
    return TrajectoryDataset(groups)

"""Task constructors for the LTS transfer experiments (Sec. V-B1).

Each task provides a *training simulator set* — LTS environments whose group
parameter gap ω_g is at least α away from the deployment environment — plus
the target environment ω* = [0, 0]. The constraint ``6 ≤ μ_c + ω_g < 22``
keeps group means inside the paper's range; ω_g is integer-valued.

    LTS1: |ω_g| ≥ 2      LTS2: |ω_g| ≥ 3      LTS3: |ω_g| ≥ 4
    LTS3-β: as LTS3, with per-user gaps ω_u ~ U(-β, β)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .lts import LTSConfig, LTSEnv, MU_C_REAL

TASK_MIN_GAP = {"LTS1": 2, "LTS2": 3, "LTS3": 4}
MU_C_LOW, MU_C_HIGH = 6.0, 22.0


def admissible_omega_g(min_gap: int) -> List[int]:
    """Integer ω_g values allowed in the training set for a gap level."""
    values = []
    low = int(MU_C_LOW - MU_C_REAL)       # -8
    high = int(MU_C_HIGH - MU_C_REAL) - 1  # 7 (strict upper bound 22)
    for omega_g in range(low, high + 1):
        if abs(omega_g) >= min_gap:
            values.append(omega_g)
    return values


@dataclass
class LTSTask:
    """A transfer task: a set of training simulators and a target env factory."""

    name: str
    train_omega_gs: List[int]
    beta: Optional[float]
    num_users: int
    horizon: int
    seed: int
    observation_noise_std: float = 2.0
    sensitivity_range: tuple = (0.05, 0.15)
    memory_discount_range: tuple = (0.85, 0.95)

    def _validate_population(self, num_users: int) -> None:
        if num_users < 1:
            raise ValueError(
                f"LTS task {self.name!r}: num_users must be >= 1 (got "
                f"{num_users}) — an empty user population cannot be rolled out"
            )
        if not self.train_omega_gs:
            raise ValueError(
                f"LTS task {self.name!r} has an empty training simulator set"
            )

    def make_train_env(self, index: int, seed_offset: int = 0) -> LTSEnv:
        """Instantiate the ``index``-th training simulator."""
        self._validate_population(self.num_users)
        omega_g = self.train_omega_gs[index % len(self.train_omega_gs)]
        config = LTSConfig(
            num_users=self.num_users,
            horizon=self.horizon,
            omega_g=float(omega_g),
            omega_u_range=self.beta,
            observation_noise_std=self.observation_noise_std,
            sensitivity_low=self.sensitivity_range[0],
            sensitivity_high=self.sensitivity_range[1],
            memory_discount_low=self.memory_discount_range[0],
            memory_discount_high=self.memory_discount_range[1],
            seed=self.seed + 1000 * index + seed_offset,
        )
        return LTSEnv(config)

    def make_train_envs(self) -> List[LTSEnv]:
        return [self.make_train_env(i) for i in range(len(self.train_omega_gs))]

    def make_target_env(self, seed_offset: int = 0, num_users: Optional[int] = None) -> LTSEnv:
        """The deployment environment ω* = [0, 0]."""
        self._validate_population(num_users if num_users is not None else self.num_users)
        config = LTSConfig(
            num_users=num_users or self.num_users,
            horizon=self.horizon,
            omega_g=0.0,
            omega_u=0.0,
            observation_noise_std=self.observation_noise_std,
            sensitivity_low=self.sensitivity_range[0],
            sensitivity_high=self.sensitivity_range[1],
            memory_discount_low=self.memory_discount_range[0],
            memory_discount_high=self.memory_discount_range[1],
            seed=self.seed + 777 + seed_offset,
        )
        return LTSEnv(config)

    @property
    def num_simulators(self) -> int:
        return len(self.train_omega_gs)


def make_lts_task(
    name: str,
    beta: Optional[float] = None,
    num_users: int = 100,
    horizon: int = 140,
    seed: int = 0,
    observation_noise_std: float = 2.0,
    sensitivity_range: tuple = (0.05, 0.15),
    memory_discount_range: tuple = (0.85, 0.95),
) -> LTSTask:
    """Build LTS1 / LTS2 / LTS3 / LTS3-β.

    ``beta`` activates the LTS3-β variant (ω_u ~ U(-β, β) per user); the
    paper evaluates β ∈ {0, 1, 2, 4, 6, 8} on top of the LTS3 gap level.
    """
    base = name.split("-")[0].upper()
    if base not in TASK_MIN_GAP:
        raise ValueError(f"unknown LTS task {name!r}; expected LTS1/LTS2/LTS3")
    if num_users < 1:
        raise ValueError(
            f"LTS task {name!r}: num_users must be >= 1 (got {num_users})"
        )
    if beta is not None and base != "LTS3":
        raise ValueError("per-user gaps (beta) are defined for LTS3 only")
    omega_gs = admissible_omega_g(TASK_MIN_GAP[base])
    task_name = name if beta is None else f"{base}-beta{beta:g}"
    return LTSTask(
        name=task_name,
        train_omega_gs=omega_gs,
        beta=beta,
        num_users=num_users,
        horizon=horizon,
        seed=seed,
        observation_noise_std=observation_noise_std,
        sensitivity_range=sensitivity_range,
        memory_discount_range=memory_discount_range,
    )

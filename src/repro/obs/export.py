"""Exporters for registry snapshots: Prometheus text, HTTP, JSONL.

Three ways out, matching three consumers:

- :func:`to_prometheus_text` renders a snapshot in text exposition
  format 0.0.4 (the format every Prometheus scraper speaks), and
  :class:`MetricsHTTPExporter` serves it from a stdlib
  ``ThreadingHTTPServer`` at ``/metrics`` (plus the raw snapshot at
  ``/metrics.json``) — wired to ``GatewayConfig.metrics_port``.
- :class:`JSONLMetricsSink` appends one snapshot per training iteration
  to a file. Each line is a self-contained JSON record carrying a CRC32
  of its own body, written with a single ``os.write`` on an
  ``O_APPEND`` descriptor — a torn tail line (crash mid-write) is
  detected by :func:`read_metrics_jsonl` instead of corrupting the run
  history.
- The gateway wire protocol's ``stats`` op ships the raw snapshot dict;
  no code needed here beyond the snapshot being JSON-safe.
"""

from __future__ import annotations

import json
import math
import os
import threading
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

__all__ = [
    "REQUIRED_GATEWAY_SERIES",
    "to_prometheus_text",
    "parse_prometheus_text",
    "MetricsHTTPExporter",
    "JSONLMetricsSink",
    "read_metrics_jsonl",
]

# The serving catalog's must-have series: the CI metrics smoke leg
# scrapes a live gateway and fails if any of these is missing from the
# exposition (docs/observability.md documents the full catalog).
REQUIRED_GATEWAY_SERIES: Tuple[str, ...] = (
    "gateway_requests_total",
    "gateway_request_seconds",
    "gateway_pending_requests",
    "gateway_store_sessions",
    "serve_requests_total",
    "serve_batches_total",
    "serve_batch_rows",
    "serve_queue_depth",
    "serve_request_queue_wait_seconds",
    "serve_request_compute_seconds",
    "serve_sessions",
    "serve_policy_version",
)


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(snapshot: Dict[str, dict]) -> str:
    """Render a registry snapshot as Prometheus text exposition 0.0.4."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family.get("type", "untyped")
        help_text = str(family.get("help", "")).replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family.get("series", []):
            labels = series.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for edge, count in zip(series["buckets"], series["counts"]):
                    cumulative += count
                    le = _format_labels(labels, f'le="{_format_value(edge)}"')
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += series["counts"][len(series["buckets"])]
                le = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)} {_format_value(series['sum'])}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {series['count']}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(series['value'])}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse text exposition back into ``{series_name: [(labels, value)]}``.

    Minimal but strict parser used by the exposition tests and the CLI
    metrics smoke check (``python -m repro.serve --metrics-port``):
    every non-comment line must be ``name[{labels}] value``. Histogram
    sample names keep their ``_bucket``/``_sum``/``_count`` suffixes.
    Raises ``ValueError`` on any malformed line.
    """
    out: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_blob, value_part = rest.rsplit("}", 1)
            labels: Dict[str, str] = {}
            for item in _split_labels(label_blob):
                key, _, quoted = item.partition("=")
                if not (quoted.startswith('"') and quoted.endswith('"')):
                    raise ValueError(f"malformed label in line: {raw!r}")
                labels[key.strip()] = (
                    quoted[1:-1]
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
        else:
            name, _, value_part = line.partition(" ")
            labels = {}
        name = name.strip()
        value_text = value_part.strip().split()[0]
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ValueError(f"malformed value in line: {raw!r}") from exc
        if not name:
            raise ValueError(f"malformed metric name in line: {raw!r}")
        out.setdefault(name, []).append((labels, value))
    return out


def _split_labels(blob: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    items: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        items.append("".join(current))
    return [item for item in (i.strip() for i in items) if item]


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self):  # noqa: N802 - http.server API
        registry = self.server.registry  # type: ignore[attr-defined]
        if self.path in ("/metrics", "/"):
            body = to_prometheus_text(registry.snapshot()).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif self.path == "/metrics.json":
            body = json.dumps(registry.snapshot(), sort_keys=True).encode("utf-8")
            content_type = "application/json"
        elif self.path == "/healthz":
            body = b"ok\n"
            content_type = "text/plain; charset=utf-8"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # scrapes are high-frequency; stay quiet


class MetricsHTTPExporter:
    """Serve a registry over HTTP: ``/metrics`` (Prometheus text),
    ``/metrics.json`` (raw snapshot), ``/healthz``.

    ``port=0`` binds an ephemeral port; read ``address`` after
    ``start()``. ``close()`` is idempotent.
    """

    def __init__(self, registry, host: str = "127.0.0.1", port: int = 0):
        self.registry = registry
        self._host = host
        self._port = int(port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsHTTPExporter":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self._host, self._port), _MetricsHandler)
        httpd.daemon_threads = True
        httpd.registry = self.registry  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("exporter is not started")
        return self._httpd.server_address[:2]

    def close(self) -> None:
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsHTTPExporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def _record_line(record: dict) -> bytes:
    """Serialize a record with an embedded CRC32 of its own body.

    The CRC is computed over the canonical JSON of the record *without*
    the ``crc32`` field; readers recompute it the same way, so any torn
    or bit-flipped line fails validation instead of parsing as data.
    """
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    framed = dict(record)
    framed["crc32"] = crc
    return (json.dumps(framed, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


class JSONLMetricsSink:
    """Append-only JSONL metrics log with per-line CRC framing.

    Each ``append()`` is a single ``os.write`` on an ``O_APPEND``
    descriptor: concurrent writers never interleave within a line and a
    crash can only tear the final line, which the CRC catches on read.
    """

    def __init__(self, path: str):
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._lock = threading.Lock()

    def append(self, record: dict) -> None:
        if "crc32" in record:
            raise ValueError("'crc32' is reserved for the sink's own framing")
        line = _record_line(record)
        with self._lock:
            if self._fd is None:
                raise ValueError(f"sink for {self.path!r} is closed")
            os.write(self._fd, line)

    def close(self) -> None:
        with self._lock:
            fd, self._fd = self._fd, None
        if fd is not None:
            os.close(fd)

    def __enter__(self) -> "JSONLMetricsSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_metrics_jsonl(path: str, strict: bool = False) -> List[dict]:
    """Read back a sink file, validating each line's CRC.

    Invalid lines (torn tail after a crash, manual edits) are skipped —
    or raise ``ValueError`` when ``strict``. The returned records have
    the ``crc32`` framing field removed.
    """
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                framed = json.loads(line)
                crc = framed.pop("crc32")
                body = json.dumps(framed, sort_keys=True, separators=(",", ":"))
                if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
                    raise ValueError("crc mismatch")
            except (ValueError, KeyError, TypeError) as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: invalid metrics line ({exc})"
                    ) from exc
                continue
            records.append(framed)
    return records

"""Lightweight span recorder for request tracing across serving layers.

A trace id is minted (or supplied by the client) when a request enters
the :class:`~repro.serve.gateway.Gateway`, travels in-band through
``ReplicaSet`` routing into the ``PolicyServer`` microbatch queue, and
comes back in the ``act`` reply — so one id links the gateway's
end-to-end span to the per-request queue-wait and compute spans recorded
inside the replica that actually served it.

The recorder is deliberately small: a bounded ring of finished spans
under one lock. It is a debugging aid, not a metrics store — aggregate
numbers live in :class:`repro.obs.MetricsRegistry`; spans carry the
per-request "where did this one request spend its time" story.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SpanRecord", "Tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named, timed segment of a traced request."""

    name: str
    trace_id: str
    start_s: float
    duration_s: float
    tags: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Thread-safe bounded recorder of finished spans.

    ``capacity`` bounds memory: the oldest spans fall off once the ring
    is full (``stats()["dropped"]`` counts them). Trace ids are a
    per-tracer random prefix plus a monotone counter — unique without
    consulting any seeded RNG, so tracing can never perturb determinism.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)
        self._recorded = 0
        self._prefix = uuid.uuid4().hex[:12]
        self._counter = itertools.count(1)

    def new_trace_id(self) -> str:
        return f"{self._prefix}-{next(self._counter):08x}"

    def record(
        self,
        name: str,
        trace_id: str,
        start_s: float,
        duration_s: float,
        **tags: Any,
    ) -> SpanRecord:
        span = SpanRecord(
            name=str(name),
            trace_id=str(trace_id),
            start_s=float(start_s),
            duration_s=float(duration_s),
            tags=tags,
        )
        with self._lock:
            self._spans.append(span)
            self._recorded += 1
        return span

    @contextmanager
    def span(self, name: str, trace_id: Optional[str] = None, **tags: Any):
        """Time a block; yields the trace id (minted if not given)."""
        tid = trace_id or self.new_trace_id()
        start = time.perf_counter()
        try:
            yield tid
        finally:
            self.record(name, tid, start, time.perf_counter() - start, **tags)

    def spans(
        self, trace_id: Optional[str] = None, name: Optional[str] = None
    ) -> List[SpanRecord]:
        """Retained spans, oldest first, optionally filtered."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def stats(self) -> Dict[str, int]:
        with self._lock:
            retained = len(self._spans)
            recorded = self._recorded
        return {
            "recorded": recorded,
            "retained": retained,
            "dropped": recorded - retained,
        }

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

"""Cross-stack observability: metrics registry, tracing, exporters.

Stdlib-only and determinism-neutral by construction — attaching a
registry or tracer to the trainer, the rollout pool, or the serving
stack never touches RNG state or changes any computed result (the
bit-parity proof lives in ``tests/obs/test_train_metrics.py``).

- :class:`MetricsRegistry` — labeled counters / gauges / fixed-bucket
  histograms with per-family locks.
- :class:`Tracer` — bounded span recorder; trace ids ride the gateway
  wire protocol end to end.
- Exporters — Prometheus text over HTTP, JSONL training sink, and the
  raw snapshot on the gateway ``stats`` op.

See ``docs/observability.md`` for the metric catalog and conventions.
"""

from repro.obs.registry import (
    BATCH_ROWS_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_S,
    PHASE_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    quantile_from_buckets,
)
from repro.obs.tracing import SpanRecord, Tracer
from repro.obs.export import (
    JSONLMetricsSink,
    MetricsHTTPExporter,
    REQUIRED_GATEWAY_SERIES,
    parse_prometheus_text,
    read_metrics_jsonl,
    to_prometheus_text,
)

__all__ = [
    "BATCH_ROWS_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_S",
    "PHASE_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "quantile_from_buckets",
    "SpanRecord",
    "Tracer",
    "JSONLMetricsSink",
    "MetricsHTTPExporter",
    "REQUIRED_GATEWAY_SERIES",
    "parse_prometheus_text",
    "read_metrics_jsonl",
    "to_prometheus_text",
]

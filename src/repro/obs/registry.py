"""Thread-safe metrics registry: labeled counters, gauges, histograms.

Stdlib-only instrumentation substrate for the serving gateway, the
sharded rollout workers, and the trainer. Design constraints, in order:

- **Zero impact on determinism.** Nothing in here touches RNG state or
  feeds back into computation; recording a sample is arithmetic on
  plain Python numbers guarded by a lock. The bit-parity grid must be
  unchanged whether or not a registry is attached (proven by
  ``tests/obs/test_train_metrics.py``).
- **Hot-path increments don't contend across metrics.** Each metric
  family owns its own ``threading.Lock``; the registry-level lock is
  taken only to create families and to walk them for a snapshot. Bound
  children (``family.labels(...)``) are cached so the hot path is one
  dict-free lock/add/release.
- **Deterministic snapshots.** Histogram bucket edges are fixed at
  registration (never rebalanced), and ``snapshot()`` emits families
  and series in sorted order so two snapshots of identical state are
  identical JSON.

The snapshot format is a plain nested dict (JSON-safe scalars only) —
the gateway ships it over the wire ``stats`` op verbatim, the
Prometheus exporter renders it to text exposition, and the JSONL sink
appends it per training iteration (see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "MetricError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_S",
    "BATCH_ROWS_BUCKETS",
    "PHASE_SECONDS_BUCKETS",
    "quantile_from_buckets",
]


class MetricError(ValueError):
    """Raised on metric misuse: type/label mismatches, bad bucket edges."""


# Sub-millisecond through 10s: covers microbatch queue waits (typically
# <10ms) and end-to-end gateway latencies under deadline pressure.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Powers of two up to the largest supported microbatch.
BATCH_ROWS_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

# Training phases run longer than serve requests: stretch to minutes.
PHASE_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def _validate_labels(
    label_names: Tuple[str, ...], label_values: Tuple[str, ...]
) -> Tuple[str, ...]:
    if len(label_values) != len(label_names):
        raise MetricError(
            f"expected {len(label_names)} label value(s) for {label_names!r}, "
            f"got {len(label_values)}"
        )
    return tuple(str(v) for v in label_values)


class _Family:
    """Base class: one named metric with N label-keyed series.

    A single lock guards every series in the family — coarse enough to
    make ``snapshot()`` of the family internally consistent, fine
    enough that unrelated metrics never contend with each other.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]):
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(str(n) for n in label_names)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], object] = {}

    def _new_child(self, key: Tuple[str, ...]):
        raise NotImplementedError

    def labels(self, *label_values):
        """Return the bound child for these label values (get-or-create)."""
        key = _validate_labels(self.label_names, label_values)
        with self._lock:
            child = self._series.get(key)
            if child is None:
                child = self._new_child(key)
                self._series[key] = child
            return child

    def _snapshot_series(self) -> List[dict]:
        raise NotImplementedError

    def snapshot(self) -> dict:
        with self._lock:
            series = self._snapshot_series()
        series.sort(key=lambda s: tuple(s["labels"].get(n, "") for n in self.label_names))
        return {
            "type": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": series,
        }


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a gauge to decrement")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Family):
    """Monotonically increasing count (requests served, failures, ...)."""

    kind = "counter"

    def _new_child(self, key):
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        """Shorthand for unlabeled counters."""
        self.labels().inc(amount)

    @property
    def value(self) -> float:
        return self.labels().value

    def _snapshot_series(self):
        return [
            {"labels": dict(zip(self.label_names, key)), "value": child._value}
            for key, child in self._series.items()
        ]


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water marks like queue peaks)."""
        value = float(value)
        with self._lock:
            if value > self._value:
                self._value = value

    def set_function(self, fn: Callable[[], float]) -> None:
        """Sample ``fn()`` at snapshot time instead of a stored value.

        ``fn`` must not call back into the same registry (it runs under
        the family lock) — keep it to an O(1) read like ``len(queue)``.
        """
        with self._lock:
            self._fn = fn

    def _read(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return math.nan
        return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._read()


class Gauge(_Family):
    """Point-in-time value that can go up or down (queue depth, lag)."""

    kind = "gauge"

    def _new_child(self, key):
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self.labels().set_function(fn)

    @property
    def value(self) -> float:
        return self.labels().value

    def _snapshot_series(self):
        return [
            {"labels": dict(zip(self.label_names, key)), "value": child._read()}
            for key, child in self._series.items()
        ]


class _HistogramChild:
    __slots__ = ("_lock", "_edges", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, edges: Tuple[float, ...]):
        self._lock = lock
        self._edges = edges
        # One bucket per finite edge plus the +Inf overflow bucket.
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # Prometheus ``le`` semantics: a sample equal to an edge counts
        # in that edge's bucket; anything above the last finite edge
        # lands in +Inf.
        index = bisect_left(self._edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        with self._lock:
            counts = list(self._counts)
            total = self._count
        return quantile_from_buckets(self._edges, counts, total, q)


class Histogram(_Family):
    """Fixed-bucket distribution (latencies, batch occupancy)."""

    kind = "histogram"

    def __init__(self, name, help, label_names, buckets=DEFAULT_LATENCY_BUCKETS_S):
        super().__init__(name, help, label_names)
        edges = tuple(float(e) for e in buckets)
        if not edges:
            raise MetricError(f"histogram {name!r} needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise MetricError(
                f"histogram {name!r} bucket edges must be strictly increasing: {edges!r}"
            )
        if not all(math.isfinite(e) for e in edges):
            raise MetricError(
                f"histogram {name!r} bucket edges must be finite "
                "(the +Inf overflow bucket is implicit)"
            )
        self.buckets = edges

    def _new_child(self, key):
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def _snapshot_series(self):
        return [
            {
                "labels": dict(zip(self.label_names, key)),
                "buckets": list(self.buckets),
                "counts": list(child._counts),
                "sum": child._sum,
                "count": child._count,
            }
            for key, child in self._series.items()
        ]


def quantile_from_buckets(
    edges: Sequence[float], counts: Sequence[int], total: int, q: float
) -> float:
    """Estimate quantile ``q`` from per-bucket (non-cumulative) counts.

    Linear interpolation inside the containing bucket (lower edge of the
    first bucket is 0, matching latency semantics); a quantile landing
    in the +Inf overflow bucket reports the last finite edge, same as
    Prometheus' ``histogram_quantile``. Returns NaN for empty data.
    """
    if total <= 0:
        return math.nan
    if not 0.0 <= q <= 1.0:
        raise MetricError(f"quantile must be in [0, 1], got {q}")
    rank = q * total
    cumulative = 0.0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            if index >= len(edges):
                return float(edges[-1])
            lower = float(edges[index - 1]) if index > 0 else 0.0
            upper = float(edges[index])
            fraction = (rank - cumulative) / bucket_count
            return lower + (upper - lower) * fraction
        cumulative += bucket_count
    return float(edges[-1])


class MetricsRegistry:
    """Get-or-create home for metric families; one coherent snapshot.

    ``counter``/``gauge``/``histogram`` are idempotent: asking for an
    existing name returns the existing family (so replicas sharing a
    registry bind their own label children of one family), but asking
    with a conflicting type, label set, or bucket edges raises —
    silently forking a metric's shape is how dashboards lie.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _get_or_create(self, cls, name, help, label_names, **kwargs) -> _Family:
        label_names = tuple(str(n) for n in label_names)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, label_names, **kwargs)
                self._families[name] = family
                return family
        if not isinstance(family, cls):
            raise MetricError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {cls.kind}"
            )
        if family.label_names != label_names:
            raise MetricError(
                f"metric {name!r} already registered with labels "
                f"{family.label_names!r}, not {label_names!r}"
            )
        buckets = kwargs.get("buckets")
        if buckets is not None and tuple(float(e) for e in buckets) != family.buckets:
            raise MetricError(
                f"histogram {name!r} already registered with buckets "
                f"{family.buckets!r}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def snapshot(self) -> Dict[str, dict]:
        """Walk every family (each under its own lock) into a JSON-safe dict.

        Families are snapshotted one at a time — each family's series
        are internally consistent (counts always sum to ``count``), and
        the whole walk happens inside the registry lock so no family is
        added or dropped mid-snapshot.
        """
        with self._lock:
            families = sorted(self._families.items())
        return {name: family.snapshot() for name, family in families}

    def value(self, name: str, *label_values, default: float = 0.0) -> float:
        """Read one series' current value (0 for a never-touched series).

        Convenience for rebuilding legacy ``stats()`` dicts and tests;
        counters/gauges only.
        """
        family = self.get(name)
        if family is None:
            return default
        key = _validate_labels(family.label_names, label_values)
        with family._lock:
            child = family._series.get(key)
            if child is None:
                return default
        if isinstance(child, _GaugeChild):
            return child.value
        return child.value if isinstance(child, _CounterChild) else default

"""Scenario subsystem: registry-driven environment families.

Environment families (LTS, DPR, SlateRec, and anything registered
later) are declared once and built from pure config dicts — seeds, env
counts, user counts and hidden-parameter distributions all spec-driven:

    from repro.scenarios import list_scenarios, make_scenario

    list_scenarios()                                  # ['dpr', 'lts', 'slate']
    scenario = make_scenario({"family": "slate", "num_envs": 240})
    envs = scenario.make_train_envs()

Training rides the same layer: ``Sim2RecConfig.scenario`` +
:func:`trainer_from_config` (or ``python -m repro.scenarios train``)
resolve any registered family into a full Algorithm-1 trainer. See
``docs/scenarios.md`` for the spec schema and how to add a family.
"""

from .registry import (
    POPULATION_KEYS,
    Scenario,
    ScenarioFamily,
    ScenarioSpec,
    list_scenarios,
    make_scenario,
    normalize_spec,
    register_scenario,
    scenario_defaults,
    scenario_description,
    unregister_scenario,
)
from . import families  # noqa: F401  (registers the built-in families)
from .train import (
    ScenarioTrainer,
    collect_scenario_state_sets,
    trainer_from_config,
)

__all__ = [
    "POPULATION_KEYS",
    "Scenario",
    "ScenarioFamily",
    "ScenarioSpec",
    "ScenarioTrainer",
    "collect_scenario_state_sets",
    "list_scenarios",
    "make_scenario",
    "normalize_spec",
    "register_scenario",
    "scenario_defaults",
    "scenario_description",
    "trainer_from_config",
    "unregister_scenario",
]

"""Scenario registry: declarative, spec-driven environment families.

Sim2Rec's claim is policy transfer across heterogeneous environments, so
environment *families* are first-class objects here, not hand-wired
``make_*`` helpers. A family is registered once with a builder and a
full default parameter set; after that, any population — training
simulators plus the held-out target environment — is built from a pure
config dict:

    from repro.scenarios import make_scenario

    scenario = make_scenario({"family": "slate", "num_envs": 240,
                              "num_users": 8, "seed": 3})
    envs = scenario.make_train_envs()      # 240 SlateRecEnv instances
    target = scenario.make_target_env()    # the unseen "real world"

Specs are closed under round-tripping: :meth:`ScenarioSpec.to_dict`
produces a JSON-compatible dict (defaults resolved, tuples normalised to
lists) and ``make_scenario(scenario.spec.to_dict()).spec ==
scenario.spec`` holds for every registered family — the property the CI
registry checks enforce. Unknown families, unknown parameters and empty
populations (``num_envs``/``num_users``/... < 1) are rejected with a
:class:`ValueError` at spec time, before any environment is constructed.

The built-in families (``lts``, ``dpr``, ``slate``) are registered in
:mod:`repro.scenarios.families`; new families register themselves with
the :func:`register_scenario` decorator — see ``docs/scenarios.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

import numpy as np

from ..envs.base import MultiUserEnv

#: Parameters that size an environment population; every registered
#: family's spec is validated to keep them >= 1 so an empty population
#: fails here with a clear message instead of deep inside VecEnvPool.
POPULATION_KEYS = ("num_envs", "num_users", "num_cities", "drivers_per_city", "horizon")


def _jsonify(value: Any) -> Any:
    """Normalise spec values to their JSON-compatible form.

    Tuples/arrays become lists and numpy scalars become plain Python
    numbers, so specs sized from numpy arithmetic round-trip through
    JSON and pass the population validation like their literal
    counterparts.
    """
    if isinstance(value, (tuple, list)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, np.ndarray):
        return _jsonify(value.tolist())
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


@dataclass
class ScenarioSpec:
    """A fully-resolved scenario description: family + parameters + seed.

    ``params`` always carries the *complete* parameter set of the family
    (defaults filled in at normalisation), so two specs compare equal iff
    they build identical populations, and :meth:`to_dict` /
    :meth:`from_dict` round-trip exactly.
    """

    family: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"family": self.family, "seed": self.seed}
        for key in sorted(self.params):
            data[key] = _jsonify(self.params[key])
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        family = data.pop("family", None)
        if not family:
            raise ValueError("scenario spec needs a 'family' key")
        seed = int(data.pop("seed", 0))
        return cls(family=str(family), params=data, seed=seed)


SpecLike = Union[str, Mapping[str, Any], ScenarioSpec]


class Scenario:
    """A built environment family: factories for the train population
    and the target environment, plus the dimensions a policy needs.

    ``make_train_env(index, seed_offset)`` must be deterministic in its
    arguments (same spec → same env), so scenario-built populations are
    reproducible and shippable to rollout workers.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        num_train_envs: int,
        state_dim: int,
        action_dim: int,
        make_train_env: Callable[..., MultiUserEnv],
        make_target_env: Callable[..., MultiUserEnv],
        description: str = "",
    ):
        self.spec = spec
        self.num_train_envs = int(num_train_envs)
        self.state_dim = int(state_dim)
        self.action_dim = int(action_dim)
        self._make_train_env = make_train_env
        self._make_target_env = make_target_env
        self.description = description
        if self.num_train_envs < 1:
            raise ValueError(
                f"scenario {spec.family!r} built an empty training population "
                f"(num_train_envs={num_train_envs}); check the spec's env counts"
            )

    def make_train_env(self, index: int, seed_offset: int = 0) -> MultiUserEnv:
        """Instantiate the ``index``-th training simulator."""
        return self._make_train_env(index, seed_offset)

    def make_train_envs(self, seed_offset: int = 0) -> List[MultiUserEnv]:
        return [self.make_train_env(i, seed_offset) for i in range(self.num_train_envs)]

    def make_target_env(self, seed_offset: int = 0) -> MultiUserEnv:
        """The held-out deployment environment of this scenario."""
        return self._make_target_env(seed_offset)

    def __repr__(self) -> str:  # pragma: no cover - debug sugar
        return (
            f"Scenario({self.spec.family!r}, envs={self.num_train_envs}, "
            f"state_dim={self.state_dim}, action_dim={self.action_dim})"
        )


@dataclass
class ScenarioFamily:
    """One registered family: builder + defaults + description."""

    name: str
    builder: Callable[[ScenarioSpec], Scenario]
    description: str
    defaults: Dict[str, Any]


_REGISTRY: Dict[str, ScenarioFamily] = {}


def register_scenario(
    name: str,
    *,
    description: str = "",
    defaults: Optional[Mapping[str, Any]] = None,
) -> Callable[[Callable[[ScenarioSpec], Scenario]], Callable[[ScenarioSpec], Scenario]]:
    """Decorator registering a scenario family builder.

    ``defaults`` is the family's *complete* parameter schema: every
    parameter a spec may set, with its default value. Unknown keys in an
    incoming spec are rejected against it.
    """

    def decorate(builder: Callable[[ScenarioSpec], Scenario]):
        if name in _REGISTRY:
            raise ValueError(f"scenario family {name!r} is already registered")
        doc = (builder.__doc__ or "").strip()
        _REGISTRY[name] = ScenarioFamily(
            name=name,
            builder=builder,
            description=description or (doc.splitlines()[0] if doc else ""),
            defaults={key: _jsonify(value) for key, value in dict(defaults or {}).items()},
        )
        return builder

    return decorate


def unregister_scenario(name: str) -> None:
    """Remove a family (tests register throwaway families)."""
    _REGISTRY.pop(name, None)


def list_scenarios() -> List[str]:
    """Names of every registered family, sorted."""
    return sorted(_REGISTRY)


def scenario_defaults(name: str) -> Dict[str, Any]:
    """The full default parameter set of a family (a copy)."""
    return dict(_get_family(name).defaults)


def scenario_description(name: str) -> str:
    return _get_family(name).description


def _get_family(name: str) -> ScenarioFamily:
    family = _REGISTRY.get(name)
    if family is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ValueError(f"unknown scenario family {name!r}; registered: {known}")
    return family


def normalize_spec(spec: SpecLike) -> ScenarioSpec:
    """Resolve a name / config dict / spec into a fully-defaulted spec.

    Fills family defaults, normalises values to JSON-compatible form,
    rejects unknown families and parameters, and validates the
    population-sizing keys (:data:`POPULATION_KEYS`) so empty
    populations fail with a clear error here.
    """
    if isinstance(spec, str):
        spec = ScenarioSpec(family=spec)
    elif isinstance(spec, Mapping):
        spec = ScenarioSpec.from_dict(spec)
    elif not isinstance(spec, ScenarioSpec):
        raise TypeError(
            f"expected a family name, config dict or ScenarioSpec, got {type(spec).__name__}"
        )
    family = _get_family(spec.family)
    params = dict(family.defaults)
    incoming = {key: _jsonify(value) for key, value in spec.params.items()}
    unknown = sorted(set(incoming) - set(params))
    if unknown:
        raise ValueError(
            f"scenario {spec.family!r}: unknown parameter(s) {unknown}; "
            f"accepted: {sorted(params)}"
        )
    params.update(incoming)
    for key in POPULATION_KEYS:
        if key in params:
            value = params[key]
            # bool is an int subclass; True sizing a population is a bug.
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"scenario {spec.family!r}: {key} must be an integer >= 1 "
                    f"(got {value!r}) — an empty environment population cannot "
                    "be built"
                )
    return ScenarioSpec(family=spec.family, params=params, seed=int(spec.seed))


def make_scenario(spec: SpecLike) -> Scenario:
    """Build a :class:`Scenario` from a family name, config dict or spec.

    The returned scenario carries its normalised spec:
    ``make_scenario(s.spec.to_dict()).spec == s.spec`` for every family
    (the registry round-trip contract).
    """
    normalized = normalize_spec(spec)
    family = _get_family(normalized.family)
    scenario = family.builder(normalized)
    scenario.spec = normalized
    if not scenario.description:
        scenario.description = family.description
    return scenario

"""Training on registered scenarios: the generic Algorithm-1 trainer.

:class:`ScenarioTrainer` is the family-agnostic counterpart of
:class:`repro.core.Sim2RecLTSTrainer`: it samples simulators uniformly
from a scenario's training population, rides every rollout mode of
:class:`repro.core.PolicyTrainer` (``Sim2RecConfig.rollout_mode`` /
``rollout_workers``), and keeps SADAE learning on state sets observed
during rollouts. :func:`trainer_from_config` resolves
``Sim2RecConfig.scenario`` — a registered-family config dict — into a
ready trainer, sizing the Sim2Rec policy from the scenario's dims; the
``python -m repro.scenarios`` CLI is a thin shell around it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.config import Sim2RecConfig
from ..core.policy import Sim2RecPolicy
from ..core.sadae import train_sadae
from ..core.trainer import (
    PolicyTrainer,
    build_sim2rec_policy,
    env_population_extra_state,
    load_env_population_extra_state,
)
from ..envs.base import MultiUserEnv
from ..rl.buffer import RolloutSegment
from ..utils.logging import MetricLogger
from ..utils.seeding import make_rng
from .registry import Scenario, SpecLike, make_scenario


def collect_scenario_state_sets(
    scenario: Scenario,
    users_per_set: Optional[int] = None,
    steps_per_env: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Build a SADAE pretraining corpus from every training simulator.

    Each simulator contributes its observed state-action sets under
    uniform random actions (fresh env instances at a dedicated seed
    offset, so the scenario's shared training envs are not advanced).
    ``users_per_set`` is accepted for interface parity with the LTS
    corpus collector but scenario populations are sized by their spec —
    a mismatch raises rather than silently resizing.
    """
    rng = rng or make_rng(0)
    sets: List[Tuple[np.ndarray, np.ndarray]] = []
    for index in range(scenario.num_train_envs):
        env = scenario.make_train_env(index, seed_offset=3000)
        if users_per_set is not None and users_per_set != env.num_users:
            raise ValueError(
                f"users_per_set={users_per_set} does not match the scenario's "
                f"num_users={env.num_users}; size the population via the spec"
            )
        states = env.reset()
        actions = np.zeros((env.num_users, env.action_dim))
        sets.append((states.copy(), actions.copy()))
        for _ in range(steps_per_env - 1):
            actions = rng.random((env.num_users, env.action_dim))
            states, _, _, _ = env.step(actions)
            sets.append((states.copy(), actions.copy()))
    return sets


class ScenarioTrainer(PolicyTrainer):
    """Algorithm 1 over any registered scenario's training population.

    Simulators are shared env objects sampled uniformly per segment (the
    LTS-trainer convention — env state and RNG streams persist across
    iterations, and worker-side state is synced back under the sharded
    modes). SADAE keeps learning from state sets snapshotted out of the
    collected rollouts, exactly as in the LTS trainer.
    """

    def __init__(
        self,
        policy: Sim2RecPolicy,
        scenario: Scenario,
        config: Sim2RecConfig,
        logger: Optional[MetricLogger] = None,
    ):
        self.scenario = scenario
        self._train_envs = scenario.make_train_envs()
        self._recent_sets: List[Tuple[np.ndarray, Optional[np.ndarray]]] = []

        def sampler(rng: np.random.Generator) -> MultiUserEnv:
            return self._train_envs[int(rng.integers(0, len(self._train_envs)))]

        super().__init__(policy, sampler, config, logger)
        self.sim2rec_policy = policy

    def pretrain_sadae(
        self, epochs: Optional[int] = None, steps_per_env: int = 10
    ) -> List[float]:
        """Fit q_κ/p_θ on state-action sets from the training simulators."""
        sets = collect_scenario_state_sets(
            self.scenario, steps_per_env=steps_per_env, rng=self.rng
        )
        with self._phase_timer("sadae_pretrain"):
            return train_sadae(
                self.sim2rec_policy.sadae,
                sets,
                epochs=epochs or self.config.sadae_pretrain_epochs,
                rng=self.rng,
                batched=self.config.batched_sadae,
            )

    def post_process_segment(self, segment: RolloutSegment, env: MultiUserEnv) -> None:
        for t in range(0, segment.horizon, max(segment.horizon // 4, 1)):
            self._recent_sets.append((segment.states[t], segment.prev_actions[t]))
        self._recent_sets = self._recent_sets[-64:]

    def checkpoint_extra_state(self):
        return env_population_extra_state(self._train_envs, self._recent_sets)

    def load_checkpoint_extra_state(self, state) -> None:
        self._recent_sets = load_env_population_extra_state(self._train_envs, state)

    def after_update(self) -> None:
        if not self._recent_sets or self.config.sadae_updates_per_iteration <= 0:
            return
        count = min(self.config.sadae_sets_per_update, len(self._recent_sets))
        indices = self.rng.choice(len(self._recent_sets), size=count, replace=False)
        sets = [self._recent_sets[i] for i in indices]
        train_sadae(
            self.sim2rec_policy.sadae,
            sets,
            epochs=self.config.sadae_updates_per_iteration,
            rng=self.rng,
            fit_normalizer=False,
            batched=self.config.batched_sadae,
        )


def trainer_from_config(
    config: Sim2RecConfig,
    scenario: Optional[SpecLike] = None,
    logger: Optional[MetricLogger] = None,
) -> ScenarioTrainer:
    """Resolve ``config.scenario`` (or an explicit spec) into a trainer.

    Builds the Sim2Rec policy sized by the scenario's observation and
    action dimensions, then wires it to the scenario's population. The
    spec may be a family name, a config dict, a :class:`ScenarioSpec`,
    or an already-built :class:`Scenario`.
    """
    if scenario is None:
        scenario = config.scenario
    if scenario is None:
        raise ValueError(
            "no scenario given: set Sim2RecConfig.scenario to a registered-"
            "family config dict (e.g. {'family': 'slate'}) or pass one here"
        )
    if not isinstance(scenario, Scenario):
        scenario = make_scenario(scenario)
    policy = build_sim2rec_policy(scenario.state_dim, scenario.action_dim, config)
    return ScenarioTrainer(policy, scenario, config, logger)

"""CLI for the scenario subsystem.

    python -m repro.scenarios list
    python -m repro.scenarios spec slate
    python -m repro.scenarios train --scenario '{"family": "slate", "num_envs": 4}' \
        --iterations 5 --pretrain-epochs 10 --workers 2

``list`` prints every registered family, ``spec`` the fully-resolved
default spec of one family (a valid ``--scenario`` starting point), and
``train`` runs a short Algorithm-1 loop on any registered scenario and
evaluates the policy zero-shot in the scenario's target environment.
``train --checkpoint run.npz`` snapshots the run after every iteration
(``--checkpoint-every`` to thin); ``train --checkpoint run.npz
--resume`` restores the snapshot and continues on the unbroken run's
exact trajectory (see :mod:`repro.core.checkpoint`).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from ..core.config import scenario_small_config
from ..rl.evaluate import evaluate
from .registry import (
    list_scenarios,
    make_scenario,
    normalize_spec,
    scenario_description,
)
from .train import trainer_from_config


def _cmd_list() -> int:
    for name in list_scenarios():
        print(f"{name:10s} {scenario_description(name)}")
    return 0


def _cmd_spec(family: str) -> int:
    print(json.dumps(normalize_spec(family).to_dict(), indent=2))
    return 0


def _parse_scenario(raw: str):
    raw = raw.strip()
    if raw.startswith("{"):
        return json.loads(raw)
    return raw  # a bare family name


def _cmd_train(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        raise ValueError("--resume needs --checkpoint pointing at a snapshot")
    config = scenario_small_config(seed=args.seed)
    config.scenario = normalize_spec(_parse_scenario(args.scenario)).to_dict()
    config.rollout_workers = args.workers
    config.checkpoint_path = args.checkpoint
    config.checkpoint_every = args.checkpoint_every if args.checkpoint else 0
    config.metrics_path = args.metrics
    scenario = make_scenario(config.scenario)
    print(
        f"scenario {scenario.spec.family!r}: {scenario.num_train_envs} training "
        f"simulators, state_dim={scenario.state_dim}, action_dim={scenario.action_dim}"
    )
    with trainer_from_config(config, scenario) as trainer:
        if args.resume:
            # The snapshot carries the post-pretraining SADAE weights and
            # RNG streams, so pretraining is not repeated: the run picks
            # up the unbroken trajectory at the checkpointed iteration.
            start = trainer.load_checkpoint(args.checkpoint)
            print(f"resumed {args.checkpoint} at iteration {start}")
        else:
            losses = trainer.pretrain_sadae(epochs=args.pretrain_epochs)
            if losses:
                print(f"SADAE pretraining loss: {losses[0]:.3f} -> {losses[-1]:.3f}")
        while trainer.iteration < args.iterations:
            metrics = trainer.train_iteration()
            print(f"iter {trainer.iteration - 1:3d}  reward {metrics['reward']:9.3f}")
        policy = trainer.sim2rec_policy
    target = scenario.make_target_env()
    reward = evaluate(
        policy.as_act_fn(np.random.default_rng(args.seed), deterministic=True), target
    )
    print(f"target-env return (zero-shot): {reward:.3f}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.scenarios", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="registered scenario families")
    spec_parser = sub.add_parser("spec", help="print a family's resolved default spec")
    spec_parser.add_argument("family")
    train_parser = sub.add_parser("train", help="short Algorithm-1 run on a scenario")
    train_parser.add_argument(
        "--scenario",
        required=True,
        help="family name or JSON config dict (see 'spec' for the schema)",
    )
    train_parser.add_argument("--iterations", type=int, default=5)
    train_parser.add_argument("--pretrain-epochs", type=int, default=10)
    train_parser.add_argument("--workers", type=int, default=1)
    train_parser.add_argument("--seed", type=int, default=0)
    train_parser.add_argument(
        "--checkpoint",
        default=None,
        help="snapshot path; written every --checkpoint-every iterations",
    )
    train_parser.add_argument("--checkpoint-every", type=int, default=1)
    train_parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="append one CRC-framed JSONL metrics snapshot per iteration "
        "(phase timings, rollout-pool counters; see docs/observability.md)",
    )
    train_parser.add_argument(
        "--resume",
        action="store_true",
        help="restore --checkpoint and continue to --iterations "
        "(skips SADAE pretraining; the snapshot carries it)",
    )
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "spec":
            return _cmd_spec(args.family)
        return _cmd_train(args)
    except (ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

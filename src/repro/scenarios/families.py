"""Built-in scenario families: ``lts``, ``dpr`` and ``slate``.

Each family wraps the corresponding world in :mod:`repro.envs` behind
the registry protocol, making the whole population — training simulator
set plus held-out target environment — buildable from a pure config
dict. The hand-wired constructors (:func:`repro.envs.make_lts_task`,
:class:`repro.envs.DPRWorld`) remain as thin construction helpers; the
scenario layer is the first-class entry point that sizes, seeds and
parameterises them declaratively.
"""

from __future__ import annotations

import numpy as np

from ..envs.dpr import DPRConfig, DPRWorld
from ..envs.lts import LTSEnv
from ..envs.lts_tasks import make_lts_task
from ..envs.slate import SlateConfig, SlateRecEnv
from .registry import Scenario, ScenarioSpec, register_scenario

LTS_DEFAULTS = {
    "task": "LTS3",
    "beta": None,
    "num_users": 100,
    "horizon": 140,
    "observation_noise_std": 2.0,
    "sensitivity_range": (0.05, 0.15),
    "memory_discount_range": (0.85, 0.95),
}


@register_scenario(
    "lts",
    description="Long-term satisfaction (Choc/Kale) transfer tasks, Sec. V-B1",
    defaults=LTS_DEFAULTS,
)
def build_lts_scenario(spec: ScenarioSpec) -> Scenario:
    params = spec.params
    task = make_lts_task(
        params["task"],
        beta=params["beta"],
        num_users=params["num_users"],
        horizon=params["horizon"],
        seed=spec.seed,
        observation_noise_std=params["observation_noise_std"],
        sensitivity_range=tuple(params["sensitivity_range"]),
        memory_discount_range=tuple(params["memory_discount_range"]),
    )
    return Scenario(
        spec,
        num_train_envs=task.num_simulators,
        state_dim=LTSEnv.STATE_DIM,
        action_dim=1,
        make_train_env=task.make_train_env,
        make_target_env=lambda seed_offset=0: task.make_target_env(seed_offset),
    )


DPR_DEFAULTS = {
    "num_cities": 5,
    "drivers_per_city": 50,
    "horizon": 30,
    "alpha1": 1.0,
    "demand_scale_low": 0.5,
    "demand_scale_high": 4.0,
    "target_city": None,  # defaults to the middle city
}


@register_scenario(
    "dpr",
    description="Driver-program recommendation: multi-city ride-hailing world",
    defaults=DPR_DEFAULTS,
)
def build_dpr_scenario(spec: ScenarioSpec) -> Scenario:
    params = spec.params
    world = DPRWorld(
        DPRConfig(
            num_cities=params["num_cities"],
            drivers_per_city=params["drivers_per_city"],
            horizon=params["horizon"],
            alpha1=params["alpha1"],
            demand_scale_low=params["demand_scale_low"],
            demand_scale_high=params["demand_scale_high"],
            seed=spec.seed,
        )
    )
    target_city = params["target_city"]
    if target_city is None:
        target_city = world.num_cities // 2
    if (
        isinstance(target_city, bool)
        or not isinstance(target_city, int)
        or not 0 <= target_city < world.num_cities
    ):
        raise ValueError(
            f"scenario 'dpr': target_city must be an integer in "
            f"[0, {world.num_cities}), got {target_city!r}"
        )
    # Genuinely held out: the target city never appears in the training
    # population (the same hold-out convention as the lts/slate gap).
    train_cities = [city for city in range(world.num_cities) if city != target_city]
    if not train_cities:
        raise ValueError(
            "scenario 'dpr': num_cities=1 leaves no training city once the "
            "target city is held out; use num_cities >= 2"
        )
    base_seed = spec.seed + 10_000

    def make_train_env(index: int, seed_offset: int = 0):
        city = train_cities[index % len(train_cities)]
        return world.make_city_env(city, seed=base_seed + index + seed_offset)

    def make_target_env(seed_offset: int = 0):
        return world.make_city_env(target_city, seed=spec.seed + 777 + seed_offset)

    return Scenario(
        spec,
        num_train_envs=len(train_cities),
        state_dim=world.make_city_env(0).observation_dim,
        action_dim=2,
        make_train_env=make_train_env,
        make_target_env=make_target_env,
    )


SLATE_DEFAULTS = {
    "num_envs": 8,
    "num_users": 50,
    "horizon": 30,
    "slate_size": 5,
    # Hidden-parameter distribution of the training population: per-env
    # group shifts ω_g ~ U([low, -gap] ∪ [gap, high]) — the target env
    # sits at ω_g = 0, at least `min_gap` away from every simulator.
    "omega_g_low": -6.0,
    "omega_g_high": 6.0,
    "min_gap": 2.0,
    "beta": None,  # per-user ω_u ~ U(−β, β)
    "temperature": 0.4,
    "null_utility": 0.3,
    "appeal": 1.0,
    "click_pull": 0.6,
    "interest_lr": 0.05,
    "recency_lr": 0.5,
    "boredom_decay": 0.8,
    "boredom_gain": 0.4,
    "boredom_weight": 1.5,
    "churn_base": 0.08,
    "return_prob": 0.2,
    "observation_noise_std": 2.0,
}


def _draw_omega_gs(
    rng: np.random.Generator, count: int, low: float, high: float, gap: float
) -> np.ndarray:
    """ω_g draws from U([low, −gap] ∪ [gap, high]) — the gapped support."""
    if low >= high:
        raise ValueError(f"omega_g_low {low} must be < omega_g_high {high}")
    gap = abs(gap)
    left_len = max(0.0, min(-gap, high) - low)
    right_len = max(0.0, high - max(gap, low))
    total = left_len + right_len
    if total <= 0.0:
        raise ValueError(
            f"no admissible ω_g mass in [{low}, {high}] with min_gap {gap}"
        )
    u = rng.random(count) * total
    return np.where(u < left_len, low + u, max(gap, low) + (u - left_len))


@register_scenario(
    "slate",
    description="RecSim-style K-item slate world: MNL choice, boredom, churn",
    defaults=SLATE_DEFAULTS,
)
def build_slate_scenario(spec: ScenarioSpec) -> Scenario:
    params = spec.params
    omega_gs = _draw_omega_gs(
        np.random.default_rng(spec.seed),
        params["num_envs"],
        params["omega_g_low"],
        params["omega_g_high"],
        params["min_gap"],
    )

    def make_config(omega_g: float, omega_u_range, seed: int) -> SlateConfig:
        return SlateConfig(
            num_users=params["num_users"],
            horizon=params["horizon"],
            slate_size=params["slate_size"],
            omega_g=float(omega_g),
            omega_u_range=omega_u_range,
            temperature=params["temperature"],
            null_utility=params["null_utility"],
            appeal=params["appeal"],
            click_pull=params["click_pull"],
            interest_lr=params["interest_lr"],
            recency_lr=params["recency_lr"],
            boredom_decay=params["boredom_decay"],
            boredom_gain=params["boredom_gain"],
            boredom_weight=params["boredom_weight"],
            churn_base=params["churn_base"],
            return_prob=params["return_prob"],
            observation_noise_std=params["observation_noise_std"],
            seed=seed,
        )

    def make_train_env(index: int, seed_offset: int = 0):
        omega_g = omega_gs[index % len(omega_gs)]
        return SlateRecEnv(
            make_config(omega_g, params["beta"], spec.seed + 1000 * index + seed_offset)
        )

    def make_target_env(seed_offset: int = 0):
        return SlateRecEnv(make_config(0.0, None, spec.seed + 777 + seed_offset))

    return Scenario(
        spec,
        num_train_envs=params["num_envs"],
        state_dim=SlateRecEnv.STATE_DIM,
        action_dim=params["slate_size"],
        make_train_env=make_train_env,
        make_target_env=make_target_env,
    )

"""Self-contained serving demo: ``python -m repro.serve``.

Spins up a :class:`~repro.serve.PolicyServer`, opens one session per
simulated environment (an LTS task per session, or a DPR city each for
the Sim2Rec policy), drives every session through live microbatched
serving for a full episode, then **replays each session solo** — a fresh
policy acting for that session alone — and checks the served action
streams are bit-identical. With ``--gateway`` the same episode runs over
a real TCP socket: one :class:`~repro.serve.GatewayClient` thread per
session against a loopback :class:`~repro.serve.Gateway`, and the same
bit-identity must hold. Prints a JSON summary.

Examples::

    python -m repro.serve --policy lstm --sessions 8 --steps 20
    python -m repro.serve --policy sim2rec --sessions 4 --users 5
    python -m repro.serve --policy gru --background --max-wait-ms 1
    python -m repro.serve --policy lstm --gateway
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

import numpy as np

from ..core import build_sim2rec_policy, dpr_small_config
from ..envs import DPRConfig, DPRWorld, LTSConfig, LTSEnv
from ..obs import REQUIRED_GATEWAY_SERIES, parse_prometheus_text
from ..rl import MLPActorCritic, RecurrentActorCritic
from .client import GatewayClient
from .gateway import Gateway, GatewayConfig
from .server import PolicyServer, ServeConfig


def make_policy(kind: str, state_dim: int, action_dim: int):
    if kind == "mlp":
        return MLPActorCritic(
            state_dim, action_dim, np.random.default_rng(1), hidden_sizes=(32,)
        )
    if kind in ("lstm", "gru"):
        return RecurrentActorCritic(
            state_dim, action_dim, np.random.default_rng(0),
            lstm_hidden=16, head_hidden=(32,), cell=kind,
        )
    if kind == "sim2rec":
        return build_sim2rec_policy(state_dim, action_dim, dpr_small_config(seed=0))
    raise ValueError(f"unknown policy kind {kind!r}")


def make_envs(kind: str, sessions: int, users: int, steps: int, seed: int):
    """One member env per session; returns (envs, state_dim, action_dim)."""
    if kind == "sim2rec":
        world = DPRWorld(
            DPRConfig(
                num_cities=sessions, drivers_per_city=users, horizon=steps, seed=seed
            )
        )
        envs = world.make_all_city_envs()
        return envs, 13, 2
    envs = [
        LTSEnv(
            LTSConfig(
                num_users=users, horizon=steps, omega_g=2.0 * i, seed=seed + i
            )
        )
        for i in range(sessions)
    ]
    return envs, 2, 1


def serve_episode(server, envs, session_seeds, steps, deterministic):
    """Drive every env one episode through the server; returns action streams."""
    handles = [
        server.session(num_users=env.num_users, seed=session_seeds[i],
                       deterministic=deterministic)
        for i, env in enumerate(envs)
    ]
    observations = [env.reset() for env in envs]
    streams = [[] for _ in envs]
    latencies = []
    for _ in range(steps):
        begin = time.perf_counter()
        tickets = [
            handle.submit(obs) for handle, obs in zip(handles, observations)
        ]
        if not server.running:
            server.flush()
        results = [ticket.result(timeout=30.0) for ticket in tickets]
        latencies.append((time.perf_counter() - begin) / len(envs))
        for i, (env, result) in enumerate(zip(envs, results)):
            streams[i].append(result.actions)
            observations[i], _, _, _ = env.step(result.actions)
    for handle in handles:
        handle.end()
    return streams, latencies


def serve_episode_gateway(address, envs, session_seeds, steps, deterministic):
    """The same episode through a real socket: one client thread per session."""
    streams = [[] for _ in envs]
    latencies = [[] for _ in envs]
    errors = []

    def run(i, env):
        try:
            with GatewayClient(address) as client:
                session = client.open_session(
                    num_users=env.num_users, seed=session_seeds[i],
                    deterministic=deterministic,
                )
                obs = env.reset()
                for _ in range(steps):
                    begin = time.perf_counter()
                    result = session.act(obs)
                    latencies[i].append(time.perf_counter() - begin)
                    streams[i].append(result.actions)
                    obs, _, _, _ = env.step(result.actions)
                session.end()
        except Exception as error:  # surface in the main thread
            errors.append((i, error))

    threads = [
        threading.Thread(target=run, args=(i, env)) for i, env in enumerate(envs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise RuntimeError(f"gateway session failed: {errors[0]}")
    return streams, [value for per in latencies for value in per]


def replay_solo(kind, state_dim, action_dim, env, session_seed, steps, deterministic):
    """The reference: the same session served alone, one act per request."""
    policy = make_policy(kind, state_dim, action_dim)
    rng = np.random.default_rng(session_seed)
    policy.start_rollout(env.num_users)
    prev = np.zeros((env.num_users, policy.action_dim))
    obs = env.reset()
    stream = []
    for _ in range(steps):
        actions, _, _ = policy.act(obs, prev, rng, deterministic=deterministic)
        prev = actions
        stream.append(actions)
        obs, _, _, _ = env.step(actions)
    return stream


def scrape_metrics(address) -> dict:
    """Scrape and parse a live ``/metrics`` endpoint (CI smoke check).

    Returns ``{"series": <count>, "missing": [names...]}`` where a
    required family counts as present when its own sample name — or its
    histogram ``_count`` companion — appears in the parsed exposition.
    """
    import urllib.request

    host, port = address
    with urllib.request.urlopen(
        f"http://{host}:{port}/metrics", timeout=10.0
    ) as response:
        text = response.read().decode("utf-8")
    parsed = parse_prometheus_text(text)
    missing = [
        name
        for name in REQUIRED_GATEWAY_SERIES
        if name not in parsed and f"{name}_count" not in parsed
    ]
    return {"series": len(parsed), "missing": missing}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--policy", choices=("mlp", "lstm", "gru", "sim2rec"), default="lstm"
    )
    parser.add_argument("--sessions", type=int, default=6)
    parser.add_argument("--users", type=int, default=3, help="users per session")
    parser.add_argument("--steps", type=int, default=12)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--deterministic", action="store_true", help="serve distribution modes"
    )
    parser.add_argument(
        "--background",
        action="store_true",
        help="serve through the background dispatcher thread",
    )
    parser.add_argument(
        "--gateway",
        action="store_true",
        help="serve over a loopback TCP gateway (one client thread per session)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="with --gateway: expose Prometheus /metrics on this port "
        "(0 = ephemeral), scrape it after the episode, and fail if any "
        "required series is missing",
    )
    args = parser.parse_args(argv)
    if args.metrics_port is not None and not args.gateway:
        parser.error("--metrics-port requires --gateway")

    envs, state_dim, action_dim = make_envs(
        args.policy, args.sessions, args.users, args.steps, args.seed
    )
    session_seeds = [1000 + args.seed + i for i in range(len(envs))]
    server = PolicyServer(
        make_policy(args.policy, state_dim, action_dim),
        ServeConfig(max_batch_size=args.max_batch, max_wait_ms=args.max_wait_ms,
                    seed=args.seed),
    )
    metrics_check = None
    if args.gateway:
        with Gateway(
            server, GatewayConfig(metrics_port=args.metrics_port)
        ) as gateway:
            gateway.start()
            served, latencies = serve_episode_gateway(
                gateway.address, envs, session_seeds, args.steps,
                args.deterministic,
            )
            stats = server.stats()
            if args.metrics_port is not None:
                metrics_check = scrape_metrics(gateway.metrics_address)
    else:
        if args.background:
            server.start()
        served, latencies = serve_episode(
            server, envs, session_seeds, args.steps, args.deterministic
        )
        stats = server.stats()
        if args.background:
            server.stop()
        server.close()

    # Parity: replay each session solo on fresh envs (same seeds).
    reference_envs, _, _ = make_envs(
        args.policy, args.sessions, args.users, args.steps, args.seed
    )
    parity = True
    for i, env in enumerate(reference_envs):
        solo = replay_solo(
            args.policy, state_dim, action_dim, env, session_seeds[i],
            args.steps, args.deterministic,
        )
        parity &= all(
            np.array_equal(a, b) for a, b in zip(served[i], solo)
        )

    latencies_ms = np.array(latencies) * 1000.0
    summary = {
        "policy": args.policy,
        "sessions": len(envs),
        "users_per_session": args.users,
        "steps": args.steps,
        "background": args.background,
        "gateway": args.gateway,
        "requests": stats["requests"],
        "batches": stats["batches"],
        "max_batch_rows": stats["max_batch_rows"],
        "mean_request_ms": round(float(latencies_ms.mean()), 4),
        "parity_vs_solo": parity,
    }
    if metrics_check is not None:
        summary["metrics_series"] = metrics_check["series"]
        summary["metrics_missing"] = metrics_check["missing"]
        summary["metrics_ok"] = not metrics_check["missing"]
    print(json.dumps(summary, indent=2))
    if not parity:
        print("FAIL: microbatched serving diverged from solo serving", file=sys.stderr)
        return 1
    if metrics_check is not None and metrics_check["missing"]:
        print(
            "FAIL: required metrics series missing from /metrics: "
            + ", ".join(metrics_check["missing"]),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

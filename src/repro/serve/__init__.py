"""Policy inference serving: microbatched sessions, hot-swap replicas.

The production boundary of the stack (see ``docs/serving.md``): a
:class:`PolicyServer` stacks concurrent sessions' ``act`` requests into
single batched policy forwards — bit-identical to serving each session
alone — and swaps in new policy snapshots between batches with zero
downtime. ``python -m repro.serve`` runs a self-contained demo that
serves live environment sessions and verifies the parity contract.
"""

from .server import (
    ActionResult,
    PolicyServer,
    ServeConfig,
    SessionError,
    Ticket,
    snapshot_policy,
)

__all__ = [
    "ActionResult",
    "PolicyServer",
    "ServeConfig",
    "SessionError",
    "Ticket",
    "snapshot_policy",
]

"""Policy inference serving: microbatched sessions, hot-swap replicas.

The production boundary of the stack (see ``docs/serving.md``): a
:class:`PolicyServer` stacks concurrent sessions' ``act`` requests into
single batched policy forwards — bit-identical to serving each session
alone — and swaps in new policy snapshots between batches with zero
downtime. A :class:`ReplicaSet` holds several live policy versions with
a deterministic seeded traffic split, and a :class:`Gateway` puts the
whole thing on a TCP socket (length-prefixed JSON frames, typed
``BUSY``/``TIMEOUT`` failure responses, LRU/TTL session eviction) for
:class:`GatewayClient` connections. ``python -m repro.serve`` runs a
self-contained demo that serves live environment sessions — in-process
or through a real socket (``--gateway``) — and verifies the parity
contract.

Every layer publishes into one shared :class:`repro.obs.MetricsRegistry`
(per-replica latency histograms, queue-depth gauges, typed failure
counters) and stamps requests with trace ids; see
``docs/observability.md`` for the catalog, the wire ``stats`` op's
snapshot, and the ``GatewayConfig.metrics_port`` Prometheus endpoint.
"""

from .client import (
    DeadlineExceeded,
    GatewayBusy,
    GatewayClient,
    GatewayError,
    RemoteSession,
)
from .gateway import Gateway, GatewayConfig
from .protocol import FrameError, FrameReader
from .replica_set import ReplicaSet
from .server import (
    ActionResult,
    PolicyServer,
    ServeConfig,
    Session,
    SessionError,
    Ticket,
    snapshot_policy,
)
from .sessions import SessionStore

__all__ = [
    "ActionResult",
    "DeadlineExceeded",
    "FrameError",
    "FrameReader",
    "Gateway",
    "GatewayBusy",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "PolicyServer",
    "RemoteSession",
    "ReplicaSet",
    "ServeConfig",
    "Session",
    "SessionError",
    "SessionStore",
    "Ticket",
    "snapshot_policy",
]

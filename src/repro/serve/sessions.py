"""Memory-bounded session tracking: LRU capacity + TTL idle eviction.

A long-lived gateway accumulates sessions from clients that vanish
without an ``end`` — every one pins per-session serving state (noise
generator, previous actions, recurrent state) forever. The
:class:`SessionStore` is the bound: it maps session ids to arbitrary
entries in recency order and evicts

- the **least-recently-used** entry whenever an insert would exceed
  ``max_sessions`` (capacity eviction), and
- any entry idle longer than ``ttl_s`` (idle eviction, checked lazily on
  every mutating call and explicitly via :meth:`evict_expired`).

Eviction calls ``on_evict(key, value, reason)`` *outside* the store lock
— the gateway uses it to end the underlying server session, which takes
the server lock; holding both would order locks store→server here and
server→store on the request path. Counters (``evicted_lru`` /
``evicted_ttl``) feed the soak bench's flat-memory assertions.

The store is a bookkeeping layer only: it never touches what it holds
beyond the callback, so it is reusable for any keyed per-client state.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["SessionStore"]

#: ``on_evict(key, value, reason)`` with reason in {"lru", "ttl"}.
EvictCallback = Callable[[str, Any, str], None]


class _Entry:
    __slots__ = ("value", "last_used")

    def __init__(self, value: Any, now: float) -> None:
        self.value = value
        self.last_used = now


class SessionStore:
    """Thread-safe LRU/TTL map of session id -> entry.

    ``max_sessions=None`` disables capacity eviction, ``ttl_s=None``
    disables idle eviction (both disabled = a plain thread-safe dict
    with recency accounting). ``clock`` is injectable for tests
    (defaults to ``time.monotonic``).
    """

    def __init__(
        self,
        max_sessions: Optional[int] = None,
        ttl_s: Optional[float] = None,
        on_evict: Optional[EvictCallback] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if ttl_s is not None and not ttl_s > 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        self.max_sessions = max_sessions
        self.ttl_s = ttl_s
        self._on_evict = on_evict
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._counters = {"evicted_lru": 0, "evicted_ttl": 0}

    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) an entry; may evict LRU/expired entries."""
        evicted = []
        with self._lock:
            now = self._clock()
            evicted.extend(self._expire_locked(now))
            entry = self._entries.pop(key, None)
            if entry is None:
                entry = _Entry(value, now)
            else:
                entry.value = value
                entry.last_used = now
            self._entries[key] = entry
            if self.max_sessions is not None:
                while len(self._entries) > self.max_sessions:
                    old_key, old_entry = self._entries.popitem(last=False)
                    self._counters["evicted_lru"] += 1
                    evicted.append((old_key, old_entry.value, "lru"))
        self._fire(evicted)

    def get(self, key: str) -> Optional[Any]:
        """Fetch and touch an entry; ``None`` if absent or just expired."""
        evicted = []
        with self._lock:
            now = self._clock()
            evicted.extend(self._expire_locked(now))
            entry = self._entries.get(key)
            if entry is not None:
                entry.last_used = now
                self._entries.move_to_end(key)
        self._fire(evicted)
        return entry.value if entry is not None else None

    def pop(self, key: str) -> Optional[Any]:
        """Remove an entry without firing the eviction callback."""
        with self._lock:
            entry = self._entries.pop(key, None)
        return entry.value if entry is not None else None

    def evict_expired(self) -> int:
        """Evict every TTL-expired entry now; returns how many."""
        with self._lock:
            evicted = self._expire_locked(self._clock())
        self._fire(evicted)
        return len(evicted)

    def clear(self) -> List[Tuple[str, Any]]:
        """Drop everything (no callback); returns the former entries."""
        with self._lock:
            entries = [(key, entry.value) for key, entry in self._entries.items()]
            self._entries.clear()
        return entries

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries.keys())

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"sessions": len(self._entries), **self._counters}

    # ------------------------------------------------------------------
    def _expire_locked(self, now: float) -> List[Tuple[str, Any, str]]:
        if self.ttl_s is None:
            return []
        expired = []
        # Recency order means the oldest entry is first: stop at the
        # first survivor instead of scanning the whole store.
        while self._entries:
            key, entry = next(iter(self._entries.items()))
            if now - entry.last_used <= self.ttl_s:
                break
            del self._entries[key]
            self._counters["evicted_ttl"] += 1
            expired.append((key, entry.value, "ttl"))
        return expired

    def _fire(self, evicted: List[Tuple[str, Any, str]]) -> None:
        if self._on_evict is None:
            return
        for key, value, reason in evicted:
            self._on_evict(key, value, reason)

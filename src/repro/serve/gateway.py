"""Networked serving gateway: the TCP front end of the policy servers.

One :class:`Gateway` listens on a socket and speaks the length-prefixed
JSON frame protocol (:mod:`repro.serve.protocol`), exposing a
:class:`~repro.serve.replica_set.ReplicaSet` (or a single
:class:`~repro.serve.server.PolicyServer`, auto-wrapped as a one-replica
set) to remote clients. Each connection is served by its own thread
(``socketserver.ThreadingTCPServer``) running a strict request/response
loop — the client library is :class:`repro.serve.client.GatewayClient`.

Operations (request ``{"op": ...}`` → response ``{"ok": ...}``):

==========  ===========================================================
``open``    open a session (``num_users``/``seed``/``deterministic``/
            ``key``); returns session id, replica name, policy version
``act``     serve one observation for a session; returns actions /
            log_probs / values / version / step, bit-identical to
            in-process serving (the codec ships raw float64 bytes)
``end``     close a session
``stats``   gateway + replica counters
``ping``    liveness probe
==========  ===========================================================

Failure semantics are **typed, not exceptional**: the gateway answers
``{"ok": false, "error": CODE, "message": ...}`` and keeps the
connection alive wherever the client can act on the error:

- ``BUSY`` — admission control: more than ``max_pending`` acts in
  flight gateway-wide. The request was never submitted; back off and
  retry. Backpressure is load-shedding at the door, not a queue.
- ``TIMEOUT`` — the per-request deadline (``deadline_ms``, default
  ``default_deadline_ms``) expired before the microbatch was served.
  The deadline clock starts when the request frame arrives off the
  socket — decode, dispatch and admission spend the same budget the
  batch wait does, so a slow decode cannot grant a request extra
  server time. If the request is still unresolved in flight, the
  gateway quarantines the session and ends it as soon as the batch
  resolves (deferred cleanup); if the budget lapsed before the request
  ever reached the server, the session is ended directly. The session
  id is dead to the client either way.
- ``SESSION`` — protocol misuse (unknown id, double submit, shape
  mismatch): the server-side :class:`SessionError` message, verbatim.
- ``BAD_REQUEST`` — unparseable operation or missing fields.

Slow or vanished clients cannot pin resources: reads idle out after
``idle_timeout_s`` and close the connection, and closing a connection
ends every session it opened (waiting out in-flight batches). Sessions
are additionally bounded gateway-wide by the LRU/TTL
:class:`~repro.serve.sessions.SessionStore` (``max_sessions`` /
``session_ttl_s``) so abandoned sessions are evicted, not leaked — the
soak bench (``benchmarks/perf_serve.py --soak``) pins flat RSS over
tens of thousands of session opens.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..obs import MetricsHTTPExporter
from .protocol import FrameError, recv_frame, send_frame
from .replica_set import ReplicaSet
from .server import PolicyServer, Session, SessionError, Ticket
from .sessions import SessionStore

__all__ = ["Gateway", "GatewayConfig"]


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs for :class:`Gateway`.

    ``max_pending`` bounds gateway-wide in-flight ``act`` requests
    (admission control; overflow answers ``BUSY``).
    ``default_deadline_ms`` is the per-request deadline when the client
    sends none; ``idle_timeout_s`` closes connections with no complete
    request for that long. ``max_sessions``/``session_ttl_s`` feed the
    LRU/TTL session store (``None`` disables either bound).
    ``metrics_port`` (``None`` = off, ``0`` = ephemeral) serves the
    gateway's metrics registry as Prometheus text exposition on
    ``http://host:metrics_port/metrics`` while the gateway runs; the
    bound address is ``Gateway.metrics_address``.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is Gateway.address[1]
    max_pending: int = 64
    default_deadline_ms: float = 5000.0
    idle_timeout_s: float = 30.0
    max_sessions: Optional[int] = None
    session_ttl_s: Optional[float] = None
    metrics_port: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.max_pending, bool) or not isinstance(
            self.max_pending, (int, np.integer)
        ):
            raise ValueError(f"max_pending must be an int, got {self.max_pending!r}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if not np.isfinite(self.default_deadline_ms) or self.default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be finite and > 0, "
                f"got {self.default_deadline_ms}"
            )
        if not np.isfinite(self.idle_timeout_s) or self.idle_timeout_s <= 0:
            raise ValueError(
                f"idle_timeout_s must be finite and > 0, got {self.idle_timeout_s}"
            )
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {self.max_sessions}")
        if self.session_ttl_s is not None and not self.session_ttl_s > 0:
            raise ValueError(f"session_ttl_s must be > 0, got {self.session_ttl_s}")
        if self.metrics_port is not None:
            if isinstance(self.metrics_port, bool) or not isinstance(
                self.metrics_port, (int, np.integer)
            ):
                raise ValueError(
                    f"metrics_port must be an int, got {self.metrics_port!r}"
                )
            if self.metrics_port < 0:
                raise ValueError(
                    f"metrics_port must be >= 0, got {self.metrics_port}"
                )


def _sum_series(snapshot: Dict[str, dict], name: str, **labels: str) -> float:
    """Sum a family's series values, filtered by label equality."""
    family = snapshot.get(name)
    if not family:
        return 0.0
    total = 0.0
    for series in family.get("series", []):
        series_labels = series.get("labels", {})
        if all(series_labels.get(k) == v for k, v in labels.items()):
            total += series.get("value", 0.0)
    return total


class _Handler(socketserver.BaseRequestHandler):
    """One thread per connection: framed request/response loop."""

    def handle(self) -> None:
        gateway: "Gateway" = self.server.gateway  # type: ignore[attr-defined]
        sock: socket.socket = self.request
        sock.settimeout(gateway.config.idle_timeout_s)
        opened: List[str] = []  # session ids this connection opened
        try:
            while True:
                try:
                    message = recv_frame(sock)
                except socket.timeout:
                    break  # idle client: reclaim the thread + sessions
                except (FrameError, OSError):
                    break
                if message is None:
                    break  # clean EOF
                # Deadline clock zero for this request: the moment its
                # frame finished arriving, before any decode/dispatch.
                arrival = gateway._clock()
                response = gateway._dispatch(message, opened, arrival)
                try:
                    send_frame(sock, response)
                except OSError:
                    break
        finally:
            gateway._connection_closed(opened)


class _Server(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    # The stdlib default backlog of 5 drops SYNs when a client fleet
    # connects at once; the kernel retransmit (~1s) then dominates any
    # latency measurement. One slot per plausible concurrent connect.
    request_queue_size = 128


class Gateway:
    """TCP gateway over a replica set; see the module docstring."""

    def __init__(
        self,
        replicas: Union[ReplicaSet, PolicyServer],
        config: Optional[GatewayConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config or GatewayConfig()
        # Monotonic seconds; injectable so tests can model a slow decode
        # or dispatch between frame arrival and the batch wait.
        self._clock = clock if clock is not None else time.monotonic
        if isinstance(replicas, PolicyServer):
            # Single-server convenience: a one-replica set around it.
            # The wrapper adopts the server's registry/tracer so the
            # server's existing series (keyed by its name) and the
            # gateway's land in one snapshot.
            wrapper = ReplicaSet(
                config=replicas.config,
                metrics=replicas.metrics,
                tracer=replicas.tracer,
            )
            wrapper._servers[replicas.name] = replicas
            wrapper._weights[replicas.name] = 1.0
            wrapper._order.append(replicas.name)
            replicas = wrapper
        self.replicas = replicas
        self.metrics = replicas.metrics
        self.tracer = replicas.tracer
        self._lock = threading.Lock()
        self._pending = 0  # gateway-wide in-flight act requests
        self._sessions = SessionStore(
            max_sessions=self.config.max_sessions,
            ttl_s=self.config.session_ttl_s,
            on_evict=self._evicted,
        )
        # Sessions whose request outlived its deadline: (ticket, handle).
        # They are ended once the batch resolves (_reap) — ending earlier
        # is impossible (the server refuses to end a pending session) and
        # dropping them would leak their serving state.
        self._quarantine: List[Tuple[Ticket, Session, str]] = []
        m = self.metrics
        self._m_requests = m.counter(
            "gateway_requests_total", "accepted gateway operations", ("op",)
        )
        self._m_failures = m.counter(
            "gateway_failures_total", "typed gateway failures", ("code",)
        )
        self._m_latency = m.histogram(
            "gateway_request_seconds",
            "frame-arrival to reply-ready latency of served acts",
            ("replica",),
        )
        m.gauge(
            "gateway_pending_requests", "acts in flight gateway-wide"
        ).set_function(lambda: float(self._pending))
        m.gauge(
            "gateway_quarantined_sessions", "timed-out sessions awaiting cleanup"
        ).set_function(lambda: float(len(self._quarantine)))
        self._m_cleaned = m.counter(
            "gateway_connections_cleaned_total",
            "sessions closed by disconnect cleanup",
        )
        m.gauge(
            "gateway_store_sessions", "sessions in the LRU/TTL store"
        ).set_function(lambda: float(self._sessions.stats()["sessions"]))
        self._m_evictions = m.counter(
            "gateway_store_evictions_total", "store evictions by reason", ("reason",)
        )
        self._metrics_http: Optional[MetricsHTTPExporter] = None
        self._tcp = _Server(
            (self.config.host, self.config.port), _Handler, bind_and_activate=True
        )
        self._tcp.gateway = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port is concrete even when 0 was asked."""
        return self._tcp.server_address[:2]

    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        """Bound (host, port) of the Prometheus endpoint, if serving."""
        if self._metrics_http is None:
            return None
        return self._metrics_http.address

    def start(self) -> "Gateway":
        """Serve connections in a background thread; replicas dispatch too."""
        if self._thread is None:
            self.replicas.start()
            if self.config.metrics_port is not None and self._metrics_http is None:
                self._metrics_http = MetricsHTTPExporter(
                    self.metrics,
                    host=self.config.host,
                    port=self.config.metrics_port,
                ).start()
            self._thread = threading.Thread(
                target=self._tcp.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="serve-gateway",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._metrics_http is not None:
            self._metrics_http.close()
            self._metrics_http = None
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._reap(wait=True)
        for session_id, handle in self._sessions.clear():
            self._end_quietly(session_id, handle)
        self.replicas.close()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self, snapshot: Optional[Dict[str, dict]] = None) -> Dict[str, Any]:
        """Legacy counter dict, derived from one registry snapshot.

        Every layer — gateway counters, the session store, each
        replica's server — publishes into the same registry, so a single
        ``metrics.snapshot()`` captures all of them at one point in time
        (the nested ``store``/``replicas`` sub-dicts used to be rebuilt
        outside any common lock). Pass ``snapshot`` to derive from an
        already-taken capture.
        """
        self._reap()  # deferred cleanup is observable through stats
        if snapshot is None:
            snapshot = self.metrics.snapshot()
        result = {
            "requests": int(_sum_series(snapshot, "gateway_requests_total")),
            "busy_rejections": int(
                _sum_series(snapshot, "gateway_failures_total", code="BUSY")
            ),
            "deadline_timeouts": int(
                _sum_series(snapshot, "gateway_failures_total", code="TIMEOUT")
            ),
            "session_errors": int(
                _sum_series(snapshot, "gateway_failures_total", code="SESSION")
            ),
            "bad_requests": int(
                _sum_series(snapshot, "gateway_failures_total", code="BAD_REQUEST")
            ),
            "connections_cleaned": int(
                _sum_series(snapshot, "gateway_connections_cleaned_total")
            ),
            "pending": int(_sum_series(snapshot, "gateway_pending_requests")),
            "quarantined": int(
                _sum_series(snapshot, "gateway_quarantined_sessions")
            ),
        }
        result["store"] = {
            "sessions": int(_sum_series(snapshot, "gateway_store_sessions")),
            "evicted_lru": int(
                _sum_series(snapshot, "gateway_store_evictions_total", reason="lru")
            ),
            "evicted_ttl": int(
                _sum_series(snapshot, "gateway_store_evictions_total", reason="ttl")
            ),
        }
        result["replicas"] = self.replicas.stats(snapshot)
        return result

    # ------------------------------------------------------------------
    # request dispatch (called from connection threads)
    # ------------------------------------------------------------------
    def _dispatch(
        self, message: Any, opened: List[str], arrival: Optional[float] = None
    ) -> Dict[str, Any]:
        self._reap()
        if not isinstance(message, dict) or "op" not in message:
            return self._bad_request("message must be an object with an 'op'")
        op = message.get("op")
        try:
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "stats":
                # One registry snapshot backs both views: the legacy
                # counter dict and the full metrics export.
                snapshot = self.metrics.snapshot()
                return {
                    "ok": True,
                    "stats": self.stats(snapshot),
                    "metrics": snapshot,
                }
            if op == "open":
                return self._op_open(message, opened)
            if op == "act":
                return self._op_act(message, arrival)
            if op == "end":
                return self._op_end(message, opened)
            return self._bad_request(f"unknown op {op!r}")
        except SessionError as error:
            self._m_failures.labels("SESSION").inc()
            return {"ok": False, "error": "SESSION", "message": str(error)}
        except (TypeError, ValueError) as error:
            return self._bad_request(str(error))

    def _op_open(self, message: Dict[str, Any], opened: List[str]) -> Dict[str, Any]:
        num_users = int(message.get("num_users", 1))
        seed = message.get("seed")
        handle, replica = self.replicas.open_session(
            num_users=num_users,
            seed=None if seed is None else int(seed),
            deterministic=bool(message.get("deterministic", False)),
            key=message.get("key"),
        )
        self._sessions.put(handle.id, handle)
        opened.append(handle.id)
        self._m_requests.labels("open").inc()
        return {
            "ok": True,
            "session": handle.id,
            "replica": replica,
            "version": handle.version,
            "num_users": num_users,
        }

    def _op_act(
        self, message: Dict[str, Any], arrival: Optional[float] = None
    ) -> Dict[str, Any]:
        session_id = message.get("session")
        if not isinstance(session_id, str):
            return self._bad_request("act needs a 'session' id")
        obs = message.get("obs")
        if obs is None:
            return self._bad_request("act needs an 'obs' array")
        deadline_ms = float(
            message.get("deadline_ms", self.config.default_deadline_ms)
        )
        if not np.isfinite(deadline_ms) or deadline_ms <= 0:
            return self._bad_request(f"deadline_ms must be > 0, got {deadline_ms}")
        # The trace id rides the wire: a client-sent id is kept, anything
        # else gets a fresh one. It is carried into the microbatch queue
        # (the server stamps queue-wait/compute spans under it) and
        # returned in every act reply — success or typed failure.
        trace = message.get("trace")
        if not isinstance(trace, str) or not trace:
            trace = self.tracer.new_trace_id()
        started = arrival if arrival is not None else self._clock()
        handle = self._sessions.get(session_id)
        if handle is None:
            self._m_failures.labels("SESSION").inc()
            return {
                "ok": False,
                "error": "SESSION",
                "message": f"unknown session {session_id!r}",
                "trace": trace,
            }
        # Admission control: shed load before touching the server.
        with self._lock:
            if self._pending >= self.config.max_pending:
                pending = self._pending
            else:
                pending = None
                self._pending += 1
        if pending is not None:
            self._m_failures.labels("BUSY").inc()
            return {
                "ok": False,
                "error": "BUSY",
                "message": (
                    f"{pending} requests in flight "
                    f"(max_pending={self.config.max_pending}); retry later"
                ),
                "trace": trace,
            }
        self._m_requests.labels("act").inc()
        try:
            # The deadline clock started at frame arrival: whatever
            # decode, dispatch and admission already spent comes out of
            # the same budget the batch wait gets.
            remaining_s = deadline_ms / 1000.0
            if arrival is not None:
                remaining_s -= self._clock() - arrival
            if remaining_s <= 0.0:
                # Lapsed before the request ever reached the server:
                # nothing is in flight, so end the session directly
                # instead of quarantining it behind a ticket.
                self._sessions.pop(session_id)
                self._end_quietly(session_id, handle)
                self._m_failures.labels("TIMEOUT").inc()
                return {
                    "ok": False,
                    "error": "TIMEOUT",
                    "message": (
                        f"deadline of {deadline_ms:g} ms expired before "
                        f"dispatch; session {session_id!r} is closed"
                    ),
                    "trace": trace,
                }
            ticket = handle.submit(
                np.asarray(obs, dtype=np.float64), trace=trace
            )
            if not handle.server.running:
                handle.server.flush()
            try:
                result = ticket.result(timeout=remaining_s)
            except TimeoutError:
                self._quarantine_session(ticket, handle, session_id)
                self._m_failures.labels("TIMEOUT").inc()
                return {
                    "ok": False,
                    "error": "TIMEOUT",
                    "message": (
                        f"deadline of {deadline_ms:g} ms expired; "
                        f"session {session_id!r} is closed"
                    ),
                    "trace": trace,
                }
        finally:
            with self._lock:
                self._pending -= 1
        elapsed_s = max(self._clock() - started, 0.0)
        replica = handle.server.name
        self._m_latency.labels(replica).observe(elapsed_s)
        self.tracer.record(
            "gateway.act",
            trace,
            started,
            elapsed_s,
            session=session_id,
            replica=replica,
        )
        return {
            "ok": True,
            "session": session_id,
            "actions": result.actions,
            "log_probs": result.log_probs,
            "values": result.values,
            "version": result.version,
            "step": result.step,
            "trace": trace,
        }

    def _op_end(self, message: Dict[str, Any], opened: List[str]) -> Dict[str, Any]:
        session_id = message.get("session")
        if not isinstance(session_id, str):
            return self._bad_request("end needs a 'session' id")
        handle = self._sessions.pop(session_id)
        if handle is None:
            self._m_failures.labels("SESSION").inc()
            return {
                "ok": False,
                "error": "SESSION",
                "message": f"unknown session {session_id!r}",
            }
        handle.end()
        self.replicas.forget_session(session_id)
        if session_id in opened:
            opened.remove(session_id)
        self._m_requests.labels("end").inc()
        return {"ok": True, "session": session_id}

    def _bad_request(self, message: str) -> Dict[str, Any]:
        self._m_failures.labels("BAD_REQUEST").inc()
        return {"ok": False, "error": "BAD_REQUEST", "message": message}

    # ------------------------------------------------------------------
    # cleanup paths
    # ------------------------------------------------------------------
    def _quarantine_session(
        self, ticket: Ticket, handle: Session, session_id: str
    ) -> None:
        """A timed-out session: unusable now, ended when its batch lands."""
        self._sessions.pop(session_id)
        with self._lock:
            self._quarantine.append((ticket, handle, session_id))

    def _reap(self, wait: bool = False) -> None:
        """End quarantined sessions whose in-flight batch has resolved."""
        with self._lock:
            quarantined, self._quarantine = self._quarantine, []
        survivors = []
        for ticket, handle, session_id in quarantined:
            if wait:
                try:
                    ticket.result(timeout=5.0)
                except Exception:
                    pass
            if ticket.done():
                self._end_quietly(session_id, handle)
            else:
                survivors.append((ticket, handle, session_id))
        if survivors:
            with self._lock:
                self._quarantine.extend(survivors)

    def _evicted(self, session_id: str, handle: Session, reason: str) -> None:
        """SessionStore eviction: close the underlying server session."""
        self._m_evictions.labels(reason).inc()
        self._end_quietly(session_id, handle)

    def _connection_closed(self, opened: List[str]) -> None:
        """End every session this connection opened (disconnect cleanup)."""
        cleaned = 0
        for session_id in opened:
            handle = self._sessions.pop(session_id)
            if handle is not None:
                self._end_quietly(session_id, handle)
                cleaned += 1
        if cleaned:
            self._m_cleaned.inc(cleaned)

    def _end_quietly(self, session_id: str, handle: Session) -> None:
        try:
            if handle.alive:
                # A pending request means a batch is still in flight;
                # give it a moment to land, then end.
                for _ in range(50):
                    try:
                        handle.end()
                        break
                    except SessionError as error:
                        if "unserved" not in str(error):
                            break
                        handle.server.flush()
                        time.sleep(0.002)
        except Exception:
            pass
        self.replicas.forget_session(session_id)

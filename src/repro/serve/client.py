"""Client library for the serving gateway: handles, not strings.

:class:`GatewayClient` owns one TCP connection to a
:class:`~repro.serve.gateway.Gateway` and exposes the same handle-first
surface as in-process serving: ``client.open_session(...)`` returns a
:class:`RemoteSession` whose ``act``/``end``/``version`` mirror
:class:`repro.serve.server.Session`. ``act`` returns a real
:class:`~repro.serve.server.ActionResult`; the wire codec ships raw
float64 bytes, so remote results are bit-identical to in-process ones.

The gateway's typed failure responses surface as typed exceptions:

- ``BUSY`` → :class:`GatewayBusy` (request shed at admission; retry),
- ``TIMEOUT`` → :class:`DeadlineExceeded` (the session is gone — open a
  new one),
- ``SESSION`` → :class:`repro.serve.server.SessionError` (protocol
  misuse, same message as in-process),
- ``BAD_REQUEST`` and transport faults → :class:`GatewayError`.

A transport fault (socket timeout or error mid-frame) **poisons the
connection**: the client closes itself, and every later call raises
``GatewayError("client is closed")``. The alternative — reusing the
socket — would desynchronise the strict request/response stream: the
timed-out reply is still in flight, so the next request would read the
previous request's answer. Reconnect with a fresh client instead.

A client is **not** thread-safe: it runs a strict request/response loop
on one socket. Concurrency comes from many clients (each gateway
connection gets its own server thread), which is what the many-client
parity test drives.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .protocol import recv_frame, send_frame
from .server import ActionResult, SessionError

__all__ = [
    "DeadlineExceeded",
    "GatewayBusy",
    "GatewayClient",
    "GatewayError",
    "RemoteSession",
]


class GatewayError(RuntimeError):
    """Transport fault or gateway-rejected request (``BAD_REQUEST``)."""


class GatewayBusy(GatewayError):
    """Admission control shed the request (``BUSY``): back off and retry."""


class DeadlineExceeded(GatewayError):
    """The per-request deadline expired (``TIMEOUT``); the session is dead."""


class RemoteSession:
    """Handle for one gateway-hosted session (mirrors ``serve.Session``)."""

    __slots__ = (
        "_client", "id", "replica", "num_users", "_version", "_step",
        "_ended", "last_trace",
    )

    def __init__(
        self, client: "GatewayClient", session_id: str, replica: str,
        num_users: int, version: int,
    ) -> None:
        self._client = client
        self.id = session_id
        self.replica = replica
        self.num_users = num_users
        self._version = version
        self._step = 0
        self._ended = False
        #: Trace id of the most recent ``act`` exchange (set from the
        #: reply, so a gateway-minted id is visible too); look spans up
        #: with it on the gateway's tracer or in its span dumps.
        self.last_trace: Optional[str] = None

    @property
    def version(self) -> int:
        """Policy version that last served this session."""
        return self._version

    @property
    def steps(self) -> int:
        return self._step

    def act(
        self,
        obs: np.ndarray,
        deadline_ms: Optional[float] = None,
        trace: Optional[str] = None,
    ) -> ActionResult:
        """Serve one observation; bit-identical to in-process serving.

        ``trace`` pins the request's trace id (default: the gateway
        mints one); either way the id used comes back in ``last_trace``.
        """
        if self._ended:
            raise SessionError(f"session {self.id!r} already ended")
        message: Dict[str, Any] = {
            "op": "act",
            "session": self.id,
            "obs": np.asarray(obs, dtype=np.float64),
        }
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
        if trace is not None:
            message["trace"] = str(trace)
        try:
            reply = self._client._roundtrip(
                message,
                deadline_s=None if deadline_ms is None else float(deadline_ms) / 1000.0,
            )
        except DeadlineExceeded:
            self._ended = True  # the gateway quarantined the session
            raise
        self.last_trace = reply.get("trace")
        result = ActionResult(
            actions=reply["actions"],
            log_probs=reply["log_probs"],
            values=reply["values"],
            version=int(reply["version"]),
            step=int(reply["step"]),
        )
        self._version = result.version
        self._step = result.step
        return result

    def end(self) -> None:
        if self._ended:
            return
        self._client._roundtrip({"op": "end", "session": self.id})
        self._ended = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteSession(id={self.id!r}, replica={self.replica!r}, "
            f"steps={self._step}, ended={self._ended})"
        )


class GatewayClient:
    """One connection to a gateway; open sessions, act, read stats."""

    #: Slack added on top of a per-request deadline when it is used to
    #: raise the socket timeout: the gateway needs time to encode and
    #: flush its (typed) TIMEOUT reply after the deadline itself lapses.
    DEADLINE_MARGIN_S = 2.0

    def __init__(
        self, address: Tuple[str, int], timeout_s: float = 30.0
    ) -> None:
        self._timeout_s = timeout_s
        self._sock = socket.create_connection(address, timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False

    # ------------------------------------------------------------------
    def open_session(
        self,
        num_users: int = 1,
        seed: Optional[int] = None,
        deterministic: bool = False,
        key: Optional[str] = None,
    ) -> RemoteSession:
        """Open a routed session; returns its :class:`RemoteSession`."""
        message: Dict[str, Any] = {
            "op": "open",
            "num_users": num_users,
            "deterministic": deterministic,
        }
        if seed is not None:
            message["seed"] = seed
        if key is not None:
            message["key"] = key
        reply = self._roundtrip(message)
        return RemoteSession(
            self,
            session_id=reply["session"],
            replica=reply["replica"],
            num_users=num_users,
            version=int(reply["version"]),
        )

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"})["ok"])

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip({"op": "stats"})["stats"]

    def metrics(self) -> Dict[str, Any]:
        """Full metrics-registry snapshot from the gateway's ``stats`` op.

        The same point-in-time capture the legacy ``stats()`` dict is
        derived from: every family (gateway, store, per-replica serve
        metrics incl. latency histograms) in the registry's snapshot
        format.
        """
        return self._roundtrip({"op": "stats"})["metrics"]

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _roundtrip(
        self, message: Dict[str, Any], deadline_s: Optional[float] = None
    ) -> Dict[str, Any]:
        if self._closed:
            raise GatewayError("client is closed")
        restore: Optional[float] = None
        try:
            if deadline_s is not None:
                # A per-request deadline larger than the socket timeout
                # must not be cut short by it: the gateway would answer
                # with a typed TIMEOUT, but the socket would give up
                # first and surface a generic transport failure (tearing
                # down a healthy connection with it). Raise the timeout
                # for this exchange only.
                current = self._sock.gettimeout()
                needed = deadline_s + self.DEADLINE_MARGIN_S
                if current is not None and needed > current:
                    restore = current
                    self._sock.settimeout(needed)
            send_frame(self._sock, message)
            reply = recv_frame(self._sock)
        except (OSError, ValueError) as error:
            # The exchange died mid-frame: the stream may still carry a
            # late or partial reply, so any further request would read
            # the *previous* request's answer (off-by-one desync).
            # Poison the connection — the caller must reconnect.
            self.close()
            raise GatewayError(f"transport failure: {error}") from error
        finally:
            if restore is not None and not self._closed:
                try:
                    self._sock.settimeout(restore)
                except OSError:  # pragma: no cover - socket already dead
                    pass
        if reply is None:
            raise GatewayError("gateway closed the connection")
        if reply.get("ok"):
            return reply
        code = reply.get("error")
        detail = reply.get("message", "")
        if code == "BUSY":
            raise GatewayBusy(detail)
        if code == "TIMEOUT":
            raise DeadlineExceeded(detail)
        if code == "SESSION":
            raise SessionError(detail)
        raise GatewayError(f"{code}: {detail}")

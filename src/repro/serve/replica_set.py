"""Multi-replica serving: several live policy versions behind one front.

A :class:`ReplicaSet` holds named replicas — each its own
:class:`~repro.serve.server.PolicyServer` wrapping one policy version —
and routes sessions across them with a **deterministic seeded traffic
split**: the routing key (normally the set-generated session id) is
hashed with the set's seed into a fraction of [0, 1) and matched against
the replicas' cumulative weights. The same seed, weights and key always
pick the same replica — an A/B experiment is reproducible from its seed,
and adding load never reshuffles existing assignments.

Per-replica lifecycle rides the version-stamped hot-swap protocol the
single server already speaks (:meth:`~repro.serve.server.PolicyServer.
swap_policy`): :meth:`swap`/:meth:`publish` update one replica's weights
in place between its microbatches, and :meth:`retire` removes a replica
— it leaves the routing table first (no new sessions), then its
dispatcher drains in-flight batches (``stop(drain=True)``), then its
remaining sessions are closed. Sessions never migrate: a session's
noise stream, previous actions and recurrent state live on the replica
that opened it, so migrating would break the bit-identity contract.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Optional, Tuple

from ..obs import MetricsRegistry, Tracer
from ..rl.policies import ActorCriticBase
from .server import PolicyServer, ServeConfig, Session, SessionError, snapshot_policy

__all__ = ["ReplicaSet"]


def _route_fraction(seed: int, key: str) -> float:
    """Deterministic hash of (seed, key) into [0, 1)."""
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class ReplicaSet:
    """Named policy replicas with seeded deterministic session routing.

    ``add(name, policy, weight=...)`` registers a replica (its own
    :class:`PolicyServer`); ``open_session`` routes a new session to a
    replica and returns its :class:`~repro.serve.server.Session` handle
    plus the replica's name. Session ids are set-generated and globally
    unique across replicas (``g000000, g000001, ...``) unless the caller
    provides one.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        seed: int = 0,
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.seed = seed
        # One registry/tracer shared by every replica: each replica's
        # series are children of the same families, keyed by its name,
        # so a single snapshot captures the whole set coherently.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self._lock = threading.RLock()
        self._servers: Dict[str, PolicyServer] = {}
        self._weights: Dict[str, float] = {}
        self._order: List[str] = []  # routing order = registration order
        self._session_counter = 0
        self._session_replica: Dict[str, str] = {}
        self._retired: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        policy: ActorCriticBase,
        weight: float = 1.0,
        config: Optional[ServeConfig] = None,
    ) -> PolicyServer:
        """Register a replica; returns its :class:`PolicyServer`."""
        if not name:
            raise ValueError("replica name must be non-empty")
        if not weight > 0:
            raise ValueError(f"replica weight must be > 0, got {weight}")
        with self._lock:
            if name in self._servers:
                raise ValueError(f"replica {name!r} already registered")
            server = PolicyServer(
                policy,
                config or self.config,
                metrics=self.metrics,
                tracer=self.tracer,
                name=name,
            )
            self._servers[name] = server
            self._weights[name] = float(weight)
            self._order.append(name)
            return server

    def replica(self, name: str) -> PolicyServer:
        with self._lock:
            server = self._servers.get(name)
            if server is None:
                raise KeyError(f"unknown replica {name!r}")
            return server

    def names(self) -> List[str]:
        with self._lock:
            return list(self._order)

    @property
    def num_replicas(self) -> int:
        with self._lock:
            return len(self._order)

    def set_weight(self, name: str, weight: float) -> None:
        """Re-balance the traffic split (affects new sessions only)."""
        if not weight > 0:
            raise ValueError(f"replica weight must be > 0, got {weight}")
        with self._lock:
            if name not in self._servers:
                raise KeyError(f"unknown replica {name!r}")
            self._weights[name] = float(weight)

    # ------------------------------------------------------------------
    # routing + sessions
    # ------------------------------------------------------------------
    def route(self, key: str) -> str:
        """Deterministically pick a replica name for a routing key."""
        with self._lock:
            if not self._order:
                raise SessionError("replica set is empty")
            fraction = _route_fraction(self.seed, key)
            total = sum(self._weights[name] for name in self._order)
            cumulative = 0.0
            for name in self._order:
                cumulative += self._weights[name] / total
                if fraction < cumulative:
                    return name
            return self._order[-1]  # fraction == ~1.0 edge

    def open_session(
        self,
        session_id: Optional[str] = None,
        num_users: int = 1,
        seed: Optional[int] = None,
        deterministic: bool = False,
        key: Optional[str] = None,
    ) -> Tuple[Session, str]:
        """Open a session on the routed replica; returns (handle, replica).

        ``key`` overrides the routing key (default: the session id), so
        a caller can pin all of one user's sessions to one arm of an A/B
        split while ids stay unique.
        """
        with self._lock:
            if session_id is None:
                session_id = f"g{self._session_counter:06d}"
                self._session_counter += 1
            elif session_id in self._session_replica:
                raise SessionError(f"session {session_id!r} already exists")
            name = self.route(key if key is not None else session_id)
            handle = self._servers[name].session(
                session_id,
                num_users=num_users,
                seed=seed,
                deterministic=deterministic,
            )
            self._session_replica[session_id] = name
            return handle, name

    def get_session(self, session_id: str) -> Tuple[Session, str]:
        """Attach to an open session wherever it lives."""
        with self._lock:
            name = self._session_replica.get(session_id)
            if name is None:
                raise SessionError(f"unknown session {session_id!r}")
            return self._servers[name].get_session(session_id), name

    def end_session(self, session_id: str) -> None:
        with self._lock:
            handle, _ = self.get_session(session_id)
            handle.end()
            del self._session_replica[session_id]

    def forget_session(self, session_id: str) -> None:
        """Drop routing bookkeeping for an id (session already closed)."""
        with self._lock:
            self._session_replica.pop(session_id, None)

    @property
    def num_sessions(self) -> int:
        with self._lock:
            return len(self._session_replica)

    # ------------------------------------------------------------------
    # per-replica lifecycle
    # ------------------------------------------------------------------
    def swap(self, name: str, payload: bytes, version: Optional[int] = None) -> int:
        """Hot-swap one replica's weights (full stamped-archive rulebook)."""
        return self.replica(name).swap_policy(payload, version=version)

    def publish(
        self, name: str, policy: ActorCriticBase, version: Optional[int] = None
    ) -> int:
        return self.swap(name, snapshot_policy(policy), version=version)

    def retire(self, name: str, drain: bool = True) -> int:
        """Remove a replica; returns how many of its sessions were closed.

        Order matters: the replica leaves the routing table first (new
        sessions can no longer land on it), in-flight batches drain
        (``stop(drain=True)`` serves everything queued), then remaining
        sessions close and the server shuts down.
        """
        with self._lock:
            server = self.replica(name)
            self._order.remove(name)
            del self._weights[name]
        server.stop(drain=drain)
        with self._lock:
            orphans = [
                sid
                for sid, replica in self._session_replica.items()
                if replica == name
            ]
            for sid in orphans:
                self._session_replica.pop(sid, None)
            del self._servers[name]
            self._retired[name] = server.version
        server.close()
        return len(orphans)

    # ------------------------------------------------------------------
    # whole-set lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReplicaSet":
        """Start every replica's background dispatcher."""
        with self._lock:
            servers = list(self._servers.values())
        for server in servers:
            server.start()
        return self

    def flush(self) -> int:
        """Synchronous drive: flush every replica; returns requests served."""
        with self._lock:
            servers = list(self._servers.values())
        return sum(server.flush() for server in servers)

    def stats(self, snapshot: Optional[Dict[str, dict]] = None) -> Dict[str, object]:
        """Per-replica counters plus routing state.

        With a precomputed ``metrics.snapshot()``, every replica's
        sub-dict is derived from that one capture (see
        ``PolicyServer.stats``) instead of locking each server in turn.
        """
        with self._lock:
            return {
                "replicas": {
                    name: self._servers[name].stats(snapshot) for name in self._order
                },
                "weights": dict(self._weights),
                "sessions": len(self._session_replica),
                "retired": dict(self._retired),
            }

    def close(self) -> None:
        with self._lock:
            servers = list(self._servers.values())
            self._servers.clear()
            self._weights.clear()
            self._order.clear()
            self._session_replica.clear()
        for server in servers:
            server.close()

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Wire protocol for the serving gateway: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON. JSON keeps the protocol self-describing
and debuggable (``nc`` + a hexdump is a working client); the one thing
JSON cannot carry losslessly is a float64 array, so ndarrays travel as
tagged base64 of their raw bytes::

    {"__ndarray__": [3, 2], "dtype": "<f8", "b64": "..."}

``tobytes`` → ``frombuffer`` round-trips every bit pattern (including
NaN payloads), which is what makes gateway-served actions bit-identical
to in-process serving — the transport never touches the numbers.

Reading side: :class:`FrameReader` is an incremental decoder for
non-blocking/fragmented streams (feed it whatever chunk arrived, get
back every completed message), and :func:`recv_frame` is the blocking
socket convenience the thread-per-connection gateway and client use.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Any, List, Optional

import numpy as np

__all__ = [
    "FrameError",
    "FrameReader",
    "MAX_FRAME_BYTES",
    "decode_payload",
    "encode_payload",
    "pack_frame",
    "recv_frame",
    "send_frame",
    "unpack_frame",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload; a corrupt length prefix must not
#: make a reader try to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(ValueError):
    """Malformed frame: oversized length prefix, bad JSON, bad ndarray tag."""


# ----------------------------------------------------------------------
# payload codec: JSON-safe structures with tagged ndarrays
# ----------------------------------------------------------------------
def encode_payload(value: Any) -> Any:
    """Recursively convert a message into JSON-serialisable form."""
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": list(value.shape),
            "dtype": value.dtype.str,
            "b64": base64.b64encode(np.ascontiguousarray(value).tobytes()).decode(
                "ascii"
            ),
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {key: encode_payload(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_payload(item) for item in value]
    return value


def decode_payload(value: Any) -> Any:
    """Reverse :func:`encode_payload`; tagged ndarrays come back bit-exact."""
    if isinstance(value, dict):
        if "__ndarray__" in value:
            try:
                shape = tuple(int(dim) for dim in value["__ndarray__"])
                dtype = np.dtype(value["dtype"])
                raw = base64.b64decode(value["b64"])
                array = np.frombuffer(raw, dtype=dtype).reshape(shape)
            except (KeyError, TypeError, ValueError) as error:
                raise FrameError(f"bad ndarray tag: {error}") from error
            return array.copy()  # writable, owns its memory
        return {key: decode_payload(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_payload(item) for item in value]
    return value


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def pack_frame(message: Any) -> bytes:
    """Serialise one message into a length-prefixed frame."""
    body = json.dumps(encode_payload(message), separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def unpack_frame(body: bytes) -> Any:
    """Decode one frame body (the bytes after the length prefix)."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"bad frame body: {error}") from error
    return decode_payload(message)


class FrameReader:
    """Incremental frame decoder for fragmented byte streams.

    ``feed`` never blocks and tolerates any fragmentation — one byte at a
    time, several frames per chunk, a frame split across chunks — and
    returns every message completed by the newest chunk, in order.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> List[Any]:
        self._buffer.extend(chunk)
        messages: List[Any] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"frame length {length} exceeds {MAX_FRAME_BYTES}"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            messages.append(unpack_frame(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)


# ----------------------------------------------------------------------
# blocking socket helpers (thread-per-connection paths)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message: Any) -> None:
    sock.sendall(pack_frame(message))


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """Read exactly one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("connection closed mid-frame")
    return unpack_frame(body)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """``count`` bytes, ``None`` on EOF before the first byte, error mid-read."""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if not chunks:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)

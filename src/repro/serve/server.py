"""Microbatched policy inference serving with hot-swappable replicas.

A :class:`PolicyServer` holds one serving **policy replica** and many
concurrent user **sessions**. Each session is the serving analogue of one
member env of a rollout pool: it owns a block of ``num_users`` rows, its
own noise stream, its own previous-action vector and — for recurrent
policies — its own extractor state, all kept server-side so clients only
ever ship observations and receive actions.

``act`` requests from different sessions are **microbatched**: pending
requests are stacked on the user axis (arrival order) and answered by a
single batched ``policy.act`` — the same stacked-forward kernel the
rollout engine uses (:mod:`repro.rl.vec`), so one forward pass serves the
whole window instead of one pass per session. The batch is assembled with
exactly the ingredients that make vectorized rollouts bit-reproduce
sequential ones:

- **row-stable matmuls** — every nn-engine forward computes row ``i`` of a
  stacked batch exactly as it would compute that row alone;
- **per-session noise streams** — a :class:`~repro.rl.vec.BlockRNG` over
  the batch's session blocks draws each session's action noise from that
  session's own generator, whoever shares the batch;
- **per-session context groups** — ``policy.set_rollout_groups`` scopes
  group-level context (the Sim2Rec SADAE υ-embedding) to each session's
  block, so υ never mixes users across sessions;
- **per-session recurrent state** — the extractor state is scattered
  back to each session after the batch and restored (row-exact) before
  the next one, so an interleaved session's hidden state evolves exactly
  as it would serving alone.

Together these make microbatched serving **bit-identical** to serving
every session by itself, one ``policy.act`` per request — the contract
``tests/serve/`` proves across policy families, arrival interleavings
and fuzzed batch layouts.

Hot swap: :meth:`PolicyServer.swap_policy` accepts a version-stamped
``state_to_bytes`` archive of :meth:`~repro.rl.policies.ActorCriticBase.
replica_state` (the same protocol :meth:`repro.rl.workers.
ShardedVecEnvPool.sync_policy` broadcasts to rollout workers). A torn
archive fails its CRC (:class:`~repro.nn.serialization.StateChecksumError`)
before anything is applied; a stale version raises
:class:`~repro.rl.workers.StaleReplicaError`; a byte-equal archive is
skipped without a version bump. The swap takes the batch lock, so it can
only land *between* microbatches — a session never sees a half-applied
snapshot, and every response carries the version that produced it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.serialization import state_from_bytes, state_to_bytes
from ..obs import BATCH_ROWS_BUCKETS, MetricsRegistry, Tracer
from ..rl.policies import ActorCriticBase
from ..rl.vec import BlockRNG
from ..rl.workers import StaleReplicaError

__all__ = [
    "ActionResult",
    "PolicyServer",
    "ServeConfig",
    "Session",
    "SessionError",
    "Ticket",
    "snapshot_policy",
]


class SessionError(RuntimeError):
    """Invalid session-protocol use (unknown id, double submit, ...)."""


def snapshot_policy(policy: ActorCriticBase) -> bytes:
    """Serialize a policy into a hot-swappable replica archive.

    The archive is ``state_to_bytes(policy.replica_state())`` — parameters
    plus extra buffers (e.g. the Sim2Rec SADAE normaliser), CRC-protected —
    exactly what :meth:`PolicyServer.swap_policy` consumes and what the
    rollout workers' replica broadcast ships.
    """
    return state_to_bytes(policy.replica_state())


@dataclass(frozen=True)
class ServeConfig:
    """Microbatching knobs for :class:`PolicyServer`.

    ``max_batch_size`` caps how many pending requests one batched
    ``policy.act`` may serve (the user-axis row count is the sum of their
    sessions' ``num_users``). ``max_wait_ms`` bounds how long the
    background dispatcher holds an incomplete window open for stragglers;
    the synchronous :meth:`PolicyServer.flush` path ignores it (it drains
    whatever is pending). ``seed`` feeds the server's session seed
    sequence — sessions created without an explicit seed/generator get
    deterministic spawned child streams.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.max_batch_size, bool) or not isinstance(
            self.max_batch_size, (int, np.integer)
        ):
            raise ValueError(
                f"max_batch_size must be an int, got {self.max_batch_size!r}"
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if isinstance(self.max_wait_ms, bool) or not isinstance(
            self.max_wait_ms, (int, float, np.integer, np.floating)
        ):
            raise ValueError(f"max_wait_ms must be a number, got {self.max_wait_ms!r}")
        if not np.isfinite(self.max_wait_ms) or self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be finite and >= 0, got {self.max_wait_ms}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, (int, np.integer)):
            raise ValueError(f"seed must be an int, got {self.seed!r}")


@dataclass
class ActionResult:
    """One served action batch for one session.

    ``actions`` / ``log_probs`` / ``values`` are the session's own rows of
    the microbatched ``policy.act`` (shapes ``[num_users, action_dim]`` /
    ``[num_users]`` / ``[num_users]``), ``version`` the policy version
    that produced them, ``step`` the session's 1-based act count.
    """

    actions: np.ndarray
    log_probs: np.ndarray
    values: np.ndarray
    version: int
    step: int


class Ticket:
    """Handle for one submitted request; resolved by the next batch."""

    __slots__ = ("_event", "_result", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Optional[ActionResult] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ActionResult:
        """Block until the request is served; raises what the batch raised."""
        if not self._event.wait(timeout):
            raise TimeoutError("request not served within timeout")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _resolve(self, result: ActionResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _Session:
    __slots__ = (
        "id",
        "num_users",
        "rng",
        "deterministic",
        "prev_actions",
        "recurrent_state",
        "steps",
        "pending",
        "version",
    )

    def __init__(
        self,
        session_id: str,
        num_users: int,
        rng: np.random.Generator,
        deterministic: bool,
        version: int,
    ) -> None:
        self.id = session_id
        self.num_users = num_users
        self.rng = rng
        self.deterministic = deterministic
        self.prev_actions: Optional[np.ndarray] = None  # zeros until first act
        self.recurrent_state: Optional[Any] = None  # fresh = initial state
        self.steps = 0
        self.pending = False
        self.version = version  # policy version that last served this session


class Session:
    """Handle for one open serving session — the primary request surface.

    Obtained from :meth:`PolicyServer.session` (create) or
    :meth:`PolicyServer.get_session` (attach to an existing id). The
    handle owns no state of its own: every call goes straight to the
    server, so any number of handles to the same id behave identically,
    and a handle whose session was ended (by anyone) raises
    :class:`SessionError` on use. The stringly-typed server methods
    (``submit(session_id, obs)`` etc.) survive as thin wrappers that
    resolve the id and delegate here.
    """

    __slots__ = ("_server", "_state")

    def __init__(self, server: "PolicyServer", state: _Session) -> None:
        self._server = server
        self._state = state

    @property
    def id(self) -> str:
        return self._state.id

    @property
    def num_users(self) -> int:
        return self._state.num_users

    @property
    def steps(self) -> int:
        """1-based count of served acts (0 before the first)."""
        return self._state.steps

    @property
    def version(self) -> int:
        """Policy version that last served this session.

        Before the first act: the serving version when the session was
        opened. Updated by every served batch, so a hot swap between two
        acts is visible as a version step on the handle.
        """
        return self._state.version

    @property
    def server(self) -> "PolicyServer":
        """The :class:`PolicyServer` this session lives on."""
        return self._server

    @property
    def alive(self) -> bool:
        """Whether the session is still registered with the server."""
        return self._server._is_registered(self._state)

    def submit(self, obs: np.ndarray, trace: Optional[str] = None) -> Ticket:
        """Queue one ``act`` request; see :meth:`PolicyServer.submit`.

        ``trace`` attaches a trace id: the batch that serves this request
        records its queue-wait and compute spans under that id on the
        server's :class:`~repro.obs.Tracer`.
        """
        return self._server._submit(self._state, obs, trace=trace)

    def act(
        self,
        obs: np.ndarray,
        timeout: Optional[float] = None,
        trace: Optional[str] = None,
    ) -> ActionResult:
        """Submit and wait for the served result (single-call convenience)."""
        ticket = self.submit(obs, trace=trace)
        if not self._server._running:
            self._server.flush()
        return ticket.result(timeout)

    def end(self) -> None:
        """Close the session; pending requests must be served first."""
        self._server._end(self._state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(id={self._state.id!r}, num_users={self._state.num_users}, "
            f"steps={self._state.steps}, alive={self.alive})"
        )


class _Request:
    __slots__ = ("session", "obs", "ticket", "arrived", "trace")

    def __init__(
        self,
        session: _Session,
        obs: np.ndarray,
        arrived: float,
        trace: Optional[str] = None,
    ) -> None:
        self.session = session
        self.obs = obs
        self.ticket = Ticket()
        self.arrived = arrived
        self.trace = trace


def _series_for_replica(snapshot: Dict[str, dict], replica: str) -> Dict[Any, float]:
    """Flatten one replica's scalar series out of a registry snapshot.

    Keys are metric names, except multi-label families (e.g.
    ``serve_swaps_total``) which key by ``(name, outcome)``.
    """
    out: Dict[Any, float] = {}
    for name, family in snapshot.items():
        for series in family.get("series", []):
            labels = series.get("labels", {})
            if labels.get("replica") != replica:
                continue
            value = series.get("value")
            if value is None:
                continue  # histogram series; scalars come from their gauges
            outcome = labels.get("outcome")
            out[(name, outcome) if outcome is not None else name] = value
    return out


class PolicyServer:
    """Concurrent-session policy inference with microbatching and hot swap.

    Two drive modes share one request queue:

    - **synchronous** — :meth:`submit` then :meth:`flush` (or the
      :meth:`act` convenience): the caller decides when the window closes,
      which makes batch composition fully deterministic (tests, benches,
      single-threaded drivers);
    - **background** — :meth:`start` runs a dispatcher thread that closes
      the window when ``max_batch_size`` requests are pending or the
      oldest has waited ``max_wait_ms``; clients block on
      :meth:`Ticket.result`.

    The server owns ``policy`` as its serving replica: hot swaps load new
    weights into it in place. See the module docstring for the
    bit-identity and swap-atomicity contracts.
    """

    def __init__(
        self,
        policy: ActorCriticBase,
        config: Optional[ServeConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        name: str = "default",
    ) -> None:
        self.config = config or ServeConfig()
        self.name = str(name)
        self._policy = policy
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._sessions: Dict[str, _Session] = {}
        self._queue: Deque[_Request] = deque()
        self._seed_seq = np.random.SeedSequence(self.config.seed)
        self._session_counter = 0
        self._version = 1
        state = policy.replica_state()
        self._signature = self._signature_of(state)
        self._cache = {key: np.array(value) for key, value in state.items()}
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._closed = False
        # Every server is instrumented (creating its own registry when
        # none is shared in): the serve parity suites therefore run with
        # metrics live, which is the standing proof that instrumentation
        # is bit-neutral. A ReplicaSet passes one shared registry so all
        # replicas' series land in one snapshot, keyed by this name.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self._register_metrics()

    def _register_metrics(self) -> None:
        m, replica = self.metrics, self.name
        self._m_requests = m.counter(
            "serve_requests_total", "act requests accepted into the queue", ("replica",)
        ).labels(replica)
        self._m_batches = m.counter(
            "serve_batches_total", "microbatched policy.act calls", ("replica",)
        ).labels(replica)
        self._m_batch_rows = m.histogram(
            "serve_batch_rows",
            "user-axis rows per microbatch window",
            ("replica",),
            buckets=BATCH_ROWS_BUCKETS,
        ).labels(replica)
        self._m_batch_rows_max = m.gauge(
            "serve_batch_rows_max", "largest microbatch served (rows)", ("replica",)
        ).labels(replica)
        self._m_queue_wait = m.histogram(
            "serve_request_queue_wait_seconds",
            "submit-to-batch-start wait per request",
            ("replica",),
        ).labels(replica)
        self._m_compute = m.histogram(
            "serve_request_compute_seconds",
            "batched policy.act compute time per request's window",
            ("replica",),
        ).labels(replica)
        self._m_queue_depth = m.gauge(
            "serve_queue_depth", "requests currently queued", ("replica",)
        ).labels(replica)
        self._m_queue_depth.set_function(lambda: float(len(self._queue)))
        self._m_queue_peak = m.gauge(
            "serve_queue_depth_peak", "high-water mark of the request queue", ("replica",)
        ).labels(replica)
        self._m_sessions = m.gauge(
            "serve_sessions", "open sessions", ("replica",)
        ).labels(replica)
        self._m_sessions.set_function(lambda: float(len(self._sessions)))
        swaps = m.counter(
            "serve_swaps_total", "hot-swap attempts by outcome", ("replica", "outcome")
        )
        self._m_swaps_applied = swaps.labels(replica, "applied")
        self._m_swaps_skipped = swaps.labels(replica, "skipped")
        self._m_version = m.gauge(
            "serve_policy_version", "serving policy version", ("replica",)
        ).labels(replica)
        self._m_version.set(self._version)

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def session(
        self,
        session_id: Optional[str] = None,
        num_users: int = 1,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        deterministic: bool = False,
    ) -> Session:
        """Open a session; returns its :class:`Session` handle.

        ``num_users`` is the session's row count (a "session" may be a
        whole user group, Sim2Rec-style). Noise stream precedence:
        explicit ``rng`` > ``seed`` (``default_rng(seed)``) > a child
        spawned from the server's seed sequence. ``deterministic``
        sessions are served with distribution modes and draw no noise.
        """
        if num_users < 1:
            raise ValueError("num_users must be >= 1")
        with self._lock:
            self._check_serving()
            if session_id is None:
                session_id = f"s{self._session_counter:06d}"
                self._session_counter += 1
            if session_id in self._sessions:
                raise SessionError(f"session {session_id!r} already exists")
            if rng is None:
                if seed is not None:
                    rng = np.random.default_rng(seed)
                else:
                    rng = np.random.default_rng(self._seed_seq.spawn(1)[0])
            state = _Session(session_id, num_users, rng, deterministic, self._version)
            self._sessions[session_id] = state
            return Session(self, state)

    def get_session(self, session_id: str) -> Session:
        """Attach a :class:`Session` handle to an already-open session."""
        with self._lock:
            state = self._sessions.get(session_id)
            if state is None:
                raise SessionError(f"unknown session {session_id!r}")
            return Session(self, state)

    def create_session(
        self,
        session_id: Optional[str] = None,
        num_users: int = 1,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        deterministic: bool = False,
    ) -> str:
        """Open a session; returns its id (legacy stringly-typed surface).

        Thin wrapper over :meth:`session` — prefer the handle it returns.
        """
        return self.session(
            session_id,
            num_users=num_users,
            seed=seed,
            rng=rng,
            deterministic=deterministic,
        ).id

    def end_session(self, session_id: str) -> None:
        """Close a session by id (legacy wrapper over ``Session.end``)."""
        self.get_session(session_id).end()

    def _is_registered(self, state: _Session) -> bool:
        with self._lock:
            return self._sessions.get(state.id) is state

    def _end(self, state: _Session) -> None:
        with self._lock:
            if self._sessions.get(state.id) is not state:
                raise SessionError(f"unknown session {state.id!r}")
            if state.pending:
                raise SessionError(
                    f"session {state.id!r} has an unserved request; "
                    "flush (or await the ticket) before ending it"
                )
            del self._sessions[state.id]

    @property
    def num_sessions(self) -> int:
        with self._lock:
            return len(self._sessions)

    @property
    def running(self) -> bool:
        """Whether the background dispatcher thread is active."""
        return self._running

    @property
    def version(self) -> int:
        """The serving policy version (bumped by each applied swap)."""
        with self._lock:
            return self._version

    def stats(self, snapshot: Optional[Dict[str, dict]] = None) -> Dict[str, Any]:
        """Legacy counter dict, now read off the metrics registry.

        Pass a precomputed ``registry.snapshot()`` to derive the dict
        from one coherent point-in-time capture (how ``Gateway.stats()``
        snapshots every layer at once); without one the live registry is
        read directly.
        """
        if snapshot is not None:
            series = _series_for_replica(snapshot, self.name)
            return {
                "requests": int(series.get("serve_requests_total", 0)),
                "batches": int(series.get("serve_batches_total", 0)),
                "max_batch_rows": int(series.get("serve_batch_rows_max", 0)),
                "swaps_applied": int(series.get(("serve_swaps_total", "applied"), 0)),
                "swaps_skipped": int(series.get(("serve_swaps_total", "skipped"), 0)),
                "sessions": int(series.get("serve_sessions", 0)),
                "pending": int(series.get("serve_queue_depth", 0)),
                "version": int(series.get("serve_policy_version", 0)),
            }
        with self._lock:
            sessions = len(self._sessions)
            pending = len(self._queue)
            version = self._version
        return {
            "requests": int(self._m_requests.value),
            "batches": int(self._m_batches.value),
            "max_batch_rows": int(self._m_batch_rows_max.value),
            "swaps_applied": int(self._m_swaps_applied.value),
            "swaps_skipped": int(self._m_swaps_skipped.value),
            "sessions": sessions,
            "pending": pending,
            "version": version,
        }

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self, session_id: str, obs: np.ndarray, trace: Optional[str] = None
    ) -> Ticket:
        """Queue one ``act`` request by id (legacy wrapper over
        ``Session.submit``); returns a :class:`Ticket`."""
        return self._submit(self._require(session_id), obs, trace=trace)

    def _require(self, session_id: str) -> _Session:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise SessionError(f"unknown session {session_id!r}")
            return session

    def _submit(
        self, session: _Session, obs: np.ndarray, trace: Optional[str] = None
    ) -> Ticket:
        """Queue one ``act`` request; returns a :class:`Ticket`.

        ``obs`` is the session's stacked observation block
        ``[num_users, state_dim]`` (a 1-D vector is accepted for
        single-user sessions). One request per session may be in flight —
        a session's next observation depends on its previous action, so a
        second submit before the first is served can only be a protocol
        bug.
        """
        obs = np.asarray(obs, dtype=np.float64)
        if obs.ndim == 1:
            obs = obs.reshape(1, -1)
        with self._cond:
            self._check_serving()
            if self._sessions.get(session.id) is not session:
                raise SessionError(f"unknown session {session.id!r}")
            if session.pending:
                raise SessionError(
                    f"session {session.id!r} already has a request in flight"
                )
            if obs.shape != (session.num_users, self._policy.state_dim):
                raise SessionError(
                    f"session {session.id!r} expects observations of shape "
                    f"{(session.num_users, self._policy.state_dim)}, got {obs.shape}"
                )
            request = _Request(session, obs, time.monotonic(), trace=trace)
            session.pending = True
            self._queue.append(request)
            self._m_requests.inc()
            self._m_queue_peak.set_max(len(self._queue))
            self._cond.notify_all()
            return request.ticket

    def flush(self) -> int:
        """Serve every queued request now (in ≤ ``max_batch_size`` windows).

        Returns the number of requests served. Safe to call with the
        background dispatcher running (both drain under the batch lock).
        """
        served = 0
        with self._lock:
            while self._queue:
                batch = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue), self.config.max_batch_size))
                ]
                self._process_batch(batch)
                served += len(batch)
        return served

    def act(
        self, session_id: str, obs: np.ndarray, timeout: Optional[float] = None
    ) -> ActionResult:
        """Submit and wait by id (legacy wrapper over ``Session.act``).

        Without the background dispatcher the request is flushed
        immediately (a one-request batch); with it, the call blocks until
        the dispatcher's window closes.
        """
        return self.get_session(session_id).act(obs, timeout)

    # ------------------------------------------------------------------
    # microbatch kernel
    # ------------------------------------------------------------------
    def _process_batch(self, batch: Sequence[_Request]) -> None:
        """One batched ``policy.act`` per determinism class, lock held."""
        # ``deterministic`` is a batch-wide flag on policy.act, so a mixed
        # window is served as (up to) two stacked calls. Per-session
        # bit-identity is indifferent to the split: each session's rows,
        # noise stream and context block are its own either way.
        for flag in (False, True):
            sub = [r for r in batch if r.session.deterministic is flag]
            if sub:
                self._serve_stacked(sub, deterministic=flag)

    def _serve_stacked(self, batch: Sequence[_Request], deterministic: bool) -> None:
        sessions = [request.session for request in batch]
        slices: List[slice] = []
        start = 0
        for session in sessions:
            slices.append(slice(start, start + session.num_users))
            start += session.num_users
        total = start
        policy = self._policy
        batch_start = time.monotonic()
        try:
            obs = np.concatenate([request.obs for request in batch], axis=0)
            prev = np.concatenate(
                [
                    session.prev_actions
                    if session.prev_actions is not None
                    else np.zeros((session.num_users, policy.action_dim))
                    for session in sessions
                ],
                axis=0,
            )
            # Fresh per-batch rollout state, then overwrite each returning
            # session's rows with its saved extractor state: a session's
            # hidden state evolves exactly as if it were served alone.
            policy.start_rollout(total)
            template = policy.recurrent_state()
            if template is not None:
                parts = template if isinstance(template, tuple) else (template,)
                for session, block in zip(sessions, slices):
                    if session.recurrent_state is None:
                        continue
                    saved = (
                        session.recurrent_state
                        if isinstance(session.recurrent_state, tuple)
                        else (session.recurrent_state,)
                    )
                    for dst, src in zip(parts, saved):
                        dst[block] = src
                policy.set_recurrent_state(template)
            policy.set_rollout_groups(slices)
            block_rng = BlockRNG([session.rng for session in sessions], slices)
            actions, log_probs, values = policy.act(
                obs, prev, block_rng, deterministic=deterministic
            )
            new_state = policy.recurrent_state()
        except BaseException as error:
            for request in batch:
                request.session.pending = False
                request.ticket._fail(error)
            raise
        finally:
            policy.set_rollout_groups(None)
        compute_s = time.monotonic() - batch_start
        self._m_batches.inc()
        self._m_batch_rows.observe(total)
        self._m_batch_rows_max.set_max(total)
        self._m_compute.observe(compute_s)
        for request in batch:
            # Queue wait is per-request (submit to batch start); compute
            # is shared by the whole window — every rider pays the same
            # forward pass.
            queue_wait_s = max(batch_start - request.arrived, 0.0)
            self._m_queue_wait.observe(queue_wait_s)
            if request.trace is not None:
                self.tracer.record(
                    "serve.queue_wait",
                    request.trace,
                    request.arrived,
                    queue_wait_s,
                    replica=self.name,
                    session=request.session.id,
                )
                self.tracer.record(
                    "serve.compute",
                    request.trace,
                    batch_start,
                    compute_s,
                    replica=self.name,
                    session=request.session.id,
                    batch_rows=total,
                )
        for request, session, block in zip(batch, sessions, slices):
            if new_state is not None:
                if isinstance(new_state, tuple):
                    session.recurrent_state = tuple(
                        np.array(part[block]) for part in new_state
                    )
                else:
                    session.recurrent_state = np.array(new_state[block])
            session.prev_actions = np.array(actions[block])
            session.steps += 1
            session.pending = False
            session.version = self._version
            request.ticket._resolve(
                ActionResult(
                    actions=np.array(actions[block]),
                    log_probs=np.array(log_probs[block]),
                    values=np.array(values[block]),
                    version=self._version,
                    step=session.steps,
                )
            )

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    def swap_policy(self, payload: bytes, version: Optional[int] = None) -> int:
        """Atomically swap the serving weights; returns the serving version.

        ``payload`` is a :func:`snapshot_policy` archive. Decode happens
        before the lock is taken — a torn archive raises
        :class:`~repro.nn.serialization.StateChecksumError` with the old
        weights untouched. With an explicit ``version`` stamp, anything
        not newer than the serving version raises
        :class:`~repro.rl.workers.StaleReplicaError` (a late republish of
        old weights must never roll the server back); without one the
        serving version self-increments. A byte-equal archive is skipped
        (no load, no version bump — the rollout pool's skip-if-byte-equal
        rule). The swap holds the batch lock, so it lands between
        microbatches: in-flight batches complete on the old version.
        """
        state = state_from_bytes(payload)
        with self._lock:
            self._check_serving()
            if version is not None and version <= self._version:
                raise StaleReplicaError(
                    f"swap archive stamped version {version} is not newer than "
                    f"serving version {self._version}"
                )
            signature = self._signature_of(state)
            if signature != self._signature:
                raise ValueError(
                    "swap archive structure does not match the serving policy "
                    "(different parameter names or shapes); hot swap cannot "
                    "change the model architecture"
                )
            if all(np.array_equal(value, self._cache[key]) for key, value in state.items()):
                self._m_swaps_skipped.inc()
                return self._version
            self._policy.load_replica_state(state)
            self._version = version if version is not None else self._version + 1
            self._cache = {key: np.array(value) for key, value in state.items()}
            self._m_swaps_applied.inc()
            self._m_version.set(self._version)
            return self._version

    def publish(self, policy: ActorCriticBase, version: Optional[int] = None) -> int:
        """Snapshot ``policy`` and swap it in (trainer-side convenience)."""
        return self.swap_policy(snapshot_policy(policy), version=version)

    @staticmethod
    def _signature_of(state: Dict[str, np.ndarray]) -> Tuple:
        return tuple(sorted((key, np.asarray(value).shape) for key, value in state.items()))

    # ------------------------------------------------------------------
    # background dispatcher
    # ------------------------------------------------------------------
    def start(self) -> "PolicyServer":
        """Run the microbatch dispatcher in a background thread."""
        with self._lock:
            self._check_serving()
            if self._thread is not None:
                return self
            self._running = True
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="policy-serve-dispatch", daemon=True
            )
            self._thread.start()
        return self

    def _dispatch_loop(self) -> None:
        max_wait = self.config.max_wait_ms / 1000.0
        with self._cond:
            while self._running:
                if not self._queue:
                    self._cond.wait(timeout=0.05)
                    continue
                waited = time.monotonic() - self._queue[0].arrived
                if len(self._queue) >= self.config.max_batch_size or waited >= max_wait:
                    batch = [
                        self._queue.popleft()
                        for _ in range(
                            min(len(self._queue), self.config.max_batch_size)
                        )
                    ]
                    try:
                        self._process_batch(batch)
                    except Exception:
                        # Tickets already carry the error; keep serving.
                        pass
                else:
                    self._cond.wait(timeout=max(max_wait - waited, 0.0005))

    def stop(self, drain: bool = True) -> None:
        """Stop the dispatcher; by default serve whatever is still queued."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        if drain:
            self.flush()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop serving; unserved tickets fail with :class:`SessionError`."""
        self.stop(drain=False)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            while self._queue:
                request = self._queue.popleft()
                request.session.pending = False
                request.ticket._fail(SessionError("server closed"))
            self._sessions.clear()

    def _check_serving(self) -> None:
        if self._closed:
            raise SessionError("server is closed")

    def __enter__(self) -> "PolicyServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

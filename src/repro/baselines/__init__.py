"""Baselines: DIRECT, DR-UNI, DR-OSI, WideDeep, DeepFM."""

from .deepfm import DeepFMRecommender
from .rl_baselines import (
    make_direct_trainer,
    make_dr_osi_policy,
    make_dr_osi_trainer,
    make_dr_uni_trainer,
    make_mlp_policy,
)
from .samplers import (
    dpr_ensemble_sampler,
    dpr_single_sampler,
    lts_single_sampler,
    lts_task_sampler,
)
from .supervised import SupervisedConfig, SupervisedRecommender
from .widedeep import WideDeepRecommender

__all__ = [
    "DeepFMRecommender",
    "SupervisedConfig",
    "SupervisedRecommender",
    "WideDeepRecommender",
    "dpr_ensemble_sampler",
    "dpr_single_sampler",
    "lts_single_sampler",
    "lts_task_sampler",
    "make_direct_trainer",
    "make_dr_osi_policy",
    "make_dr_osi_trainer",
    "make_dr_uni_trainer",
    "make_mlp_policy",
]

"""Shared scaffolding for the supervised recommenders (WideDeep, DeepFM).

Both baselines learn to predict the *immediate* outcome r of showing a
program a in state s from the logged data, then recommend by scoring a
candidate-action grid and picking the argmax — memorisation/generalisation
recommenders with no long-term planning, as in the paper's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..sim.dataset import TrajectoryDataset
from ..utils.seeding import make_rng


@dataclass
class SupervisedConfig:
    """Training hyper-parameters shared by the supervised baselines."""

    hidden_sizes: Tuple[int, ...] = (64, 64)
    embedding_dim: int = 8          # DeepFM field-embedding width
    learning_rate: float = 1e-3
    epochs: int = 40
    batch_size: int = 256
    weight_decay: float = 1e-5
    grid_points_per_dim: int = 7    # candidate-action grid resolution
    seed: Optional[int] = None


class SupervisedRecommender(nn.Module):
    """Base class: an outcome model f(s, a) → r̂ plus grid-argmax acting."""

    def __init__(self, state_dim: int, action_dim: int, config: SupervisedConfig):
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.config = config
        self.input_mean = np.zeros(state_dim + action_dim)
        self.input_std = np.ones(state_dim + action_dim)
        self.target_mean = 0.0
        self.target_std = 1.0
        self._action_grid = self._build_grid(np.zeros(action_dim), np.ones(action_dim))

    def _build_grid(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        axes = [
            np.linspace(low[d], high[d], self.config.grid_points_per_dim)
            for d in range(self.action_dim)
        ]
        return np.array(list(product(*axes)))

    # ------------------------------------------------------------------
    def forward_score(self, inputs: nn.Tensor) -> nn.Tensor:  # pragma: no cover
        """Normalised score head; subclasses implement the architecture."""
        raise NotImplementedError

    def _normalise(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        raw = np.concatenate([states, actions], axis=1)
        return (raw - self.input_mean) / self.input_std

    def predict(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        """r̂(s, a) in raw reward scale."""
        with nn.no_grad():
            scores = self.forward_score(nn.Tensor(self._normalise(states, actions)))
        return scores.data[:, 0] * self.target_std + self.target_mean

    # ------------------------------------------------------------------
    def fit(self, dataset: TrajectoryDataset, verbose: bool = False) -> list[float]:
        """Regress logged immediate rewards r on (s, a) with MSE."""
        states, actions, _ = dataset.transition_pairs()
        rewards = np.concatenate(
            [g.rewards.reshape(-1) for g in dataset.groups], axis=0
        )
        # Candidate actions are restricted to the logged range: the
        # recommender chooses among programs that historically exist, and
        # the outcome model is only trusted on-support.
        self._action_grid = self._build_grid(actions.min(axis=0), actions.max(axis=0))
        inputs_raw = np.concatenate([states, actions], axis=1)
        self.input_mean = inputs_raw.mean(axis=0)
        self.input_std = inputs_raw.std(axis=0) + 1e-6
        self.target_mean = float(rewards.mean())
        self.target_std = float(rewards.std() + 1e-6)
        targets = ((rewards - self.target_mean) / self.target_std)[:, None]
        inputs = (inputs_raw - self.input_mean) / self.input_std

        rng = make_rng(self.config.seed)
        optimizer = nn.Adam(
            self.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        n = inputs.shape[0]
        batch = min(self.config.batch_size, n)
        losses = []
        for epoch in range(self.config.epochs):
            order = rng.permutation(n)
            epoch_loss, batches = 0.0, 0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                optimizer.zero_grad()
                loss = nn.mse_loss(self.forward_score(nn.Tensor(inputs[idx])), nn.Tensor(targets[idx]))
                loss.backward()
                nn.clip_grad_norm(self.parameters(), 10.0)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / batches)
            if verbose and epoch % 10 == 0:
                print(f"[{type(self).__name__}] epoch {epoch} loss {losses[-1]:.4f}")
        return losses

    # ------------------------------------------------------------------
    def recommend(self, states: np.ndarray) -> np.ndarray:
        """Greedy action per user: argmax over the candidate grid."""
        n = states.shape[0]
        g = self._action_grid.shape[0]
        tiled_states = np.repeat(states, g, axis=0)
        tiled_actions = np.tile(self._action_grid, (n, 1))
        scores = self.predict(tiled_states, tiled_actions).reshape(n, g)
        return self._action_grid[np.argmax(scores, axis=1)]

    def as_act_fn(self):
        """Adapt to the ``evaluate_policy`` callable protocol."""
        model = self

        class _ActFn:
            def reset(self, num_users: int) -> None:
                pass

            def __call__(self, states: np.ndarray, t: int) -> np.ndarray:
                return model.recommend(states)

        return _ActFn()

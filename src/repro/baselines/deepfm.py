"""DeepFM recommender [48].

Replaces Wide&Deep's wide part with a factorisation machine: every input
dimension is a *field* with a dense embedding v_f scaled by the field
value x_f. The FM second-order term

    0.5 · Σ_k [ (Σ_f x_f v_{f,k})² − Σ_f (x_f v_{f,k})² ]

captures all pairwise feature interactions in O(F·k); a deep MLP over the
concatenated scaled embeddings captures the high-order ones. First-order
weights, FM term and deep output are summed into the score.
"""

from __future__ import annotations


from .. import nn
from ..utils.seeding import make_rng
from .supervised import SupervisedConfig, SupervisedRecommender


class DeepFMRecommender(SupervisedRecommender):
    """f(s, a) = ⟨w, x⟩ + FM₂(x) + MLP(embeddings)."""

    def __init__(self, state_dim: int, action_dim: int, config: SupervisedConfig):
        super().__init__(state_dim, action_dim, config)
        rng = make_rng(config.seed)
        self.num_fields = state_dim + action_dim
        k = config.embedding_dim
        self.first_order = nn.Linear(self.num_fields, 1, rng, init="normal", gain=0.01)
        # One embedding row per field; value-scaled at forward time.
        self.field_embeddings = nn.Parameter(
            rng.standard_normal((self.num_fields, k)) * 0.05, name="field_embeddings"
        )
        self.deep = nn.MLP(
            [self.num_fields * k, *config.hidden_sizes, 1], rng, activation="relu"
        )

    def forward_score(self, inputs: nn.Tensor) -> nn.Tensor:
        batch = inputs.shape[0]
        k = self.config.embedding_dim
        # Scaled embeddings e_{b,f,k} = x_{b,f} · v_{f,k}
        scaled = inputs.reshape(batch, self.num_fields, 1) * self.field_embeddings
        sum_embed = scaled.sum(axis=1)                      # [B, k]
        sum_square = sum_embed * sum_embed                  # (Σ x v)²
        square_sum = (scaled * scaled).sum(axis=1)          # Σ (x v)²
        fm_term = (sum_square - square_sum).sum(axis=-1, keepdims=True) * 0.5
        deep_term = self.deep(scaled.reshape(batch, self.num_fields * k))
        return self.first_order(inputs) + fm_term + deep_term

"""Environment samplers shared by the RL baselines.

Each returns an ``EnvSampler`` — a callable ``rng → MultiUserEnv`` plugged
into :class:`repro.core.trainer.PolicyTrainer`. They encode the only thing
that differs between DIRECT / DR-UNI / DR-OSI and Sim2Rec at the
environment level: whether training sees one simulator or the whole set.
"""

from __future__ import annotations

import numpy as np

from ..core.trainer import EnvSampler
from ..envs.base import MultiUserEnv
from ..envs.lts_tasks import LTSTask
from ..sim.dataset import TrajectoryDataset
from ..sim.ensemble import SimulatorEnsemble
from ..sim.env_wrapper import SimulatedDPREnv
from ..sim.learner import UserSimulator


def lts_task_sampler(task: LTSTask, resample_users: bool = False) -> EnvSampler:
    """Uniform sampling over the task's training simulator set (DR-*)."""
    envs = task.make_train_envs()

    def sampler(rng: np.random.Generator) -> MultiUserEnv:
        env = envs[int(rng.integers(0, len(envs)))]
        if resample_users:
            env.resample_user_gaps()
        return env

    return sampler


def lts_single_sampler(task: LTSTask, index: int = 0) -> EnvSampler:
    """A single fixed simulator from the set (the DIRECT baseline)."""
    env = task.make_train_env(index)

    def sampler(rng: np.random.Generator) -> MultiUserEnv:
        return env

    return sampler


def dpr_ensemble_sampler(
    ensemble: SimulatorEnsemble,
    dataset: TrajectoryDataset,
    truncate_horizon: int = 5,
    seed: int = 0,
) -> EnvSampler:
    """Sample (M_ω, group) pairs across the whole simulator set (DR-*)."""
    counter = [0]
    groups = dataset.groups

    def sampler(rng: np.random.Generator) -> MultiUserEnv:
        member = ensemble.sample_member(rng)
        group = groups[int(rng.integers(0, len(groups)))]
        counter[0] += 1
        return SimulatedDPREnv(
            member,
            group,
            truncate_horizon=truncate_horizon,
            seed=seed + 60_000 + counter[0],
        )

    return sampler


def dpr_single_sampler(
    simulator: UserSimulator,
    dataset: TrajectoryDataset,
    truncate_horizon: int = 5,
    seed: int = 0,
) -> EnvSampler:
    """One fixed learned simulator over all groups (the DIRECT baseline)."""
    counter = [0]
    groups = dataset.groups

    def sampler(rng: np.random.Generator) -> MultiUserEnv:
        group = groups[int(rng.integers(0, len(groups)))]
        counter[0] += 1
        return SimulatedDPREnv(
            simulator,
            group,
            truncate_horizon=truncate_horizon,
            seed=seed + 70_000 + counter[0],
        )

    return sampler

"""RL baselines: DIRECT [1], DR-UNI [29] and DR-OSI [15].

All three reuse the :class:`repro.core.trainer.PolicyTrainer` loop — they
differ only in architecture and in what the environment sampler exposes:

- **DIRECT**: feed-forward policy trained against a *single* simulator,
  ignoring the reality gap entirely.
- **DR-UNI** (domain randomisation, unified policy): the same feed-forward
  policy trained across the whole simulator set — equivalent to Eq. (4)
  with a constant φ output.
- **DR-OSI** (online system identification): the recurrent LSTM extractor
  of Sec. IV-B *without* SADAE — the environment parameters must be
  inferred from each user's own interaction history alone.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import Sim2RecConfig
from ..core.trainer import EnvSampler, PolicyTrainer
from ..rl.policies import MLPActorCritic, RecurrentActorCritic
from ..utils.seeding import make_rng


def make_mlp_policy(
    state_dim: int,
    action_dim: int,
    config: Sim2RecConfig,
    rng: Optional[np.random.Generator] = None,
) -> MLPActorCritic:
    """Feed-forward policy (DIRECT / DR-UNI) sized from the config."""
    rng = rng or make_rng(config.seed)
    return MLPActorCritic(
        state_dim,
        action_dim,
        rng,
        hidden_sizes=config.head_hidden,
        init_log_std=config.init_log_std,
    )


def make_dr_osi_policy(
    state_dim: int,
    action_dim: int,
    config: Sim2RecConfig,
    rng: Optional[np.random.Generator] = None,
) -> RecurrentActorCritic:
    """LSTM-extractor policy without SADAE (the DR-OSI architecture)."""
    rng = rng or make_rng(config.seed)
    return RecurrentActorCritic(
        state_dim,
        action_dim,
        rng,
        lstm_hidden=config.lstm_hidden,
        head_hidden=config.head_hidden,
        context_dim=0,
        init_log_std=config.init_log_std,
    )


def make_direct_trainer(
    state_dim: int,
    action_dim: int,
    env_sampler: EnvSampler,
    config: Sim2RecConfig,
) -> PolicyTrainer:
    """DIRECT: standard simulator-based PPO, single simulator, no gap handling."""
    policy = make_mlp_policy(state_dim, action_dim, config)
    return PolicyTrainer(policy, env_sampler, config)


def make_dr_uni_trainer(
    state_dim: int,
    action_dim: int,
    env_sampler: EnvSampler,
    config: Sim2RecConfig,
) -> PolicyTrainer:
    """DR-UNI: one conservative policy over the randomized simulator set."""
    policy = make_mlp_policy(state_dim, action_dim, config)
    return PolicyTrainer(policy, env_sampler, config)


def make_dr_osi_trainer(
    state_dim: int,
    action_dim: int,
    env_sampler: EnvSampler,
    config: Sim2RecConfig,
) -> PolicyTrainer:
    """DR-OSI: recurrent extractor over the simulator set, no group context."""
    policy = make_dr_osi_policy(state_dim, action_dim, config)
    return PolicyTrainer(policy, env_sampler, config)

"""Wide & Deep recommender [47].

The wide component memorises via a linear model over the raw features and
their pairwise state×action cross-products; the deep component generalises
via an MLP over the same inputs. Their outputs are summed into the score.
"""

from __future__ import annotations


from .. import nn
from ..utils.seeding import make_rng
from .supervised import SupervisedConfig, SupervisedRecommender


class WideDeepRecommender(SupervisedRecommender):
    """f(s, a) = wide(linear + crosses) + deep(MLP)."""

    def __init__(self, state_dim: int, action_dim: int, config: SupervisedConfig):
        super().__init__(state_dim, action_dim, config)
        rng = make_rng(config.seed)
        in_dim = state_dim + action_dim
        cross_dim = state_dim * action_dim
        self.wide = nn.Linear(in_dim + cross_dim, 1, rng, init="normal", gain=0.01)
        self.deep = nn.MLP([in_dim, *config.hidden_sizes, 1], rng, activation="relu")

    def _cross_features(self, inputs: nn.Tensor) -> nn.Tensor:
        """Pairwise products s_i · a_j — the memorisation cross terms."""
        states = inputs[:, : self.state_dim]
        actions = inputs[:, self.state_dim :]
        crosses = []
        for j in range(self.action_dim):
            action_j = actions[:, j : j + 1]
            crosses.append(states * action_j)
        return nn.concat(crosses, axis=1)

    def forward_score(self, inputs: nn.Tensor) -> nn.Tensor:
        wide_in = nn.concat([inputs, self._cross_features(inputs)], axis=1)
        return self.wide(wide_in) + self.deep(inputs)
